"""Sentiment-enhanced BTC price forecasting (§7, Table 8-lite).

Aggregates hourly sentiment from a simulated Telegram trading-group
stream, then compares a GRU and SNN with and without sentiment features.

    python examples/price_forecasting.py
"""

from repro.forecasting import (
    BTCForecastDataset,
    aggregate_hourly_sentiment,
    run_forecasting_experiment,
)
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig, format_table


def main() -> None:
    config = ReproConfig.tiny()
    world = SyntheticWorld.generate(config)
    # More history than the tiny default: sentiment needs enough hours to
    # show its forecasting value within a short demo run.
    n_hours = 2600
    sentiment = aggregate_hourly_sentiment(world, n_hours, per_hour=6.0)
    dataset = BTCForecastDataset.build(world, span=24, n_hours=n_hours,
                                       sentiment=sentiment)
    print("Table 7 (dataset statistics):", dataset.table7())

    experiment = run_forecasting_experiment(
        world, span=24, model_names=("gru", "snn"), epochs=8, dataset=dataset,
    )
    rows = []
    for name in experiment.mae_price:
        rows.append([
            name.upper(),
            round(experiment.mae_price[name], 2),
            round(experiment.mae_price_telegram[name], 2),
            round(experiment.improvement(name), 2),
            round(experiment.cost[name], 3),
        ])
    print(format_table(
        ["Model", "MAE(P)", "MAE(P+T)", "Impr", "Cost s/50 batches"], rows,
        title="\nTable 8 (lite): 24h-span BTC forecasting",
    ))
    print("\nSentiment features improve MAE when Impr > 0; SNN trains an "
          "order of magnitude faster than recurrent models.")


if __name__ == "__main__":
    main()
