"""Target coin prediction: SNN against its competitors (Table 5-lite).

Trains LR, RF, DNN and SNN on one synthetic world and prints the HR@k
comparison plus the positional-attention patterns SNN learned (Figure 10a).

    python examples/target_coin_prediction.py
"""

from repro.analysis import classify_patterns, render_heatmap
from repro.core import (
    Trainer,
    format_hr_table,
    random_ranker_baseline,
    run_target_coin_experiment,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.features.sequence import SEQUENCE_NUMERIC_NAMES
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


def main() -> None:
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)
    assembled = FeatureAssembler(world, collection.dataset).assemble()
    print(f"train rows: {len(assembled.train)}, "
          f"test ranking lists: {len(set(assembled.test.list_id))}")

    outcome = run_target_coin_experiment(
        assembled, model_names=("lr", "rf", "dnn", "snn"),
        trainer=Trainer(epochs=8, seed=0),
    )
    results = dict(outcome.hr)
    results["random"] = random_ranker_baseline(assembled.test)
    print(format_hr_table(results))

    # Figure 10(a): what did positional attention learn?
    snn = outcome.models["snn"]
    heatmaps = snn.attention.attention_by_feature()
    patterns = classify_patterns(heatmaps, proximity_threshold=0.3)
    emb_dim = snn.config.coin_emb_dim
    names = [f"coin_emb[{i}]" for i in range(emb_dim)] + list(SEQUENCE_NUMERIC_NAMES)
    print("\nlearned attention patterns (P1 = most recent pump):")
    for name, pattern in zip(names, patterns):
        kind = "skip-correlated" if pattern.is_skip_correlated else "proximity"
        print(f"  {name:<24} peak=P{pattern.peak_position + 1:<3} {kind}")
    print("\ncoin_emb[0] attention heads:")
    print(render_heatmap(heatmaps[0], width_chars=snn.config.seq_len))


if __name__ == "__main__":
    main()
