"""Quickstart: generate a world, run the pipeline, train SNN, rank coins.

Runs in about a minute on a laptop:

    python examples/quickstart.py
"""

from repro.core import (
    Trainer,
    evaluate_scores,
    make_model,
    predict_scores,
    snn_config_for,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig, format_table


def main() -> None:
    # 1. A synthetic world: coins, markets, Telegram channels, P&D events.
    world = SyntheticWorld.generate(ReproConfig.tiny())
    print("world:", world.summary())

    # 2. The data-collection pipeline (§3): explore channels, detect pump
    #    messages, sessionize, extract P&D samples, build the dataset.
    result = collect(world)
    print("extracted dataset:", result.table2())
    print("detection F1 (RF):", round(result.detection.reports["rf"].f1, 3))

    # 3. Features + SNN training (§5).
    assembled = FeatureAssembler(world, result.dataset).assemble()
    model = make_model("snn", snn_config_for(assembled), seed=0)
    Trainer(epochs=8, seed=0).fit(model, assembled.train, assembled.validation)

    # 4. Rank all candidate coins per pump event one hour ahead (§6).
    hr = evaluate_scores(assembled.test, predict_scores(model, assembled.test))
    print(format_table(
        ["Metric"] + [f"HR@{k}" for k in sorted(hr)],
        [["SNN"] + [f"{hr[k]:.3f}" for k in sorted(hr)]],
        title="\nTarget coin prediction on the test split",
    ))


if __name__ == "__main__":
    main()
