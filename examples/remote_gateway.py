"""Serve rankings over HTTP and consume them with the client SDK.

The ISSUE 5 loop end to end, in one process for demonstration purposes:

1. train a ranker briefly and publish two versions into a registry;
2. boot the HTTP gateway (`repro.gateway`) on the first version;
3. consume it through :class:`GatewayClient` — single rank, micro-batch,
   observe, stats;
4. hot-swap to the second version mid-session and show that the same
   request now answers with the new model.

In production the server side is simply ``repro gateway --load
snn@v0001 --registry models --port 8787`` and clients live elsewhere.

Run with: ``PYTHONPATH=src python examples/remote_gateway.py``
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import train_predictor
from repro.data import collect
from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayRequestError,
    describe_model,
    serve_in_thread,
)
from repro.registry import ModelRegistry
from repro.serving import Announcement, PredictionService
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


def main() -> None:
    print("== building world + training two model versions ==")
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)
    registry = ModelRegistry(Path(tempfile.mkdtemp()) / "models")
    for epochs in (2, 4):
        predictor = train_predictor(world, collection, model="snn",
                                    epochs=epochs, seed=0)
        entry = registry.publish(predictor, "snn",
                                 provenance={"epochs": epochs})
        print(f"published {entry.name}@{entry.version} ({epochs} epochs)")

    print("\n== booting the gateway on snn@v0001 ==")
    path = registry.resolve("snn", "v0001")
    service = PredictionService.from_artifact(path, world,
                                              collection.dataset)
    app = GatewayApp(
        service, registry=registry,
        model=describe_model("snn@v0001", path, name="snn",
                             version="v0001"),
    )
    server, _thread = serve_in_thread(app)
    print(f"gateway listening on {server.url}")

    client = GatewayClient(server.url)
    health = client.healthz()
    print(f"healthz: {health.status}, model {health.model['ref']}")

    # A prediction request: the released coin is unknown (coin_id -1).
    positives = [e for e in collection.dataset.examples
                 if e.label == 1 and e.split == "test"]
    probe = Announcement(channel_id=positives[0].channel_id, coin_id=-1,
                         exchange_id=0, pair="BTC",
                         time=positives[0].time)

    print("\n== POST /v1/rank ==")
    alert = client.rank(probe)
    for score in alert.top(3):
        print(f"  {score.symbol:8s} p={score.probability:.4f}")

    print("\n== POST /v1/rank/batch ==")
    batch = [
        Announcement(channel_id=e.channel_id, coin_id=e.coin_id,
                     exchange_id=0, pair="BTC", time=e.time)
        for e in positives[:3]
    ]
    for ranked in client.rank_batch(batch):
        print(f"  channel {ranked.announcement.channel_id}: released coin "
              f"ranked #{ranked.announced_rank}")

    print("\n== POST /v1/observe ==")
    observed = client.observe(batch[0])
    print(f"  channel {observed.channel_id} history is now "
          f"{observed.history_length} pumps long")

    print("\n== error envelope (unknown channel) ==")
    try:
        client.rank(Announcement(channel_id=-1, coin_id=-1, exchange_id=0,
                                 pair="BTC", time=probe.time))
    except GatewayRequestError as exc:
        print(f"  refused: [{exc.status} {exc.code}] {exc.message}")

    print("\n== hot-swap to snn@v0002 ==")
    before = client.rank(probe)
    swap = client.reload("snn@v0002")
    after = client.rank(probe)
    print(f"  now serving {swap.model['ref']} "
          f"(was {swap.previous['ref']})")
    changed = [(b.symbol, a.symbol)
               for b, a in zip(before.top(3), after.top(3))]
    print(f"  top-3 before/after: {changed}")

    stats = client.stats()
    print(f"\ngateway stats: {stats.gateway['requests']}")
    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
