"""The §3 data-collection pipeline, stage by stage.

Walks through snowball channel exploration, keyword filtering, TF-IDF +
RF/LR pump-message detection (Table 1), 24h-gap sessionization and
quintuple extraction (Tables 2-3).

    python examples/pump_detection_pipeline.py
"""

from repro.data import (
    ChannelExplorer,
    dataset_statistics,
    extract_samples,
    run_detection_pipeline,
    sessionize,
)
from repro.simulation import SyntheticWorld
from repro.simulation.coins import EXCHANGE_NAMES
from repro.utils import ReproConfig, format_table, to_timestamp


def main() -> None:
    world = SyntheticWorld.generate(ReproConfig.tiny())

    # Stage 1 — snowball exploration from the verified seed list.
    explorer = ChannelExplorer(world.channels, world.messages, max_hops=2)
    exploration = explorer.explore(world.channels.seed_channel_ids())
    print("exploration:", exploration.summary())

    # Stage 2 — keyword filter + TF-IDF + RF/LR detection (Table 1).
    collected = explorer.collect_messages(exploration)
    exchange_names = EXCHANGE_NAMES[: world.config.n_exchanges]
    detection = run_detection_pipeline(
        collected, world.coins.symbols, exchange_names, seed=world.config.seed
    )
    rows = []
    for name, report in detection.reports.items():
        rows.append([name.upper(), f"{report.auc:.3f}", f"{report.precision:.3f}",
                     f"{report.recall:.3f}", f"{report.f1:.3f}"])
    print(format_table(["Model", "AUC", "Precision", "Recall", "F1"], rows,
                       title="\nTable 1: pump message detection"))
    print(f"messages: {detection.n_total} -> keyword filter -> "
          f"{detection.n_filtered} -> detected pump -> {len(detection.detected)}")

    # Stage 3 — sessions and P&D sample extraction (Tables 2-3).
    sessions = sessionize(detection.detected)
    samples = extract_samples(sessions, world.coins.symbols, exchange_names)
    print(f"\nsessions: {len(sessions)}, resolvable P&D samples: {len(samples)}")
    print("dataset statistics:", dataset_statistics(samples))
    example_rows = [
        [s.channel_id, world.coins.symbols[s.coin_id],
         exchange_names[s.exchange_id], s.pair, to_timestamp(int(s.time))]
        for s in samples[:5]
    ]
    print(format_table(["Channel", "Coin", "Exchange", "Pair", "Timestamp"],
                       example_rows, title="\nTable 3: example quintuples"))


if __name__ == "__main__":
    main()
