"""Deployment simulation: stream announcements, alert on likely targets.

Replays the test period of a synthetic world through the real-time serving
stack (``repro.serving``): messages arrive in timestamp order, pump-message
detection and sessionization run incrementally, and every resolvable coin
release triggers a cached, micro-batched ranking of all listed coins — the
investor-alerting workflow the paper's introduction motivates.

    python examples/live_monitoring.py
"""

import numpy as np

from repro.core import train_predictor
from repro.data import collect
from repro.serving import CollectingSink, ConsoleAlertSink, replay_test_period
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


def main() -> None:
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)
    predictor = train_predictor(world, collection, epochs=8, seed=0)

    print("monitoring announced pumps in the test period...\n")
    collected = CollectingSink()
    result = replay_test_period(
        world, collection, predictor,
        sinks=(ConsoleAlertSink(top_k=3), collected),
    )

    ranks = np.array([
        a.announced_rank for a in collected.alerts if a.announced_rank > 0
    ])
    print(f"\nalerts emitted: {len(collected.alerts)}")
    if len(ranks):
        for k in (1, 5, 10):
            print(f"released coin in top-{k}: {(ranks <= k).mean():.0%}")
        print(f"median rank of released coin: {np.median(ranks):.0f}")

    print("\nserving metrics:")
    for key, value in result.stats.summary().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
