"""Deployment simulation: stream announcements, alert on likely targets.

Demonstrates the full model lifecycle the serving stack is built around:
train a predictor once, persist it as a versioned artifact in a model
registry (``repro.registry``), then boot the real-time serving stack
(``repro.serving``) **from the artifact** — no retraining — and replay
the test period of a synthetic world through it: messages arrive in
timestamp order, pump-message detection and sessionization run
incrementally, and every resolvable coin release triggers a cached,
micro-batched ranking of all listed coins — the investor-alerting
workflow the paper's introduction motivates.

    python examples/live_monitoring.py
"""

import tempfile

import numpy as np

from repro.core import train_predictor
from repro.data import collect
from repro.registry import ModelRegistry
from repro.serving import CollectingSink, ConsoleAlertSink, replay_test_period
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


def main() -> None:
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)

    # Train once, publish a versioned artifact with a `latest` pointer.
    with tempfile.TemporaryDirectory() as registry_root:
        registry = ModelRegistry(registry_root)
        predictor = train_predictor(world, collection, epochs=8, seed=0)
        entry = registry.publish(predictor, "snn")
        print(f"published {entry.name}@{entry.version} "
              f"({entry.n_parameters} parameters)\n")

        # A serving process (typically a different machine) boots from the
        # registry in milliseconds: weights, scalers and vocabulary are
        # restored and the compiled inference plan is re-verified — no
        # training data or fitting involved.
        served = registry.load("snn").to_predictor(world, collection.dataset)

        print("monitoring announced pumps in the test period...\n")
        collected = CollectingSink()
        result = replay_test_period(
            world, collection, served,
            sinks=(ConsoleAlertSink(top_k=3), collected),
        )

    ranks = np.array([
        a.announced_rank for a in collected.alerts if a.announced_rank > 0
    ])
    print(f"\nalerts emitted: {len(collected.alerts)}")
    if len(ranks):
        for k in (1, 5, 10):
            print(f"released coin in top-{k}: {(ranks <= k).mean():.0%}")
        print(f"median rank of released coin: {np.median(ranks):.0f}")

    print("\nserving metrics:")
    for key, value in result.stats.summary().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
