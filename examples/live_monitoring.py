"""Deployment simulation: monitor announcements and alert on likely targets.

Replays the test period of a synthetic world as a live stream: every time a
channel announces a pump, the trained model ranks all listed coins one hour
ahead and we record where the true coin landed — the investor-alerting
workflow the paper's introduction motivates.

    python examples/live_monitoring.py
"""

import numpy as np

from repro.core import Trainer, TargetCoinPredictor, make_model, snn_config_for
from repro.data import collect
from repro.features import FeatureAssembler
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig, to_timestamp


def main() -> None:
    world = SyntheticWorld.generate(ReproConfig.tiny())
    collection = collect(world)
    assembled = FeatureAssembler(world, collection.dataset).assemble()

    model = make_model("snn", snn_config_for(assembled), seed=0)
    Trainer(epochs=8, seed=0).fit(model, assembled.train, assembled.validation)
    predictor = TargetCoinPredictor(world, collection.dataset, model)

    print("monitoring announced pumps in the test period...\n")
    ranks = []
    test_positives = [
        e for e in collection.dataset.examples
        if e.label == 1 and e.split == "test"
    ]
    for event in test_positives:
        ranking = predictor.rank(event.channel_id, 0, event.time)
        true_rank = ranking.rank_of(event.coin_id)
        ranks.append(true_rank)
        top = ", ".join(
            f"{s.symbol}({s.probability:.2f})" for s in ranking.top(3)
        )
        marker = "<< HIT" if 0 < true_rank <= 5 else ""
        print(f"{to_timestamp(int(event.time))}  channel={event.channel_id}  "
              f"alert top-3: {top}  | true coin "
              f"{world.coins.symbols[event.coin_id]} ranked #{true_rank} {marker}")

    ranks = np.array([r for r in ranks if r > 0])
    print(f"\nevents monitored: {len(ranks)}")
    for k in (1, 5, 10):
        print(f"true coin in top-{k}: {(ranks <= k).mean():.0%}")
    print(f"median rank of true coin: {np.median(ranks):.0f} "
          f"of ~{len(predictor.candidates(0, test_positives[-1].time))} candidates")


if __name__ == "__main__":
    main()
