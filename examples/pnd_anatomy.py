"""Anatomy of a pump-and-dump: the §2/§4 observational view.

Renders ASCII charts of the average price and volume trajectories around
pump time (Figure 4 a-b), the return-window curve (Figure 4 c) and the
per-channel homogeneity statistics (Figure 5).

    python examples/pnd_anatomy.py
"""

import numpy as np

from repro.analysis import channel_level_study, event_study, volume_onset_hour
from repro.data import collect
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


def ascii_chart(xs, ys, height: int = 12, title: str = "") -> str:
    """Render a quick ASCII line chart."""
    ys = np.asarray(ys, dtype=float)
    lo, hi = float(ys.min()), float(ys.max())
    span = hi - lo or 1.0
    rows = []
    levels = ((ys - lo) / span * (height - 1)).round().astype(int)
    for level in range(height - 1, -1, -1):
        row = "".join("#" if l >= level else " " for l in levels)
        rows.append(row)
    axis = "-" * len(ys)
    return f"{title}  [min={lo:.3f}, max={hi:.3f}]\n" + "\n".join(rows) + "\n" + axis


def main() -> None:
    world = SyntheticWorld.generate(ReproConfig.tiny())
    study = event_study(world, max_events=30)

    # Downsample the minute grid for terminal width.
    stride = max(1, len(study.minute_grid) // 90)
    grid = study.minute_grid[::stride]
    print(ascii_chart(grid, study.avg_price_curve[::stride],
                      title="Figure 4(a): average price, -72h .. +24h"))
    print()
    print(ascii_chart(grid, np.log1p(study.avg_volume_curve[::stride]),
                      title="Figure 4(b): average volume (log), -72h .. +24h"))
    print(f"\nfrequent-trading onset: ~{volume_onset_hour(study):.0f}h before "
          f"the pump (paper: ~57h)")

    print("\nFigure 4(c): average return in (x+1,1] windows before the pump")
    for x, value in sorted(study.window_returns_pumped.items()):
        bar = "#" * int(max(value, 0) * 300)
        print(f"  x={x:<3} {value:+.3f} {bar}")
    print("  (random coins: all near zero)")

    samples = collect(world).samples
    channels = channel_level_study(world, samples, min_history=3)
    print("\nFigure 5: intra-channel homogeneity (spread ratios, <1 = homogeneous)")
    for feature, scatter in channels.scatters.items():
        print(f"  {feature:<22} {scatter.homogeneity_ratio:.3f}")


if __name__ == "__main__":
    main()
