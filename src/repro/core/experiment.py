"""Experiment orchestration shared by benchmarks, examples and tests.

``run_target_coin_experiment`` reproduces Table 5 (all nine competitors);
``run_coin_embedding_experiment`` reproduces Table 6 (cold-start study).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import (
    ALL_MODEL_NAMES,
    CLASSIC_MODEL_NAMES,
    ClassicRanker,
    make_model,
)
from repro.core.coldstart import CoinIdOnlyModel, train_coin_embeddings
from repro.core.evaluate import HR_KS, evaluate_scores
from repro.core.snn import SNN, SNNConfig
from repro.core.train import Trainer, predict_scores
from repro.features.assembler import AssembledDataset
from repro.sources.base import as_source


def snn_config_for(assembled: AssembledDataset, **overrides) -> SNNConfig:
    """Model hyper-parameters bound to an assembled dataset's shapes.

    Feature counts are read from the arrays themselves so augmented or
    synthetic datasets (e.g. in tests or transfer experiments) work without
    matching the default feature registry.
    """
    defaults = dict(
        n_channels=assembled.n_channels,
        n_coin_ids=assembled.n_coin_ids,
        n_numeric=assembled.train.numeric.shape[1],
        seq_len=assembled.sequence_length,
        n_seq_numeric=assembled.train.seq_numeric.shape[2],
    )
    defaults.update(overrides)
    return SNNConfig(**defaults)


def train_predictor(source, collection=None, *,
                    model: str = "snn", epochs: int = 8,
                    seed: int = 0, signals: bool = False) -> "TargetCoinPredictor":
    """The standard source → collect → assemble → train → predictor wiring.

    ``source`` is any :class:`repro.sources.DataSource` backend (or a bare
    synthetic world).  Shared by the ``serve`` CLI command, the
    live-monitoring example and the serving tests/benchmarks, so the
    training contract lives in one place.  Pass an existing
    :class:`CollectionResult` to skip re-running the data pipeline.

    ``signals=True`` appends the :mod:`repro.signals` microstructure
    channels to the numeric features (recorded in provenance and in the
    saved artifact's manifest, so registry loads rebuild the same
    feature space).
    """
    import time

    from repro.core.predictor import TargetCoinPredictor
    from repro.data.pipeline import collect
    from repro.features.assembler import FeatureAssembler

    source = as_source(source)
    if collection is None:
        collection = collect(source)
    signal_engine = None
    if signals:
        # Lazy: the signals package sits above features/core in the layer
        # graph, so only this orchestration entry point may reach down.
        from repro.signals import SignalEngine

        signal_engine = SignalEngine.from_source(source)
    assembler = FeatureAssembler(source, collection.dataset,
                                 signal_engine=signal_engine)
    assembled = assembler.assemble()
    ranker = make_model(model, snn_config_for(assembled), seed=seed)
    started = time.perf_counter()
    Trainer(epochs=epochs, seed=seed).fit(
        ranker, assembled.train, assembled.validation
    )
    predictor = TargetCoinPredictor(source, collection.dataset, ranker,
                                    assembler)
    # Recorded into saved artifacts (repro.registry) as training provenance.
    predictor.provenance = {
        "model": model,
        "epochs": epochs,
        "seed": seed,
        "world_seed": source.seed,
        "data_source": source.descriptor(),
        "signal_channels": list(signal_engine.feature_names)
        if signal_engine is not None else [],
        "train_seconds": round(time.perf_counter() - started, 3),
    }
    return predictor


@dataclass
class ExperimentOutcome:
    """HR@k per model plus timing, in Table 5's shape."""

    hr: dict[str, dict[int, float]] = field(default_factory=dict)
    train_seconds: dict[str, float] = field(default_factory=dict)
    models: dict[str, object] = field(default_factory=dict)

    def winner(self, k: int = 10) -> str:
        return max(self.hr, key=lambda name: self.hr[name][k])


def run_target_coin_experiment(
    assembled: AssembledDataset,
    model_names: tuple[str, ...] = ALL_MODEL_NAMES,
    trainer: Trainer | None = None,
    seed: int = 0,
) -> ExperimentOutcome:
    """Train and evaluate the requested competitors on one dataset."""
    import time

    trainer = trainer or Trainer(seed=seed)
    outcome = ExperimentOutcome()
    config = snn_config_for(assembled)
    for name in model_names:
        started = time.perf_counter()
        if name in CLASSIC_MODEL_NAMES:
            model = ClassicRanker(name, seed=seed).fit(assembled.train)
            scores = model.predict_proba(assembled.test)
        else:
            model = make_model(name, config, seed=seed)
            trainer.fit(model, assembled.train, assembled.validation)
            scores = predict_scores(model, assembled.test)
        outcome.hr[name] = evaluate_scores(assembled.test, scores, HR_KS)
        outcome.train_seconds[name] = time.perf_counter() - started
        outcome.models[name] = model
    return outcome


EMBEDDING_VARIANTS = ("e2e", "cbow", "sg", "snn", "snn_c", "snn_s")


def run_coin_embedding_experiment(
    source,
    assembled: AssembledDataset,
    trainer: Trainer | None = None,
    seed: int = 0,
    variants: tuple[str, ...] = EMBEDDING_VARIANTS,
) -> ExperimentOutcome:
    """Table 6: coin-embedding sources under the cold-start split.

    * ``e2e`` — coin-id-only DNN, embedding trained end-to-end;
    * ``cbow`` / ``sg`` — coin-id-only DNN on frozen word vectors;
    * ``snn`` — the full model with end-to-end coin embedding;
    * ``snn_c`` / ``snn_s`` — SNN with CBoW / SkipGram replacements.
    """
    import time

    trainer = trainer or Trainer(seed=seed)
    config = snn_config_for(assembled)
    rng = np.random.default_rng(seed)
    needed = {v for v in variants}
    vectors = {}
    if needed & {"cbow", "snn_c"}:
        vectors["cbow"], _ = train_coin_embeddings(
            source, mode="cbow", dim=config.coin_emb_dim, seed=seed
        )
    if needed & {"sg", "snn_s"}:
        vectors["sg"], _ = train_coin_embeddings(
            source, mode="skipgram", dim=config.coin_emb_dim, seed=seed
        )

    outcome = ExperimentOutcome()
    for variant in variants:
        started = time.perf_counter()
        if variant == "e2e":
            model = CoinIdOnlyModel(config.n_coin_ids, config.coin_emb_dim,
                                    np.random.default_rng(seed))
        elif variant in ("cbow", "sg"):
            model = CoinIdOnlyModel(config.n_coin_ids, config.coin_emb_dim,
                                    np.random.default_rng(seed),
                                    coin_vectors=vectors[variant])
        elif variant == "snn":
            model = SNN(config, np.random.default_rng(seed))
        elif variant in ("snn_c", "snn_s"):
            key = "cbow" if variant == "snn_c" else "sg"
            model = SNN(config, np.random.default_rng(seed),
                        coin_vectors=vectors[key], freeze_coin_embedding=True)
        else:
            raise ValueError(f"unknown variant {variant!r}")
        trainer.fit(model, assembled.train, assembled.validation)
        scores = predict_scores(model, assembled.test)
        outcome.hr[variant] = evaluate_scores(assembled.test, scores, HR_KS)
        outcome.train_seconds[variant] = time.perf_counter() - started
        outcome.models[variant] = model
    return outcome
