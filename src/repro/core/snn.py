"""SNN — the Sequence Neural Network of §5.2 (Figure 7).

Architecture:

* **Embedding layer** — channel-id and coin-id embeddings; the target coin
  and the coins in the pump-history sequence *share one latent space*
  (paper: "to reduce the redundancy of parameters").  Embeddings are
  concatenated with numeric features (eqs. 1-2).
* **Positional attention** — encodes the ``(N, K)`` sequence into ``h_s``
  with per-feature multi-channel attention over positions (eqs. 3-6).
* **MLP head** — ``sigmoid(MLP(h_c ⊕ h_t ⊕ h_s))`` (eq. 7), trained with
  the negative log-likelihood of eq. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import MLP, Embedding, Module, PositionalAttention, Tensor, concat


@dataclass(frozen=True)
class SNNConfig:
    """Hyper-parameters of SNN and its deep competitors."""

    n_channels: int
    n_coin_ids: int
    n_numeric: int
    seq_len: int
    n_seq_numeric: int
    channel_emb_dim: int = 8
    coin_emb_dim: int = 8
    attention_channels: int = 8     # paper: "the number of channel is set to 8"
    hidden_dims: tuple[int, ...] = (64, 32)
    dropout: float = 0.0

    @property
    def n_seq_features(self) -> int:
        """K: per-position feature count (embedding dims + numerics)."""
        return self.coin_emb_dim + self.n_seq_numeric


@dataclass
class Batch:
    """A model-input minibatch (plain numpy arrays)."""

    channel_idx: np.ndarray
    coin_idx: np.ndarray
    numeric: np.ndarray
    seq_coin_idx: np.ndarray
    seq_numeric: np.ndarray
    seq_mask: np.ndarray
    label: np.ndarray

    def __len__(self) -> int:
        return len(self.label)


class SNN(Module):
    """The paper's model.  ``forward`` returns pre-sigmoid logits ``(B,)``."""

    def __init__(self, config: SNNConfig, rng: np.random.Generator,
                 coin_vectors: np.ndarray | None = None,
                 freeze_coin_embedding: bool = False):
        """``coin_vectors`` optionally initializes the shared coin embedding
        (the §5.3 cold-start fix: SkipGram / CBoW word vectors); when given
        with ``freeze_coin_embedding`` the table stays fixed (SNN_S, SNN_C).
        """
        super().__init__()
        self.config = config
        self.channel_embedding = Embedding(config.n_channels, config.channel_emb_dim, rng)
        if coin_vectors is not None:
            if coin_vectors.shape != (config.n_coin_ids, config.coin_emb_dim):
                raise ValueError(
                    f"coin_vectors must be {(config.n_coin_ids, config.coin_emb_dim)}, "
                    f"got {coin_vectors.shape}"
                )
            self.coin_embedding = Embedding.from_pretrained(
                coin_vectors, frozen=freeze_coin_embedding
            )
        else:
            self.coin_embedding = Embedding(config.n_coin_ids, config.coin_emb_dim, rng)
        self.attention = PositionalAttention(
            config.seq_len, config.n_seq_features,
            channels=config.attention_channels, rng=rng,
        )
        head_in = (
            config.channel_emb_dim + config.coin_emb_dim + config.n_numeric
            + self.attention.output_dim
        )
        self.head = MLP([head_in, *config.hidden_dims, 1], rng,
                        dropout=config.dropout)

    def encode_sequence(self, batch: Batch) -> Tensor:
        """``h_s``: positional-attention encoding of the pump history."""
        seq_emb = self.coin_embedding(batch.seq_coin_idx)      # (B, N, E)
        seq = concat([seq_emb, Tensor(batch.seq_numeric)], axis=-1)
        seq = seq * Tensor(batch.seq_mask[:, :, None])          # zero out PAD
        return self.attention(seq)

    def forward(self, batch: Batch) -> Tensor:
        h_c = concat(
            [self.channel_embedding(batch.channel_idx)], axis=-1
        )
        h_t = concat(
            [self.coin_embedding(batch.coin_idx), Tensor(batch.numeric)], axis=-1
        )
        h_s = self.encode_sequence(batch)
        logits = self.head(concat([h_c, h_t, h_s], axis=-1))
        return logits.reshape(len(batch))

    def attention_heatmap(self) -> np.ndarray:
        """Per-feature attention weights ``(K * C, N)`` for Figure 10."""
        return self.attention.attention_weights()
