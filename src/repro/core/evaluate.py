"""Ranking evaluation — HR@k over per-event candidate lists (§6.1).

For each pump event the positive coin is ranked against all its negatives
by predicted pump probability; HR@k is the fraction of events whose true
coin lands in the top k.  ``k in (1, 3, 5, 10, 20, 30)`` as in Tables 5-6.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.features.assembler import AssembledSplit
from repro.ml import hit_ratio_at_k
from repro.nn import Module

HR_KS = (1, 3, 5, 10, 20, 30)


def evaluate_scores(split: AssembledSplit, scores: np.ndarray,
                    ks: Sequence[int] = HR_KS) -> dict[int, float]:
    """HR@k of precomputed scores on a split."""
    if len(scores) != len(split):
        raise ValueError("scores and split must align")
    return hit_ratio_at_k(split.ranking_lists(scores), ks)


def evaluate_model(model: Module, split: AssembledSplit,
                   ks: Sequence[int] = HR_KS) -> dict[int, float]:
    """HR@k of a deep ranker on a split."""
    from repro.core.train import predict_scores

    return evaluate_scores(split, predict_scores(model, split), ks)


def ranking_metric(model: Module, split: AssembledSplit, k: int = 10) -> float:
    """Single scalar used for model selection during training."""
    return evaluate_model(model, split, ks=(k,))[k]


def random_ranker_baseline(split: AssembledSplit, ks: Sequence[int] = HR_KS,
                           seed: int = 0) -> dict[int, float]:
    """Expected HR@k of uniformly random scores (the null model)."""
    rng = np.random.default_rng(seed)
    return evaluate_scores(split, rng.random(len(split)), ks)


def format_hr_table(results: Mapping[str, Mapping[int, float]],
                    ks: Sequence[int] = HR_KS) -> str:
    """Render a Table 5 / Table 6 style text table."""
    from repro.utils import format_table

    headers = ["Metric"] + list(results.keys())
    rows = []
    for k in ks:
        rows.append([f"HR@{k}"] + [results[name][k] for name in results])
    return format_table(headers, rows)
