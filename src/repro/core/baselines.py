"""The paper's competitor models (§6.1).

Deep baselines share SNN's embedding layer and MLP head and differ only in
the sequence encoder:

* **DNN** — no sequence at all (ablates the pump history);
* **LSTM / BiLSTM / GRU / BiGRU** — recurrent encoders (hidden 32);
* **TCN** — depth 3, kernel 4, 16 channels (covers the 20-step sequence).

Classic baselines (LR, RF) consume hand-crafted features with mean-encoded
categorical ids, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.snn import Batch, SNN, SNNConfig
from repro.ml import (
    LogisticRegression,
    MeanEncoder,
    RandomForestClassifier,
)
from repro.nn import MLP, TCN, Embedding, Module, Tensor, concat, make_rnn

RNN_HIDDEN_DIM = 32   # paper: "the hidden dimension of cells is set to 32"
TCN_CHANNELS = 16     # paper: depth 3, 16 channels/layer, kernel 4
TCN_DEPTH = 3
TCN_KERNEL = 4

DEEP_MODEL_NAMES = ("dnn", "lstm", "bilstm", "gru", "bigru", "tcn", "snn")
CLASSIC_MODEL_NAMES = ("lr", "rf")
ALL_MODEL_NAMES = CLASSIC_MODEL_NAMES + DEEP_MODEL_NAMES


class _DeepRanker(Module):
    """Shared skeleton: embeddings + (pluggable sequence encoder) + MLP."""

    def __init__(self, config: SNNConfig, rng: np.random.Generator,
                 sequence_encoder: Module | None, seq_summary_dim: int):
        super().__init__()
        self.config = config
        self.channel_embedding = Embedding(config.n_channels, config.channel_emb_dim, rng)
        self.coin_embedding = Embedding(config.n_coin_ids, config.coin_emb_dim, rng)
        self.sequence_encoder = sequence_encoder
        head_in = (
            config.channel_emb_dim + config.coin_emb_dim + config.n_numeric
            + seq_summary_dim
        )
        self.head = MLP([head_in, *config.hidden_dims, 1], rng,
                        dropout=config.dropout)

    def _sequence_input(self, batch: Batch) -> Tensor:
        seq_emb = self.coin_embedding(batch.seq_coin_idx)
        seq = concat([seq_emb, Tensor(batch.seq_numeric)], axis=-1)
        return seq * Tensor(batch.seq_mask[:, :, None])

    def encode_sequence(self, batch: Batch) -> Tensor | None:
        if self.sequence_encoder is None:
            return None
        # Histories are stored newest-first; recurrent/convolutional encoders
        # read oldest-first so their final state reflects the newest pump.
        seq = self._sequence_input(batch).flip(axis=1)
        return self.sequence_encoder(seq)

    def forward(self, batch: Batch) -> Tensor:
        parts = [
            self.channel_embedding(batch.channel_idx),
            self.coin_embedding(batch.coin_idx),
            Tensor(batch.numeric),
        ]
        h_s = self.encode_sequence(batch)
        if h_s is not None:
            parts.append(h_s)
        return self.head(concat(parts, axis=-1)).reshape(len(batch))


class DNNRanker(_DeepRanker):
    """SNN minus the sequence — the paper's DNN baseline."""

    def __init__(self, config: SNNConfig, rng: np.random.Generator):
        super().__init__(config, rng, sequence_encoder=None, seq_summary_dim=0)


class RNNRanker(_DeepRanker):
    """LSTM/BiLSTM/GRU/BiGRU sequence encoders."""

    def __init__(self, kind: str, config: SNNConfig, rng: np.random.Generator):
        encoder = make_rnn(kind, config.n_seq_features, RNN_HIDDEN_DIM, rng)
        super().__init__(config, rng, sequence_encoder=encoder,
                         seq_summary_dim=encoder.output_dim)
        self.kind = kind


class TCNRanker(_DeepRanker):
    """Temporal-convolutional sequence encoder."""

    def __init__(self, config: SNNConfig, rng: np.random.Generator):
        encoder = TCN(config.n_seq_features, channels=TCN_CHANNELS,
                      depth=TCN_DEPTH, kernel_size=TCN_KERNEL, rng=rng)
        super().__init__(config, rng, sequence_encoder=encoder,
                         seq_summary_dim=encoder.output_dim)


def make_model(name: str, config: SNNConfig, seed: int = 0) -> Module:
    """Factory for every deep competitor of Table 5.

    The returned module carries its factory name as ``model_name`` so the
    artifact layer (:mod:`repro.registry`) can rebuild the architecture.
    """
    rng = np.random.default_rng(seed)
    name = name.lower()
    if name == "snn":
        model = SNN(config, rng)
    elif name == "dnn":
        model = DNNRanker(config, rng)
    elif name in ("lstm", "bilstm", "gru", "bigru"):
        model = RNNRanker(name, config, rng)
    elif name == "tcn":
        model = TCNRanker(config, rng)
    else:
        raise ValueError(f"unknown model {name!r}; choose from {DEEP_MODEL_NAMES}")
    model.model_name = name
    return model


class ClassicRanker:
    """LR / RF on hand-crafted features with mean-encoded ids (§6.1).

    Mean encoding "compensates for the lack of embedding layers": channel
    and coin ids become smoothed positive rates estimated on training data.
    """

    def __init__(self, kind: str, seed: int = 0):
        if kind not in CLASSIC_MODEL_NAMES:
            raise ValueError("kind must be 'lr' or 'rf'")
        self.kind = kind
        if kind == "lr":
            self.model = LogisticRegression(epochs=250, class_weight="balanced")
        else:
            self.model = RandomForestClassifier(
                n_estimators=40, max_depth=14, max_samples=20_000,
                class_weight="balanced", seed=seed,
            )
        self.channel_encoder = MeanEncoder()
        self.coin_encoder = MeanEncoder()

    def _features(self, split) -> np.ndarray:
        return np.column_stack([
            split.numeric,
            self.channel_encoder.transform(split.channel_idx),
            self.coin_encoder.transform(split.coin_idx),
        ])

    def fit(self, train) -> "ClassicRanker":
        self.channel_encoder.fit(train.channel_idx, train.label)
        self.coin_encoder.fit(train.coin_idx, train.label)
        self.model.fit(self._features(train), train.label)
        return self

    def predict_proba(self, split) -> np.ndarray:
        return self.model.predict_proba(self._features(split))
