"""TargetCoinPredictor — the deployment-facing API of the paper's intro.

Given a pump announcement (channel, exchange, scheduled time), rank *every
eligible coin listed on that exchange* by pump probability one hour before
the pump — "real-time efficiency to ensure the timeliness" (§1).

The predictor wraps a trained ranker with the feature assembly it was
trained on, so scoring a new announcement is a single call:

>>> predictor = TargetCoinPredictor(world, dataset, model)      # doctest: +SKIP
>>> ranking = predictor.rank(channel_id, exchange_id=0, pump_time=t)  # doctest: +SKIP
>>> ranking.top(5)                                              # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.snn import Batch
from repro.core.train import predict_scores
from repro.data.dataset import TargetCoinDataset
from repro.features.assembler import FeatureAssembler
from repro.features.coin import coin_feature_matrix
from repro.features.market_windows import market_feature_matrix
from repro.features.sequence import encode_history
from repro.ml.scaling import StandardScaler
from repro.nn import Module, no_grad
from repro.simulation.coins import PAIR_SYMBOLS
from repro.simulation.world import SyntheticWorld


@dataclass(frozen=True)
class CoinScore:
    """One candidate coin's predicted pump probability."""

    coin_id: int
    symbol: str
    probability: float


@dataclass
class Ranking:
    """Scored candidates of one announcement, sorted by probability."""

    channel_id: int
    exchange_id: int
    pump_time: float
    scores: list[CoinScore]

    def top(self, k: int) -> list[CoinScore]:
        return self.scores[:k]

    def rank_of(self, coin_id: int) -> int:
        """1-based rank of a coin, or -1 if not a candidate."""
        for i, score in enumerate(self.scores):
            if score.coin_id == coin_id:
                return i + 1
        return -1


class TargetCoinPredictor:
    """Rank listed coins for an announced pump event.

    Parameters
    ----------
    world:
        The market/universe oracle used to compute features.
    dataset:
        The extracted P&D dataset (provides per-channel pump histories and
        split statistics for feature standardization).
    model:
        A trained deep ranker (SNN or any Table 5 competitor).
    assembler:
        The fitted :class:`FeatureAssembler`; rebuilt if omitted.
    """

    def __init__(self, world: SyntheticWorld, dataset: TargetCoinDataset,
                 model: Module, assembler: FeatureAssembler | None = None):
        self.world = world
        self.dataset = dataset
        self.model = model
        self.assembler = assembler or FeatureAssembler(world, dataset)
        self._channel_index = self.assembler.channel_index
        self._subscribers = self.assembler.subscribers
        self._numeric_scaler = StandardScaler()
        self._seq_scaler = StandardScaler()
        self._fit_scalers()

    def _fit_scalers(self) -> None:
        """Fit feature scalers on raw train-split features."""
        train_rows = [e for e in self.dataset.examples if e.split == "train"]
        if not train_rows:
            raise ValueError("dataset has no training rows")
        rng = np.random.default_rng(0)
        sample = rng.choice(len(train_rows), size=min(2000, len(train_rows)),
                            replace=False)
        numeric_blocks = []
        seq_blocks = []
        seen_lists: set[int] = set()
        for idx in sample:
            example = train_rows[int(idx)]
            coins = np.array([example.coin_id])
            block = self._raw_numeric(example.channel_id, coins, example.time)
            numeric_blocks.append(block)
            if example.list_id not in seen_lists:
                seen_lists.add(example.list_id)
                history = self.dataset.history_before(
                    example.channel_id, example.time,
                    self.assembler.sequence_length,
                )
                seq = encode_history(self.world.market, history,
                                     self.assembler.sequence_length)
                if seq.mask.sum():
                    seq_blocks.append(seq.numeric[seq.mask > 0])
        self._numeric_scaler.fit(np.vstack(numeric_blocks))
        if seq_blocks:
            self._seq_scaler.fit(np.vstack(seq_blocks))
        else:
            from repro.features.sequence import SEQUENCE_NUMERIC_NAMES

            self._seq_scaler.fit(np.zeros((2, len(SEQUENCE_NUMERIC_NAMES))))

    def _raw_numeric(self, channel_id: int, coins: np.ndarray,
                     time: float) -> np.ndarray:
        market = self.world.market
        channel_feature = np.log(self._subscribers.get(channel_id, 1000) + 1.0)
        return np.concatenate([
            np.full((len(coins), 1), channel_feature),
            coin_feature_matrix(market, coins, time),
            market_feature_matrix(market, coins, time),
        ], axis=1)

    def candidates(self, exchange_id: int, pump_time: float) -> np.ndarray:
        """Eligible coins: listed on the exchange, not a pairing major."""
        listed = self.world.coins.listed_coins(exchange_id, pump_time)
        return listed[listed >= len(PAIR_SYMBOLS)]

    def rank(self, channel_id: int, exchange_id: int,
             pump_time: float) -> Ranking:
        """Score every candidate coin for one announced pump."""
        if channel_id not in self._channel_index:
            raise KeyError(f"channel {channel_id} unseen during training")
        coins = self.candidates(exchange_id, pump_time)
        if len(coins) == 0:
            raise ValueError("no eligible coins listed at this time")
        numeric = self._numeric_scaler.transform(
            self._raw_numeric(channel_id, coins, pump_time)
        )
        history = self.dataset.history_before(
            channel_id, pump_time, self.assembler.sequence_length
        )
        seq = encode_history(self.world.market, history,
                             self.assembler.sequence_length)
        seq_numeric = self._seq_scaler.transform(seq.numeric) * seq.mask[:, None]
        n = len(coins)
        batch = Batch(
            channel_idx=np.full(n, self._channel_index[channel_id]),
            coin_idx=coins,
            numeric=numeric,
            seq_coin_idx=np.tile(seq.coin_ids, (n, 1)),
            seq_numeric=np.tile(seq_numeric, (n, 1, 1)),
            seq_mask=np.tile(seq.mask, (n, 1)),
            label=np.zeros(n),
        )
        self.model.eval()
        with no_grad():
            logits = self.model(batch).numpy()
        probs = 1.0 / (1.0 + np.exp(-logits))
        order = np.argsort(-probs)
        scores = [
            CoinScore(int(coins[i]), self.world.coins.symbols[int(coins[i])],
                      float(probs[i]))
            for i in order
        ]
        return Ranking(channel_id=channel_id, exchange_id=exchange_id,
                       pump_time=pump_time, scores=scores)
