"""TargetCoinPredictor — the deployment-facing API of the paper's intro.

Given a pump announcement (channel, exchange, scheduled time), rank *every
eligible coin listed on that exchange* by pump probability one hour before
the pump — "real-time efficiency to ensure the timeliness" (§1).

The predictor wraps a trained ranker with the feature assembly it was
trained on, so scoring a new announcement is a single call:

>>> predictor = TargetCoinPredictor(source, dataset, model)     # doctest: +SKIP
>>> ranking = predictor.rank(channel_id, exchange_id=0, pump_time=t)  # doctest: +SKIP
>>> ranking.top(5)                                              # doctest: +SKIP

``source`` is any :class:`repro.sources.DataSource` backend (or a bare
synthetic world, coerced) — the predictor itself is backend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.snn import Batch
from repro.data.dataset import TargetCoinDataset
from repro.features.assembler import FeatureAssembler
from repro.features.coin import coin_feature_matrix
from repro.features.market_windows import market_feature_matrix
from repro.features.sequence import encode_history
from repro.markets import PAIR_SYMBOLS
from repro.ml.scaling import StandardScaler
from repro.nn import Module, no_grad, run_compiled, stable_sigmoid
from repro.sources.base import as_source
from repro.telemetry import span
from repro.utils.payload import (
    payload_float as _payload_float,
    payload_int as _payload_int,
    payload_list as _payload_list,
    payload_str as _payload_str,
)


@dataclass(frozen=True)
class CoinScore:
    """One candidate coin's predicted pump probability."""

    coin_id: int
    symbol: str
    probability: float

    def to_payload(self) -> dict:
        """JSON-safe wire form (shared by the gateway server and client)."""
        return {"coin_id": self.coin_id, "symbol": self.symbol,
                "probability": self.probability}

    @classmethod
    def from_payload(cls, payload: dict) -> "CoinScore":
        if not isinstance(payload, dict):
            raise ValueError("score entry must be an object")
        return cls(
            coin_id=_payload_int(payload, "coin_id"),
            symbol=_payload_str(payload, "symbol"),
            probability=_payload_float(payload, "probability"),
        )


@dataclass(frozen=True)
class RankRequest:
    """One announcement to score: where and when the pump will happen.

    ``candidates`` optionally carries a precomputed eligible-coin set so a
    caller that already resolved it (e.g. a serving gate) avoids a second
    :meth:`TargetCoinPredictor.candidates` lookup.
    """

    channel_id: int
    exchange_id: int
    pump_time: float
    candidates: np.ndarray | None = field(default=None, compare=False)


# Pluggable feature providers for :meth:`TargetCoinPredictor.rank_many`.
# ``FeaturesFn(exchange_id, coins, time)`` returns the *raw* (unscaled)
# coin + market feature block for the candidates; ``HistoryFn(channel_id,
# time)`` returns the channel's chronological pump history strictly before
# ``time``.  A serving layer substitutes memoized versions of both.
FeaturesFn = Callable[[int, np.ndarray, float], np.ndarray]
HistoryFn = Callable[[int, float], "Sequence"]


@dataclass
class Ranking:
    """Scored candidates of one announcement, sorted by probability."""

    channel_id: int
    exchange_id: int
    pump_time: float
    scores: list[CoinScore]

    def top(self, k: int) -> list[CoinScore]:
        return self.scores[:k]

    def rank_of(self, coin_id: int) -> int:
        """1-based rank of a coin, or -1 if not a candidate."""
        for i, score in enumerate(self.scores):
            if score.coin_id == coin_id:
                return i + 1
        return -1

    def to_payload(self) -> dict:
        """JSON-safe wire form; probabilities survive bit-for-bit.

        ``json`` serializes floats with ``repr`` (shortest round-tripping
        form), so a ranking decoded from this payload compares exactly
        equal to the in-process original — the property the gateway's
        parity tests pin.
        """
        return {
            "channel_id": self.channel_id,
            "exchange_id": self.exchange_id,
            "pump_time": self.pump_time,
            "scores": [score.to_payload() for score in self.scores],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Ranking":
        if not isinstance(payload, dict):
            raise ValueError("ranking must be an object")
        return cls(
            channel_id=_payload_int(payload, "channel_id"),
            exchange_id=_payload_int(payload, "exchange_id"),
            pump_time=_payload_float(payload, "pump_time"),
            scores=[CoinScore.from_payload(entry)
                    for entry in _payload_list(payload, "scores")],
        )


class TargetCoinPredictor:
    """Rank listed coins for an announced pump event.

    Parameters
    ----------
    source:
        The data backend (market/universe oracle) used to compute features;
        a :class:`repro.sources.DataSource` or a bare synthetic world.
    dataset:
        The extracted P&D dataset (provides per-channel pump histories and
        split statistics for feature standardization).
    model:
        A trained deep ranker (SNN or any Table 5 competitor).
    assembler:
        The fitted :class:`FeatureAssembler`; rebuilt if omitted.
    scalers:
        Pre-fitted ``(numeric_scaler, seq_scaler)`` pair, e.g. restored
        from a :mod:`repro.registry` artifact; fitted on the dataset's
        train split when omitted.
    """

    def __init__(self, source, dataset: TargetCoinDataset,
                 model: Module, assembler: FeatureAssembler | None = None,
                 scalers: tuple[StandardScaler, StandardScaler] | None = None):
        self.source = as_source(source)
        self.dataset = dataset
        self.model = model
        self.assembler = assembler or FeatureAssembler(self.source, dataset)
        self._channel_index = self.assembler.channel_index
        self._subscribers = self.assembler.subscribers
        # Training provenance carried into saved artifacts (set by
        # train_predictor / from_artifact; stays empty for ad-hoc builds).
        self.provenance: dict = {}
        # Shared with the assembler: encodings computed during assembly are
        # reused by scaler fitting and offline ranking (and vice versa).
        self._sequence_cache = self.assembler.sequence_cache
        if scalers is not None:
            self._numeric_scaler, self._seq_scaler = scalers
        else:
            self._numeric_scaler = StandardScaler()
            self._seq_scaler = StandardScaler()
            self._fit_scalers()

    def _fit_scalers(self) -> None:
        """Fit feature scalers on raw train-split features."""
        train_rows = [e for e in self.dataset.examples if e.split == "train"]
        if not train_rows:
            raise ValueError("dataset has no training rows")
        rng = np.random.default_rng(0)
        sample = rng.choice(len(train_rows), size=min(2000, len(train_rows)),
                            replace=False)
        numeric_blocks = []
        seq_blocks = []
        seen_lists: set[int] = set()
        for idx in sample:
            example = train_rows[int(idx)]
            coins = np.array([example.coin_id])
            block = self._raw_numeric(example.channel_id, coins, example.time)
            numeric_blocks.append(block)
            if example.list_id not in seen_lists:
                seen_lists.add(example.list_id)
                seq = self._sequence_cache.get(example.channel_id, example.time)
                if seq.mask.sum():
                    seq_blocks.append(seq.numeric[seq.mask > 0])
        self._numeric_scaler.fit(np.vstack(numeric_blocks))
        if seq_blocks:
            self._seq_scaler.fit(np.vstack(seq_blocks))
        else:
            from repro.features.sequence import SEQUENCE_NUMERIC_NAMES

            self._seq_scaler.fit(np.zeros((2, len(SEQUENCE_NUMERIC_NAMES))))

    def coin_market_block(self, exchange_id: int, coins: np.ndarray,
                          time: float) -> np.ndarray:
        """Raw coin-stable + market-movement features for candidates.

        Channel-independent, so a serving layer can memoize it per
        (exchange, time) and share it across concurrent announcements.
        When the assembler carries a signal engine (see
        :mod:`repro.signals`), its channels are appended here — which is
        the single choke point that makes signal-aware features flow
        through scaler fitting, offline assembly, and the serving
        feature cache without any of those layers changing.
        """
        market = self.source.market
        parts = [
            coin_feature_matrix(market, coins, time),
            market_feature_matrix(market, coins, time),
        ]
        engine = self.assembler.signal_engine
        if engine is not None:
            parts.append(engine.feature_block(coins, time))
        return np.concatenate(parts, axis=1)

    def _raw_numeric(self, channel_id: int, coins: np.ndarray, time: float,
                     block: np.ndarray | None = None) -> np.ndarray:
        if block is None:
            block = self.coin_market_block(0, coins, time)
        channel_feature = np.log(self._subscribers.get(channel_id, 1000) + 1.0)
        return np.concatenate([
            np.full((len(coins), 1), channel_feature), block,
        ], axis=1)

    # -- artifact lifecycle (see repro.registry) -----------------------------

    def to_artifact(self, provenance: dict | None = None):
        """Snapshot this predictor into a servable, saveable bundle.

        Returns a :class:`repro.registry.PredictorArtifact`; call its
        ``save(path)`` (or :func:`repro.registry.save_artifact`) to
        persist it.
        """
        from repro.registry import PredictorArtifact

        return PredictorArtifact.from_predictor(self, provenance=provenance)

    @classmethod
    def from_artifact(cls, artifact, source,
                      dataset: TargetCoinDataset) -> "TargetCoinPredictor":
        """Reconstruct a predictor from an artifact — no training involved.

        ``artifact`` is a :class:`repro.registry.PredictorArtifact` or a
        path to a saved artifact directory; ``source`` is the data backend
        (which need not be the backend the model was trained on, as long
        as it describes the same channel/coin universe).
        """
        from repro.registry import PredictorArtifact

        if not isinstance(artifact, PredictorArtifact):
            artifact = PredictorArtifact.load(artifact)
        return artifact.to_predictor(source, dataset)

    def candidates(self, exchange_id: int, pump_time: float) -> np.ndarray:
        """Eligible coins: listed on the exchange, not a pairing major."""
        listed = self.source.coins.listed_coins(exchange_id, pump_time)
        return listed[listed >= len(PAIR_SYMBOLS)]

    def knows_channel(self, channel_id: int) -> bool:
        """True when the channel was part of the training universe."""
        return channel_id in self._channel_index

    def rank(self, channel_id: int, exchange_id: int,
             pump_time: float) -> Ranking:
        """Score every candidate coin for one announced pump."""
        return self.rank_many(
            [RankRequest(channel_id, exchange_id, pump_time)]
        )[0]

    def rank_many(self, requests: Sequence[RankRequest], *,
                  features_fn: FeaturesFn | None = None,
                  history_fn: HistoryFn | None = None) -> list[Ranking]:
        """Score several announcements in one model forward pass.

        All candidate rows are concatenated into a single :class:`Batch`, so
        N concurrent announcements cost one pass instead of N.  The model is
        row-independent (no batch-coupled layers), hence per-row scores match
        :meth:`rank` on each request individually.

        ``features_fn`` / ``history_fn`` override the default raw-feature and
        pump-history lookups (see :data:`FeaturesFn`, :data:`HistoryFn`) —
        the hooks a serving cache plugs into.
        """
        if not requests:
            return []
        seq_len = self.assembler.sequence_length
        rankings: list[Ranking | None] = [None] * len(requests)
        # Requests whose candidate set turned out non-empty, in batch order.
        scored_indices: list[int] = []
        per_request_coins: list[np.ndarray] = []
        numeric_blocks: list[np.ndarray] = []
        channel_rows: list[np.ndarray] = []
        seq_ids_rows: list[np.ndarray] = []
        seq_numeric_rows: list[np.ndarray] = []
        seq_mask_rows: list[np.ndarray] = []
        for index, request in enumerate(requests):
            if request.channel_id not in self._channel_index:
                raise KeyError(
                    f"channel {request.channel_id} unseen during training"
                )
            coins = request.candidates
            if coins is None:
                coins = self.candidates(request.exchange_id, request.pump_time)
            if len(coins) == 0:
                # Nothing listed (yet) for this announcement: an empty
                # ranking, not an exception and not a model invocation —
                # an always-on serving loop must outlive it.
                rankings[index] = Ranking(
                    channel_id=request.channel_id,
                    exchange_id=request.exchange_id,
                    pump_time=request.pump_time,
                    scores=[],
                )
                continue
            scored_indices.append(index)
            if features_fn is not None:
                block = features_fn(request.exchange_id, coins,
                                    request.pump_time)
            else:
                block = self.coin_market_block(request.exchange_id, coins,
                                                request.pump_time)
            numeric_blocks.append(self._numeric_scaler.transform(
                self._raw_numeric(request.channel_id, coins,
                                  request.pump_time, block)
            ))
            if history_fn is not None:
                # Caller-provided histories (e.g. the serving layer's growing
                # per-channel cache) are mutable, so bypass the LRU.
                with span("sequence.encode",
                          channel_id=request.channel_id):
                    history = history_fn(request.channel_id,
                                         request.pump_time)
                    seq = encode_history(self.source.market, history,
                                         seq_len)
            else:
                seq = self._sequence_cache.get(
                    request.channel_id, request.pump_time
                )
            seq_numeric = (
                self._seq_scaler.transform(seq.numeric) * seq.mask[:, None]
            )
            n = len(coins)
            per_request_coins.append(coins)
            channel_rows.append(
                np.full(n, self._channel_index[request.channel_id])
            )
            seq_ids_rows.append(np.tile(seq.coin_ids, (n, 1)))
            seq_numeric_rows.append(np.tile(seq_numeric, (n, 1, 1)))
            seq_mask_rows.append(np.tile(seq.mask, (n, 1)))
        if not per_request_coins:
            return rankings
        total = sum(len(c) for c in per_request_coins)
        # A one-row batch would dispatch BLAS gemv kernels whose
        # accumulation order differs (last-ulp) from the gemm kernels
        # every larger batch shares; duplicating the row keeps a single-
        # candidate announcement's score bit-identical whether it is
        # ranked solo or coalesced into a micro-batch.  The demux loop
        # below only reads the first ``total`` probabilities, so the
        # padding row is never surfaced.
        pad = total == 1

        def _rows(parts, stack):
            data = stack(parts)
            if pad:
                data = np.concatenate([data, data[:1]], axis=0)
            return data

        batch = Batch(
            channel_idx=_rows(channel_rows, np.concatenate),
            coin_idx=_rows(per_request_coins, np.concatenate),
            numeric=_rows(numeric_blocks, np.vstack),
            seq_coin_idx=_rows(seq_ids_rows, np.vstack),
            seq_numeric=_rows(seq_numeric_rows,
                              lambda p: np.concatenate(p, axis=0)),
            seq_mask=_rows(seq_mask_rows, np.vstack),
            label=np.zeros(total + int(pad)),
        )
        self.model.eval()
        # One traced plan (shared with batch evaluation and the streaming
        # service) scores the whole micro-batch; eager is the fallback.
        with span("nn.forward", rows=total,
                  model=type(self.model).__name__) as forward:
            logits = run_compiled(self.model, batch)
            if logits is None:
                forward.set("compiled", False)
                with no_grad():
                    logits = self.model(batch).numpy()
        probs = stable_sigmoid(logits)
        offset = 0
        for index, coins in zip(scored_indices, per_request_coins):
            request = requests[index]
            slice_probs = probs[offset:offset + len(coins)]
            offset += len(coins)
            order = np.argsort(-slice_probs)
            scores = [
                CoinScore(int(coins[i]),
                          self.source.coins.symbols[int(coins[i])],
                          float(slice_probs[i]))
                for i in order
            ]
            rankings[index] = Ranking(
                channel_id=request.channel_id,
                exchange_id=request.exchange_id,
                pump_time=request.pump_time,
                scores=scores,
            )
        return rankings
