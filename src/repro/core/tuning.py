"""Hyper-parameter search for the deep rankers.

A deterministic grid/random search over :class:`Trainer` and
:class:`SNNConfig` knobs, selecting by validation HR@k.  Useful for
adopters retuning on their own extracted datasets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.baselines import make_model
from repro.core.evaluate import evaluate_scores
from repro.core.experiment import snn_config_for
from repro.core.train import Trainer, predict_scores
from repro.features.assembler import AssembledDataset

TRAINER_KEYS = frozenset({"lr", "epochs", "batch_size", "pos_weight", "grad_clip"})
MODEL_KEYS = frozenset({
    "channel_emb_dim", "coin_emb_dim", "attention_channels", "hidden_dims",
    "dropout",
})


@dataclass
class TrialResult:
    """One evaluated configuration."""

    params: dict
    validation_hr: float
    test_hr: dict[int, float] = field(default_factory=dict)


@dataclass
class SearchResult:
    """All trials plus the selected best configuration."""

    trials: list[TrialResult] = field(default_factory=list)
    best: TrialResult | None = None


def _split_params(params: Mapping) -> tuple[dict, dict]:
    trainer_kwargs, model_kwargs = {}, {}
    for key, value in params.items():
        if key in TRAINER_KEYS:
            trainer_kwargs[key] = value
        elif key in MODEL_KEYS:
            model_kwargs[key] = value
        else:
            raise KeyError(f"unknown hyper-parameter {key!r}")
    return trainer_kwargs, model_kwargs


def grid_search(assembled: AssembledDataset, grid: Mapping[str, Sequence],
                model_name: str = "snn", select_k: int = 10,
                seed: int = 0, evaluate_test: bool = False) -> SearchResult:
    """Exhaustive search over the cartesian product of ``grid``.

    ``grid`` maps hyper-parameter names (Trainer or SNNConfig fields) to
    candidate values; selection maximizes validation HR@``select_k``.
    """
    if not grid:
        raise ValueError("empty grid")
    keys = sorted(grid)
    result = SearchResult()
    for values in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, values))
        trainer_kwargs, model_kwargs = _split_params(params)
        config = snn_config_for(assembled, **model_kwargs)
        model = make_model(model_name, config, seed=seed)
        trainer = Trainer(seed=seed, **trainer_kwargs)
        trainer.fit(model, assembled.train, assembled.validation)
        val_scores = predict_scores(model, assembled.validation)
        val_hr = evaluate_scores(assembled.validation, val_scores,
                                 ks=(select_k,))[select_k]
        trial = TrialResult(params=params, validation_hr=float(val_hr))
        if evaluate_test:
            trial.test_hr = evaluate_scores(
                assembled.test, predict_scores(model, assembled.test)
            )
        result.trials.append(trial)
        if result.best is None or trial.validation_hr > result.best.validation_hr:
            result.best = trial
    return result


def random_search(assembled: AssembledDataset, space: Mapping[str, Sequence],
                  n_trials: int, model_name: str = "snn", select_k: int = 10,
                  seed: int = 0) -> SearchResult:
    """Random search: each trial samples one value per hyper-parameter."""
    if n_trials < 1:
        raise ValueError("n_trials must be positive")
    rng = np.random.default_rng(seed)
    keys = sorted(space)
    result = SearchResult()
    for trial_idx in range(n_trials):
        params = {k: space[k][int(rng.integers(len(space[k])))] for k in keys}
        trainer_kwargs, model_kwargs = _split_params(params)
        config = snn_config_for(assembled, **model_kwargs)
        model = make_model(model_name, config, seed=seed + trial_idx)
        trainer = Trainer(seed=seed + trial_idx, **trainer_kwargs)
        trainer.fit(model, assembled.train, assembled.validation)
        val_scores = predict_scores(model, assembled.validation)
        val_hr = evaluate_scores(assembled.validation, val_scores,
                                 ks=(select_k,))[select_k]
        trial = TrialResult(params=params, validation_hr=float(val_hr))
        result.trials.append(trial)
        if result.best is None or trial.validation_hr > result.best.validation_hr:
            result.best = trial
    return result
