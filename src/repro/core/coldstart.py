"""The coin-side cold-start problem and its word-embedding fix (§5.3).

Coins that first appear (or are first pumped) in the test period have
untrained / weakly-trained coin-id embeddings, which the model cannot rank
(Figure 9, Table 6).  The fix: pre-train SkipGram / CBoW word embeddings on
the full Telegram corpus and use the *coin symbol's* word vector in place of
the end-to-end embedding — word vectors cover almost every symbol because
coins are discussed long before they are pumped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.snn import Batch, SNNConfig
from repro.features.assembler import AssembledSplit
from repro.nn import MLP, Embedding, Module, Tensor
from repro.sources.base import as_source
from repro.text import Word2Vec, sentences_to_tokens


def train_coin_embeddings(source, mode: str = "skipgram",
                          dim: int = 8, epochs: int = 2,
                          seed: int = 0) -> tuple[np.ndarray, Word2Vec]:
    """Pre-train word vectors on the Telegram corpus; extract coin rows.

    ``source`` is any data backend (or a bare synthetic world); the
    corpus is its full message stream.  Returns ``(matrix, model)`` where
    ``matrix`` has ``n_coins + 1`` rows (the last is the PAD row, all
    zeros).  Symbols missing from the corpus fall back to zeros — still far
    better than a random untrained embedding because zero is a *consistent*
    neutral point (cf. Figure 9c-d).
    """
    source = as_source(source)
    corpus = sentences_to_tokens([m.text for m in source.messages()])
    model = Word2Vec(corpus, dim=dim, mode=mode, epochs=epochs, min_count=2,
                     seed=seed)
    n = source.coins.n_coins
    matrix = np.zeros((n + 1, dim))
    covered = 0
    for coin_id, symbol in enumerate(source.coins.symbols):
        token = symbol.lower()
        if token in model:
            matrix[coin_id] = model.vector(token)
            covered += 1
    # Scale to a comparable magnitude with trained id-embeddings.
    scale = np.abs(matrix).max()
    if scale > 0:
        matrix = matrix / scale * 0.5
    return matrix, model


class CoinIdOnlyModel(Module):
    """A DNN that sees *only* the candidate coin-id embedding (Table 6).

    ``E2E`` trains the embedding end-to-end; ``CBOW``/``SG`` freeze it to
    pre-trained word vectors.  Deliberately blind to every other feature so
    Table 6 isolates embedding quality.
    """

    def __init__(self, n_coin_ids: int, dim: int, rng: np.random.Generator,
                 coin_vectors: np.ndarray | None = None):
        super().__init__()
        if coin_vectors is not None:
            self.coin_embedding = Embedding.from_pretrained(coin_vectors, frozen=True)
        else:
            self.coin_embedding = Embedding(n_coin_ids, dim, rng)
        self.head = MLP([dim, 32, 1], rng)

    def forward(self, batch: Batch) -> Tensor:
        emb = self.coin_embedding(batch.coin_idx)
        return self.head(emb).reshape(len(batch))


@dataclass(frozen=True)
class EmbeddingNormStudy:
    """ℓ1-norm distributions behind Figure 9."""

    train_positive: np.ndarray
    train_negative: np.ndarray
    test_positive_warm: np.ndarray   # pumped in training too ("positive1")
    test_positive_cold: np.ndarray   # never pumped in training ("positive2")
    test_negative: np.ndarray
    test_untrained: np.ndarray       # coins absent from the training split


def embedding_l1_norms(embedding_matrix: np.ndarray, train: AssembledSplit,
                       test: AssembledSplit) -> EmbeddingNormStudy:
    """Group coin-embedding ℓ1 norms as Figure 9 does."""
    norms = np.abs(embedding_matrix).sum(axis=1)
    train_pos_coins = set(train.coin_idx[train.label == 1].tolist())
    train_all_coins = set(train.coin_idx.tolist())

    test_pos = test.coin_idx[test.label == 1]
    warm_mask = np.array([c in train_pos_coins for c in test_pos])
    untrained_mask = np.array([c not in train_all_coins for c in test.coin_idx])
    return EmbeddingNormStudy(
        train_positive=norms[train.coin_idx[train.label == 1]],
        train_negative=norms[train.coin_idx[train.label == 0]],
        test_positive_warm=norms[test_pos[warm_mask]],
        test_positive_cold=norms[test_pos[~warm_mask]],
        test_negative=norms[test.coin_idx[test.label == 0]],
        test_untrained=norms[test.coin_idx[untrained_mask]],
    )


def snn_config_with_pretrained(config: SNNConfig, dim: int) -> SNNConfig:
    """Config variant whose coin-embedding dim matches pre-trained vectors."""
    from dataclasses import replace

    return replace(config, coin_emb_dim=dim)
