"""Sequence-representation transfer to non-sequential models (§6.2).

The paper notes that SNN's "performance boost can be easily extended to any
other non-sequential methods, e.g., traditional ML models, by incorporating
sequence representations extracted by a trained SNN."  This module
implements exactly that: a trained SNN acts as a frozen feature extractor
whose ``h_s`` vectors are appended to the hand-crafted features of LR/RF.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import ClassicRanker
from repro.core.snn import SNN
from repro.core.train import make_batch
from repro.features.assembler import AssembledSplit
from repro.nn import no_grad


class SequenceFeatureExtractor:
    """Extract ``h_s`` (the positional-attention sequence encoding) rows."""

    def __init__(self, snn: SNN, batch_size: int = 1024):
        self.snn = snn
        self.batch_size = batch_size

    def transform(self, split: AssembledSplit) -> np.ndarray:
        """Sequence representation for every row, ``(B, output_dim)``."""
        self.snn.eval()
        chunks = []
        with no_grad():
            for start in range(0, len(split), self.batch_size):
                rows = np.arange(start, min(start + self.batch_size, len(split)))
                batch = make_batch(split, rows)
                chunks.append(self.snn.encode_sequence(batch).numpy())
        return np.vstack(chunks)


class AugmentedClassicRanker:
    """LR / RF over hand-crafted features ⊕ frozen SNN sequence features."""

    def __init__(self, kind: str, snn: SNN, seed: int = 0):
        self.extractor = SequenceFeatureExtractor(snn)
        self.base = ClassicRanker(kind, seed=seed)

    def _augment(self, split: AssembledSplit) -> AssembledSplit:
        """Return a shallow copy whose numerics carry the h_s columns."""
        from dataclasses import replace

        extra = self.extractor.transform(split)
        return replace(split, numeric=np.column_stack([split.numeric, extra]))

    def fit(self, train: AssembledSplit) -> "AugmentedClassicRanker":
        self.base.fit(self._augment(train))
        return self

    def predict_proba(self, split: AssembledSplit) -> np.ndarray:
        return self.base.predict_proba(self._augment(split))


def run_transfer_experiment(assembled, snn: SNN, seed: int = 0) -> dict:
    """HR@k of plain vs SNN-augmented LR and RF (the §6.2 claim)."""
    from repro.core.evaluate import HR_KS, evaluate_scores

    results: dict[str, dict[int, float]] = {}
    for kind in ("lr", "rf"):
        plain = ClassicRanker(kind, seed=seed).fit(assembled.train)
        results[kind] = evaluate_scores(
            assembled.test, plain.predict_proba(assembled.test), HR_KS
        )
        augmented = AugmentedClassicRanker(kind, snn, seed=seed).fit(assembled.train)
        results[f"{kind}+h_s"] = evaluate_scores(
            assembled.test, augmented.predict_proba(assembled.test), HR_KS
        )
    return results
