"""Score-level ensembling of heterogeneous rankers.

A light extension the paper's §6.2 discussion invites: SNN's sequence-aware
scores and RF's tabular scores make different mistakes, so a rank-averaged
blend is often stronger than either.  Scores are combined on (normalized)
ranks rather than raw probabilities to sidestep calibration differences.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.features.assembler import AssembledSplit


def rank_normalize(scores: np.ndarray) -> np.ndarray:
    """Map scores to (0, 1] by normalized ascending rank (ties averaged)."""
    scores = np.asarray(scores, dtype=float)
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores))
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ties so identical scores get identical ranks.
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i: j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks / len(scores)


class ScoreEnsemble:
    """Weighted rank-average of several models' scores.

    Rank normalization happens *within each ranking list* so events with
    different candidate counts contribute comparably.
    """

    def __init__(self, weights: Sequence[float] | None = None):
        self.weights = None if weights is None else np.asarray(weights, float)

    def combine(self, split: AssembledSplit,
                score_sets: Sequence[np.ndarray]) -> np.ndarray:
        """Blend score vectors (one per model) into ensemble scores."""
        if not score_sets:
            raise ValueError("at least one score vector is required")
        n = len(split)
        for scores in score_sets:
            if len(scores) != n:
                raise ValueError("score vectors must align with the split")
        weights = (
            np.ones(len(score_sets)) if self.weights is None else self.weights
        )
        if len(weights) != len(score_sets):
            raise ValueError("one weight per score vector is required")
        blended = np.zeros(n)
        for list_id in np.unique(split.list_id):
            mask = split.list_id == list_id
            acc = np.zeros(mask.sum())
            for weight, scores in zip(weights, score_sets):
                acc += weight * rank_normalize(np.asarray(scores)[mask])
            blended[mask] = acc / weights.sum()
        return blended
