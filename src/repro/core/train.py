"""Training loop for the deep rankers.

Mini-batch Adam on the eq. 8 objective with positive-class reweighting
(positives are ~1% of rows), validation-based best-epoch selection, and
fully seeded shuffling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.snn import Batch
from repro.features.assembler import AssembledSplit
from repro.nn import Adam, Module, bce_with_logits, no_grad, stable_sigmoid
from repro.nn.compile import run_compiled
from repro.nn.optim import clip_grad_norm


def make_batch(split: AssembledSplit, rows) -> Batch:
    """Slice an assembled split into a model batch.

    ``rows`` may be an index array (shuffled training batches) or a plain
    ``slice`` (sequential scoring, where views beat fancy-index copies).
    """
    return Batch(
        channel_idx=split.channel_idx[rows],
        coin_idx=split.coin_idx[rows],
        numeric=split.numeric[rows],
        seq_coin_idx=split.seq_coin_idx[rows],
        seq_numeric=split.seq_numeric[rows],
        seq_mask=split.seq_mask[rows],
        label=split.label[rows],
    )


def predict_scores(model: Module, split: AssembledSplit,
                   batch_size: int = 1024,
                   use_compiled: bool = True) -> np.ndarray:
    """Pump probabilities for every row of a split (eval mode, no grad).

    Scoring runs through the compiled no-grad plan
    (:mod:`repro.nn.compile`) when the architecture supports it, falling
    back to the eager forward otherwise; both paths produce identical
    scores.
    """
    model.eval()
    scores = np.empty(len(split))
    for start in range(0, len(split), batch_size):
        rows = slice(start, min(start + batch_size, len(split)))
        batch = make_batch(split, rows)
        logits = run_compiled(model, batch) if use_compiled else None
        if logits is None:
            with no_grad():
                logits = model(batch).numpy()
        scores[rows] = stable_sigmoid(logits)
    return scores


@dataclass
class TrainResult:
    """Loss curve and the validation metric of the selected epoch."""

    train_losses: list[float] = field(default_factory=list)
    val_metrics: list[float] = field(default_factory=list)
    best_epoch: int = -1
    train_seconds: float = 0.0


class Trainer:
    """Fit a deep ranker on the train split.

    ``pos_weight`` rescales positives inside the BCE; model selection uses
    HR@10 on the validation split (falling back to minus-loss when the
    validation split is empty).
    """

    def __init__(self, lr: float = 3e-3, epochs: int = 14, batch_size: int = 256,
                 pos_weight: float = 25.0, seed: int = 0,
                 grad_clip: float = 0.0):
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.pos_weight = pos_weight
        self.seed = seed
        self.grad_clip = grad_clip

    def fit(self, model: Module, train: AssembledSplit,
            validation: AssembledSplit | None = None) -> TrainResult:
        import time

        # Imported here (not at module top) to break the train<->evaluate
        # import cycle; hoisted out of the epoch/batch loops all the same.
        from repro.core.evaluate import evaluate_model

        from repro.telemetry import default_registry

        started = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        params = model.parameters()
        optimizer = Adam(params, lr=self.lr)
        result = TrainResult()
        best_state = None
        best_metric = -np.inf
        # Telemetry: last-epoch gauges + an epochs counter in the process
        # registry.  Pure observation — nothing here feeds back into the
        # (seeded, bit-reproducible) optimization path.
        telemetry = default_registry()
        model_label = type(model).__name__
        epoch_loss = telemetry.gauge(
            "train_epoch_loss", "Mean training loss of the last epoch.",
            ("model",),
        ).labels(model=model_label)
        epoch_seconds = telemetry.gauge(
            "train_epoch_seconds", "Wall time of the last training epoch.",
            ("model",),
        ).labels(model=model_label)
        epochs_total = telemetry.counter(
            "train_epochs_total", "Training epochs completed.", ("model",),
        ).labels(model=model_label)
        # Reused index buffers: `order` is shuffled in place each epoch
        # (identical draws to `rng.permutation`), batches slice views of it.
        base = np.arange(len(train))
        order = np.empty_like(base)
        for epoch in range(self.epochs):
            epoch_started = time.perf_counter()
            model.train()
            order[:] = base
            rng.shuffle(order)
            losses = []
            for start in range(0, len(order), self.batch_size):
                rows = order[start: start + self.batch_size]
                batch = make_batch(train, rows)
                optimizer.zero_grad()
                logits = model(batch)
                loss = bce_with_logits(logits, batch.label,
                                       pos_weight=self.pos_weight)
                loss.backward()
                if self.grad_clip > 0:
                    clip_grad_norm(params, self.grad_clip)
                optimizer.step()
                losses.append(loss.item())
            result.train_losses.append(float(np.mean(losses)))
            epoch_loss.set(result.train_losses[-1])
            epoch_seconds.set(time.perf_counter() - epoch_started)
            epochs_total.inc()
            if validation is not None and len(validation):
                # Average several HR@k depths: single-k selection on a small
                # validation split is too noisy to pick a good epoch.
                hr = evaluate_model(model, validation, ks=(3, 10, 30))
                metric = float(np.mean(list(hr.values())))
            else:
                metric = -result.train_losses[-1]
            result.val_metrics.append(float(metric))
            if metric > best_metric:
                best_metric = metric
                best_state = model.state_dict()
                result.best_epoch = epoch
        if best_state is not None:
            model.load_state_dict(best_state)
        model.eval()
        result.train_seconds = time.perf_counter() - started
        return result
