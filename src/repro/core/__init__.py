"""repro.core — the paper's contribution: SNN and the target-coin task."""

from repro.core.snn import SNN, Batch, SNNConfig
from repro.core.baselines import (
    ALL_MODEL_NAMES,
    CLASSIC_MODEL_NAMES,
    DEEP_MODEL_NAMES,
    ClassicRanker,
    DNNRanker,
    RNNRanker,
    TCNRanker,
    make_model,
)
from repro.core.train import Trainer, TrainResult, make_batch, predict_scores
from repro.core.evaluate import (
    HR_KS,
    evaluate_model,
    evaluate_scores,
    format_hr_table,
    random_ranker_baseline,
    ranking_metric,
)
from repro.core.coldstart import (
    CoinIdOnlyModel,
    EmbeddingNormStudy,
    embedding_l1_norms,
    train_coin_embeddings,
)
from repro.core.experiment import (
    EMBEDDING_VARIANTS,
    ExperimentOutcome,
    run_coin_embedding_experiment,
    run_target_coin_experiment,
    snn_config_for,
    train_predictor,
)
from repro.core.predictor import (
    CoinScore,
    Ranking,
    RankRequest,
    TargetCoinPredictor,
)
from repro.core.ensemble import ScoreEnsemble, rank_normalize
from repro.core.tuning import SearchResult, TrialResult, grid_search, random_search
from repro.core.transfer import (
    AugmentedClassicRanker,
    SequenceFeatureExtractor,
    run_transfer_experiment,
)

__all__ = [
    "SNN", "SNNConfig", "Batch",
    "make_model", "DNNRanker", "RNNRanker", "TCNRanker", "ClassicRanker",
    "ALL_MODEL_NAMES", "DEEP_MODEL_NAMES", "CLASSIC_MODEL_NAMES",
    "Trainer", "TrainResult", "make_batch", "predict_scores",
    "HR_KS", "evaluate_model", "evaluate_scores", "ranking_metric",
    "random_ranker_baseline", "format_hr_table",
    "train_coin_embeddings", "CoinIdOnlyModel", "embedding_l1_norms",
    "EmbeddingNormStudy",
    "run_target_coin_experiment", "run_coin_embedding_experiment",
    "ExperimentOutcome", "EMBEDDING_VARIANTS", "snn_config_for",
    "train_predictor",
    "TargetCoinPredictor", "Ranking", "RankRequest", "CoinScore",
    "SequenceFeatureExtractor", "AugmentedClassicRanker",
    "run_transfer_experiment",
    "ScoreEnsemble", "rank_normalize",
    "grid_search", "random_search", "SearchResult", "TrialResult",
]
