"""The gateway application: endpoint logic over a swappable service.

:class:`GatewayApp` is transport-free — it maps typed requests
(:mod:`repro.gateway.schema`) to typed responses over a
:class:`~repro.serving.service.PredictionService`, a
:class:`~repro.registry.ModelRegistry` and a set of counters.  The HTTP
layer (:mod:`repro.gateway.server`) only routes, decodes and encodes;
tests can drive the app directly without a socket.

Hot-swap contract (``/v1/models/reload``)
-----------------------------------------
The replacement service is built *outside* the scoring lock (artifact
load + compiled-plan verification take milliseconds to seconds; requests
keep scoring on the old model meanwhile).  The swap itself happens under
the scoring lock: the streamed history cache and the live
:class:`ServiceStats` are carried across, and the service pointer is
replaced in one assignment.  A request that already entered the scoring
section finishes on the model it started with — nothing is dropped,
nothing scores half-old-half-new.
"""

from __future__ import annotations

import threading
import time as _time

from repro.gateway.schema import (
    E_BAD_ARTIFACT,
    E_BATCH_TOO_LARGE,
    E_DEADLINE_EXCEEDED,
    E_NO_CANDIDATES,
    E_NO_REGISTRY,
    E_UNKNOWN_CHANNEL,
    E_UNKNOWN_MODEL,
    GatewayFault,
    HealthResponseV1,
    ModelsResponseV1,
    ObserveRequestV1,
    ObserveResponseV1,
    RankBatchRequestV1,
    RankBatchResponseV1,
    RankRequestV1,
    RankResponseV1,
    ReloadRequestV1,
    ReloadResponseV1,
    StatsResponseV1,
    TraceResponseV1,
    bad_request,
)
from repro.gateway.microbatch import MicroBatcher
from repro.resilience import current_deadline
from repro.serving.online import Announcement
from repro.serving.service import Alert, PredictionService
from repro.telemetry import TelemetryHub

#: Default cap on ``/v1/rank/batch`` size (also the CLI default).
DEFAULT_MAX_BATCH = 256


def describe_model(ref: str | None, path=None, manifest: dict | None = None,
                   *, name: str | None = None,
                   version: str | None = None) -> dict:
    """The model descriptor shown by ``/v1/healthz`` and ``/v1/models``."""
    manifest = manifest or {}
    model = manifest.get("model")
    model = model if isinstance(model, dict) else {}
    return {
        "ref": ref,
        "name": name,
        "version": version,
        "path": str(path) if path is not None else None,
        "arch": model.get("name"),
        "n_parameters": model.get("n_parameters"),
    }


class GatewayApp:
    """Versioned JSON API over a hot-swappable prediction service.

    Parameters
    ----------
    service:
        The booted :class:`PredictionService` to serve.
    registry:
        Optional :class:`~repro.registry.ModelRegistry` backing
        ``GET /v1/models`` and ``POST /v1/models/reload``; without one the
        gateway serves its boot model forever and reload answers 409.
    model:
        Descriptor of the currently served artifact (see
        :func:`describe_model`); surfaced by health/models endpoints.
    max_batch:
        ``/v1/rank/batch`` requests larger than this fail with the stable
        code ``batch_too_large`` instead of monopolizing the model.
    service_options:
        Keyword arguments re-applied when reload builds the replacement
        service (``bucket_hours``, ``cache_entries``, ...).
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryHub` collecting the
        gateway's metrics, traces and structured logs.  A private hub is
        created when omitted, so the app is always instrumented.
    """

    def __init__(self, service: PredictionService, *, registry=None,
                 model: dict | None = None, max_batch: int = DEFAULT_MAX_BATCH,
                 service_options: dict | None = None,
                 telemetry: TelemetryHub | None = None,
                 batch_window_ms: float = 0.0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        self._service = service
        # The durable event log the service writes through (NullEventStore
        # when serving from memory); the app reuses it for stats snapshots
        # and threads it into every reload-built replacement service.
        self.store = service.store
        self.registry = registry
        self.max_batch = max_batch
        self._service_options = dict(service_options or {})
        if model is None:
            model = describe_model(None)
            model["arch"] = type(service.predictor.model).__name__
        self.model = dict(model)
        self.reloads = 0
        self._started = _time.monotonic()
        # _swap_lock serializes reloads; _score_lock serializes every
        # touch of the (stateful, non-thread-safe) service internals.
        self._swap_lock = threading.Lock()
        self._score_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.telemetry = telemetry or TelemetryHub()
        reg = self.telemetry.registry
        self._m_requests = reg.counter(
            "gateway_requests_total", "Requests handled by the gateway.",
            labelnames=("endpoint", "status"),
        )
        self._m_request_seconds = reg.histogram(
            "gateway_request_seconds",
            "Wall time spent handling gateway requests.",
            labelnames=("endpoint",),
        )
        self._m_errors = reg.counter(
            "gateway_errors_total",
            "Gateway error responses by stable error code.",
            labelnames=("code",),
        )
        self._m_reloads = reg.counter(
            "gateway_reloads_total", "Hot-reload attempts by outcome.",
            labelnames=("outcome",),
        )
        self._m_model_info = reg.gauge(
            "gateway_model_info",
            "Currently served model (always 1; identity in the labels).",
            labelnames=("name", "version", "arch"),
        )
        self._m_shed = reg.counter(
            "gateway_shed_total",
            "Requests refused before doing work (overload, drain, "
            "expired deadline).",
            labelnames=("reason",),
        )
        reg.gauge_fn(
            "gateway_uptime_seconds",
            "Seconds since the gateway app was constructed.",
            lambda: _time.monotonic() - self._started,
        )
        self._m_microbatch_flushes = reg.counter(
            "gateway_microbatch_flushes_total",
            "Coalesced /v1/rank flushes executed by the micro-batcher.",
        )
        self._m_microbatch_requests = reg.counter(
            "gateway_microbatch_requests_total",
            "Rank requests served through micro-batch flushes.",
        )
        # Cross-connection micro-batching (worker pools): /v1/rank
        # requests on concurrent handler threads coalesce into one
        # forward pass.  Window 0 keeps the direct per-request path.
        self._batcher = None
        if batch_window_ms > 0:
            self._batcher = MicroBatcher(
                self._execute_coalesced, batch_window_ms / 1000.0,
                max_batch,
            )
        # Worker pools install a hook that merges peer workers' metric
        # dumps into this process's /v1/metrics exposition.
        self.metrics_merge = None
        self._set_model_info()

    def _set_model_info(self) -> None:
        """Point the ``gateway_model_info`` gauge at the current model."""
        self._m_model_info.clear()
        self._m_model_info.labels(
            name=str(self.model.get("name") or ""),
            version=str(self.model.get("version") or ""),
            arch=str(self.model.get("arch") or ""),
        ).set(1)

    @property
    def service(self) -> PredictionService:
        """The currently serving service (atomically swapped on reload)."""
        return self._service

    def count(self, key: str) -> None:
        with self._counter_lock:
            self.counters[key] = self.counters.get(key, 0) + 1

    # -- scoring -------------------------------------------------------------

    @staticmethod
    def _check_coin(service: PredictionService,
                    announcement: Announcement) -> None:
        """Refuse coin ids outside the universe before they reach history.

        A ranked or observed announcement with ``coin_id >= 0`` is folded
        into the channel's pump history; an id no catalog row backs would
        crash feature encoding on every later request for that channel —
        permanently, since reload carries history across.  (< 0 is the
        legitimate "unknown released coin" sentinel.)
        """
        universe = len(service.predictor.source.coins.symbols)
        if announcement.coin_id >= universe:
            raise bad_request(
                f"coin_id {announcement.coin_id} is outside the coin "
                f"universe (0..{universe - 1})"
            )

    def _ranked(self, announcements: list[Announcement]) -> list[Alert]:
        """Gate + score a micro-batch under the scoring lock.

        The same gates the streaming engine applies
        (:meth:`StreamEngine.run`), but as stable 4xx codes instead of
        silent skips: the remote caller, unlike the replay loop, needs to
        know *why* an announcement was refused.
        """
        with self._score_lock:
            deadline = current_deadline()
            if deadline is not None and deadline.expired:
                # The budget burned away waiting for the lock: the caller
                # has given up, so scoring now only wastes capacity.
                self.record_shed("deadline")
                raise GatewayFault(
                    E_DEADLINE_EXCEEDED, 503,
                    f"request deadline ({deadline.budget_seconds * 1000:.0f}"
                    " ms) expired before scoring started",
                )
            service = self._service
            for announcement in announcements:
                self._check_coin(service, announcement)
                if not service.knows_channel(announcement.channel_id):
                    raise GatewayFault(
                        E_UNKNOWN_CHANNEL, 422,
                        f"channel {announcement.channel_id} was not part of "
                        "the training universe",
                    )
            for announcement in announcements:
                if not service.has_candidates(announcement):
                    raise GatewayFault(
                        E_NO_CANDIDATES, 422,
                        f"no eligible coins listed on exchange "
                        f"{announcement.exchange_id} at time "
                        f"{announcement.time}",
                    )
            return service.rank_batch(list(announcements))

    def _execute_coalesced(self, entries) -> None:
        """Gate + score one micro-batch flush under the scoring lock.

        Per-entry gating: each announcement passes exactly the checks a
        solo ``_ranked([a])`` would run (deadline, coin universe, known
        channel, candidates) and a failure faults only its own entry.
        The survivors score in one ``rank_batch`` forward pass; scoring
        is history-pure, so every alert is bit-identical to solo.
        """
        with self._score_lock:
            self._m_microbatch_flushes.inc()
            self._m_microbatch_requests.inc(len(entries))
            service = self._service
            ready = []
            for entry in entries:
                try:
                    if entry.deadline is not None and entry.deadline.expired:
                        self.record_shed("deadline")
                        raise GatewayFault(
                            E_DEADLINE_EXCEEDED, 503,
                            f"request deadline "
                            f"({entry.deadline.budget_seconds * 1000:.0f}"
                            " ms) expired before scoring started",
                        )
                    announcement = entry.announcement
                    self._check_coin(service, announcement)
                    if not service.knows_channel(announcement.channel_id):
                        raise GatewayFault(
                            E_UNKNOWN_CHANNEL, 422,
                            f"channel {announcement.channel_id} was not "
                            "part of the training universe",
                        )
                    if not service.has_candidates(announcement):
                        raise GatewayFault(
                            E_NO_CANDIDATES, 422,
                            f"no eligible coins listed on exchange "
                            f"{announcement.exchange_id} at time "
                            f"{announcement.time}",
                        )
                except GatewayFault as fault:
                    entry.fault = fault
                else:
                    ready.append(entry)
            if not ready:
                return
            alerts = service.rank_batch(
                [entry.announcement for entry in ready]
            )
            for entry, alert in zip(ready, alerts):
                entry.alert = alert

    def rank(self, request: RankRequestV1) -> RankResponseV1:
        self.count("rank")
        if self._batcher is not None:
            return RankResponseV1(
                self._batcher.submit(request.announcement)
            )
        return RankResponseV1(self._ranked([request.announcement])[0])

    def rank_batch(self, request: RankBatchRequestV1) -> RankBatchResponseV1:
        self.count("rank_batch")
        size = len(request.announcements)
        if size > self.max_batch:
            raise GatewayFault(
                E_BATCH_TOO_LARGE, 413,
                f"batch of {size} announcements exceeds the gateway's "
                f"max_batch={self.max_batch}; split the request",
            )
        if not request.announcements:
            return RankBatchResponseV1(())
        return RankBatchResponseV1(
            tuple(self._ranked(list(request.announcements)))
        )

    def observe(self, request: ObserveRequestV1) -> ObserveResponseV1:
        self.count("observe")
        announcement = request.announcement
        with self._score_lock:
            service = self._service
            self._check_coin(service, announcement)
            grew = service.observe(announcement, event_id=request.event_id)
            length = len(service.history(announcement.channel_id))
        # Coin id is validated >= 0 at decode, so "didn't grow" with an
        # event id attached can only mean the id was folded before.
        duplicate = request.event_id is not None and not grew
        return ObserveResponseV1(channel_id=announcement.channel_id,
                                 history_length=length,
                                 duplicate=duplicate)

    # -- model lifecycle -----------------------------------------------------

    def reload(self, request: ReloadRequestV1) -> ReloadResponseV1:
        self.count("reload")
        if self.registry is None:
            raise GatewayFault(
                E_NO_REGISTRY, 409,
                "this gateway was started without a model registry; "
                "restart it with --registry to enable hot reload",
            )
        from repro.registry import (
            ArtifactError,
            RegistryError,
            parse_ref,
            read_manifest,
        )

        name, version = parse_ref(request.ref)
        with self._swap_lock:
            try:
                path = self.registry.resolve(name, version)
            except RegistryError as exc:
                self._m_reloads.labels(outcome="unknown_model").inc()
                raise GatewayFault(E_UNKNOWN_MODEL, 404, str(exc)) from None
            old_service = self._service
            predictor = old_service.predictor
            options = dict(self._service_options)
            options.setdefault("store", old_service.store)
            try:
                manifest = read_manifest(path)
                replacement = PredictionService.from_artifact(
                    path, predictor.source, predictor.dataset,
                    stats=old_service.stats, **options,
                )
            except ArtifactError as exc:
                self._m_reloads.labels(outcome="bad_artifact").inc()
                raise GatewayFault(
                    E_BAD_ARTIFACT, 409,
                    f"artifact {request.ref!r} failed to load: {exc}",
                ) from None
            descriptor = describe_model(request.ref, path, manifest,
                                        name=name, version=path.name)
            with self._score_lock:
                # Carry the streamed history across so the new model sees
                # exactly the pump sequences the old one accumulated, and
                # the dedup window so a retry straddling the swap still
                # deduplicates.
                replacement.restore_history(old_service.history_snapshot())
                replacement.restore_seen(old_service.seen_snapshot())
                previous, self.model = self.model, descriptor
                self._service = replacement
            self.reloads += 1
            self._m_reloads.labels(outcome="ok").inc()
            self._set_model_info()
        return ReloadResponseV1(model=descriptor, previous=previous)

    def models(self) -> ModelsResponseV1:
        self.count("models")
        if self.registry is None:
            return ModelsResponseV1(registry=None, current=dict(self.model))
        from repro.registry import registry_payload

        payload = registry_payload(self.registry)
        return ModelsResponseV1(registry=payload["root"],
                                current=dict(self.model),
                                models=payload["models"])

    # -- introspection -------------------------------------------------------

    def healthz(self) -> HealthResponseV1:
        return HealthResponseV1(
            status="ok",
            model=dict(self.model),
            uptime_seconds=_time.monotonic() - self._started,
            reloads=self.reloads,
        )

    def stats(self) -> StatsResponseV1:
        with self._counter_lock:
            counters = dict(self.counters)
        gateway = {
            "max_batch": self.max_batch,
            "reloads": self.reloads,
            "uptime_seconds": round(_time.monotonic() - self._started, 3),
            "requests": counters,
        }
        return StatsResponseV1(service=self._service.stats.summary(),
                               gateway=gateway)

    # -- observability -------------------------------------------------------

    def record_request(self, endpoint: str, status: int,
                       seconds: float) -> None:
        """Count one handled HTTP request (called by the transport layer)."""
        self._m_requests.labels(endpoint=endpoint, status=str(status)).inc()
        self._m_request_seconds.labels(endpoint=endpoint).observe(seconds)

    def record_error(self, code: str) -> None:
        """Count one error response by its stable wire code."""
        self._m_errors.labels(code=code).inc()

    def record_shed(self, reason: str) -> None:
        """Count one request refused before doing work.

        ``reason`` is one of ``overloaded`` (admission bound),
        ``draining`` (graceful shutdown in progress) or ``deadline``
        (request budget spent before scoring).
        """
        self._m_shed.labels(reason=reason).inc()

    def snapshot_stats(self) -> None:
        """Persist the current service-stats summary to the event store.

        Called periodically and at graceful shutdown; rehydration
        restores counters from the latest snapshot (exact row-backed
        counters are then overridden from the log itself).
        """
        self.store.append_stats(self._service.stats.summary())

    def metrics_text(self) -> str:
        """Prometheus text exposition of every registry this app can see.

        Under a worker pool, the installed ``metrics_merge`` hook folds
        the sibling workers' latest dumps into this worker's exposition
        so any worker answers a pool-level scrape.
        """
        text = self.telemetry.render_metrics(self._service.stats.registry)
        if self.metrics_merge is not None:
            text = self.metrics_merge(text)
        return text

    def trace_recent(self, limit: int | None = None) -> TraceResponseV1:
        return TraceResponseV1(traces=self.telemetry.traces.recent(limit))
