"""Multi-process gateway scale-out: pre-fork worker pool + supervisor.

``repro gateway --workers N`` serves through N shared-nothing worker
processes instead of one ThreadingHTTPServer:

* :func:`bind_pool_sockets` binds the listening address **before** the
  fork — one ``SO_REUSEPORT`` socket per worker where the platform
  supports it (the kernel then load-balances accepts across workers'
  separate accept queues), falling back to a single parent-bound socket
  every forked child accepts on;
* :func:`run_pool` is the supervisor: it forks the workers, reaps and
  respawns crashes (with a fast-crash give-up so a boot-time bug cannot
  fork-bomb), fans ``SIGTERM``/``SIGINT`` out to the children and waits
  — with a hard deadline — for every worker to drain in-flight requests,
  flush its final store snapshot and exit;
* :func:`worker_serve` is one worker's whole life: build the app (the
  caller's ``build`` callback runs *post-fork*, so each worker owns its
  SQLite connection and store cursor), adopt the inherited socket, serve,
  drain on SIGTERM, snapshot and flush.

Workers are shared-nothing except for two files: the ``--store`` event
log (WAL SQLite — every worker appends its own observations and folds
the others' through the store-following cursor, so histories and
therefore rankings stay bit-identical to a single process) and a metrics
spool directory each worker dumps its rendered exposition into, letting
any worker answer a **pool-level** ``/v1/metrics`` scrape by merging the
peers' latest dumps (:func:`repro.telemetry.merge_expositions`).
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.gateway.server import GatewayHTTPServer, make_server
from repro.telemetry import merge_expositions

#: Consecutive fast crashes (exit < ``_FAST_CRASH_S`` after spawn) before
#: the supervisor stops respawning a worker slot.
MAX_FAST_CRASHES = 5
_FAST_CRASH_S = 1.0

#: Seconds between a worker's periodic metric-exposition dumps.
METRICS_PUBLISH_S = 2.0

#: Supervisor reap-poll cadence; also bounds SIGTERM reaction latency.
_REAP_POLL_S = 0.1

#: Grace beyond ``drain_s`` before straggling workers get SIGKILL.
_KILL_GRACE_S = 5.0


def bind_pool_sockets(host: str, port: int,
                      workers: int) -> tuple[list[socket.socket], int]:
    """Bind the pool's listening sockets before forking.

    Returns ``(sockets, bound_port)``.  With ``SO_REUSEPORT`` (Linux,
    BSDs) each worker gets its **own** bound socket — separate kernel
    accept queues the kernel hashes connections across.  Without it, one
    socket is returned and every worker accepts on the shared file
    description.  ``port=0`` picks a free port on the first bind; the
    siblings then bind the concrete port it landed on.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    reuseport = getattr(socket, "SO_REUSEPORT", None)
    sockets: list[socket.socket] = []
    try:
        for _index in range(workers if reuseport is not None else 1):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                if reuseport is not None:
                    sock.setsockopt(socket.SOL_SOCKET, reuseport, 1)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind((host, port))
                sock.listen(128)
            except OSError:
                sock.close()
                if reuseport is not None and sockets:
                    # Platform advertises SO_REUSEPORT but refused the
                    # sibling bind: fall back to sharing the first socket.
                    break
                raise
            sockets.append(sock)
            if port == 0:
                port = sock.getsockname()[1]
        if len(sockets) < workers:
            # Shared-socket fallback: N workers race accept() on one file
            # description.  A loser of the race would block in accept()
            # deaf to shutdown; a timeout turns that into a retried poll
            # (accepted connections are returned in blocking mode).
            sockets[0].settimeout(1.0)
        return sockets, port
    except OSError:
        for sock in sockets:
            sock.close()
        raise


class PoolMetrics:
    """One worker's corner of the pool's shared metrics spool.

    ``publish`` atomically replaces this worker's dump file;
    ``merge`` folds every sibling's latest dump into this worker's own
    fresh exposition so any single worker answers a pool-wide scrape.
    """

    def __init__(self, directory: str | Path, worker_id: int):
        self.directory = Path(directory)
        self.worker_id = worker_id
        self._own = self.directory / f"worker-{worker_id}.prom"

    def publish(self, text: str) -> None:
        tmp = self._own.with_suffix(".tmp")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, self._own)
        except OSError:  # spool dir vanished: scraping degrades, serving
            pass         # must not

    def merge(self, own_text: str) -> str:
        self.publish(own_text)
        documents = [own_text]
        for path in sorted(self.directory.glob("worker-*.prom")):
            if path == self._own:
                continue
            try:
                documents.append(path.read_text(encoding="utf-8"))
            except OSError:  # sibling mid-replace or gone: skip its dump
                continue
        return merge_expositions(documents)


def worker_serve(worker_id: int, listen_socket: socket.socket,
                 build: Callable[[int], tuple], *,
                 verbose: bool = False, max_inflight: int | None = None,
                 deadline_ms: float | None = None,
                 snapshot_s: float = 30.0, drain_s: float = 10.0,
                 metrics_dir: str | Path | None = None) -> int:
    """One worker process, boot to drained exit.

    ``build(worker_id)`` runs here — after the fork — and returns
    ``(app, store)``; the store may be ``None``.  Returns the process
    exit code: 0 after a clean drain, 1 when in-flight requests were
    still running at the drain deadline.
    """
    app, store = build(worker_id)
    app.telemetry.registry.gauge(
        "gateway_worker_info",
        "Pool worker identity (always 1; worker id in the label).",
        ("worker",),
    ).labels(worker=str(worker_id)).set(1)

    exchange = None
    if metrics_dir is not None:
        exchange = PoolMetrics(metrics_dir, worker_id)
        app.metrics_merge = exchange.merge

    server: GatewayHTTPServer = make_server(
        app, verbose=verbose, max_inflight=max_inflight,
        deadline_ms=deadline_ms, listen_socket=listen_socket,
    )

    def _render_own() -> str:
        return app.telemetry.render_metrics(app.service.stats.registry)

    def _on_term(signum, frame):
        print(f"gateway[w{worker_id}]: SIGTERM received, draining",
              flush=True)
        server.begin_drain()
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _on_term)
    signal.signal(signal.SIGINT, _on_term)

    stop = threading.Event()

    def _background_loop():
        while not stop.wait(min(snapshot_s, METRICS_PUBLISH_S)
                            if store is not None else METRICS_PUBLISH_S):
            if store is not None:
                app.snapshot_stats()
            if exchange is not None:
                exchange.publish(_render_own())

    threading.Thread(target=_background_loop,
                     name=f"repro-worker-{worker_id}-background",
                     daemon=True).start()

    print(f"gateway[w{worker_id}]: serving (pid {os.getpid()})",
          flush=True)
    drained = True
    try:
        server.serve_forever()
        drained = server.wait_drained(drain_s)
        if not drained:
            print(f"gateway[w{worker_id}]: drain timed out with requests "
                  "still in flight", file=sys.stderr, flush=True)
    except KeyboardInterrupt:
        server.begin_drain()
        drained = server.wait_drained(drain_s)
    finally:
        stop.set()
        if store is not None:
            app.snapshot_stats()
            store.flush()
            store.close()
        if exchange is not None:
            exchange.publish(_render_own())
        server.server_close()
    print(f"gateway[w{worker_id}]: drained, event log flushed"
          if store is not None else f"gateway[w{worker_id}]: stopped",
          flush=True)
    return 0 if drained else 1


def _exit_code(status: int) -> int:
    if os.WIFEXITED(status):
        return os.WEXITSTATUS(status)
    if os.WIFSIGNALED(status):
        return 128 + os.WTERMSIG(status)
    return 1


def run_pool(sockets: Sequence[socket.socket], workers: int,
             child_main: Callable[[int, socket.socket], int], *,
             drain_s: float = 10.0) -> int:
    """Fork ``workers`` children and supervise them until shutdown.

    ``child_main(worker_id, listen_socket)`` runs in each forked child
    and returns its exit code; the child never returns here
    (``os._exit`` fences off the parent's stack).  The supervisor:

    * respawns a worker that exits unexpectedly (crash, OOM-kill), with
      a consecutive fast-crash limit per slot;
    * on SIGTERM/SIGINT forwards the signal to every worker, waits
      ``drain_s`` plus a grace period, SIGKILLs stragglers, and exits 0
      only when every worker drained cleanly.
    """
    shutting_down = threading.Event()
    children: dict[int, int] = {}   # pid -> worker slot

    def _socket_for(slot: int) -> socket.socket:
        return sockets[slot % len(sockets)]

    def _spawn(slot: int) -> float:
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:
            # Child: fresh default signal disposition (the worker installs
            # its own drain handler); never run the parent's stack.
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            signal.signal(signal.SIGINT, signal.SIG_DFL)
            code = 1
            try:
                code = child_main(slot, _socket_for(slot))
            except SystemExit as exc:
                code = int(exc.code or 0) if not isinstance(exc.code, str) \
                    else 1
            except BaseException:  # noqa: BLE001 - last-resort crash log
                import traceback
                traceback.print_exc()
            finally:
                sys.stdout.flush()
                sys.stderr.flush()
                os._exit(code)
        children[pid] = slot
        return time.monotonic()

    def _forward(signum, frame):
        shutting_down.set()
        for pid in list(children):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    previous_term = signal.signal(signal.SIGTERM, _forward)
    previous_int = signal.signal(signal.SIGINT, _forward)

    spawn_times: dict[int, float] = {}
    fast_crashes: dict[int, int] = {}
    for slot in range(workers):
        spawn_times[slot] = _spawn(slot)
    print(f"gateway pool: supervising {workers} workers "
          f"(pids {sorted(children)})", flush=True)

    exit_code = 0
    kill_deadline: float | None = None
    try:
        while children:
            if shutting_down.is_set() and kill_deadline is None:
                kill_deadline = time.monotonic() + drain_s + _KILL_GRACE_S
            if kill_deadline is not None \
                    and time.monotonic() > kill_deadline:
                for pid in list(children):
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                exit_code = 1
                kill_deadline = float("inf")   # kill once, keep reaping
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                break
            except InterruptedError:
                continue
            if pid == 0:
                time.sleep(_REAP_POLL_S)
                continue
            slot = children.pop(pid, None)
            if slot is None:
                continue
            code = _exit_code(status)
            if shutting_down.is_set():
                if code != 0:
                    exit_code = exit_code or 1
                print(f"gateway pool: worker {slot} (pid {pid}) exited "
                      f"with {code}", flush=True)
                continue
            lifetime = time.monotonic() - spawn_times.get(slot, 0.0)
            if lifetime < _FAST_CRASH_S:
                fast_crashes[slot] = fast_crashes.get(slot, 0) + 1
            else:
                fast_crashes[slot] = 0
            if fast_crashes.get(slot, 0) >= MAX_FAST_CRASHES:
                print(f"gateway pool: worker {slot} crashed "
                      f"{MAX_FAST_CRASHES} times within {_FAST_CRASH_S}s "
                      "of spawn; giving up on this slot",
                      file=sys.stderr, flush=True)
                exit_code = 1
                continue
            print(f"gateway pool: worker {slot} (pid {pid}) exited with "
                  f"{code}; respawning", flush=True)
            spawn_times[slot] = _spawn(slot)
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
        for sock in sockets:
            try:
                sock.close()
            except OSError:
                pass
    print("gateway pool: all workers exited", flush=True)
    return exit_code


__all__ = [
    "MAX_FAST_CRASHES",
    "METRICS_PUBLISH_S",
    "PoolMetrics",
    "bind_pool_sockets",
    "run_pool",
    "worker_serve",
]
