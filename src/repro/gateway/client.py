"""Python client SDK for the gateway (stdlib ``http.client`` only).

:class:`GatewayClient` speaks the versioned wire schema and hands back the
same domain objects the in-process API produces — ``rank`` returns an
:class:`~repro.serving.service.Alert`, decoded through the shared
``from_payload`` codecs, so a remote ranking compares bit-for-bit with an
in-process one.  Server refusals surface as
:class:`GatewayRequestError` carrying the envelope's stable ``code``;
transport problems (connection refused, timeouts, non-JSON replies) as
:class:`GatewayConnectionError`.

>>> client = GatewayClient("http://127.0.0.1:8787")        # doctest: +SKIP
>>> alert = client.rank(Announcement(channel_id=3, coin_id=-1,
...                                  exchange_id=0, pair="BTC",
...                                  time=2410.0))         # doctest: +SKIP
>>> alert.top(3)                                           # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Sequence
from urllib.parse import urlsplit

from repro.gateway.schema import (
    SCHEMA_VERSION,
    GatewayFault,
    HealthResponseV1,
    ModelsResponseV1,
    ObserveRequestV1,
    ObserveResponseV1,
    RankBatchRequestV1,
    RankBatchResponseV1,
    RankRequestV1,
    RankResponseV1,
    ReloadRequestV1,
    ReloadResponseV1,
    StatsResponseV1,
    TraceResponseV1,
)
from repro.serving.online import Announcement
from repro.serving.service import Alert
from repro.telemetry import DURATION_HEADER, TRACE_HEADER, current_trace_id


class GatewayClientError(RuntimeError):
    """Base of everything the client raises."""


class GatewayConnectionError(GatewayClientError):
    """The gateway could not be reached or answered gibberish."""


class GatewayRequestError(GatewayClientError):
    """The gateway refused the request with a structured error envelope."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class GatewayClient:
    """Talk to one ``repro gateway`` over HTTP/JSON.

    A fresh connection is opened per request, so one client instance is
    safe to share across threads (the benchmark's concurrent clients do).
    """

    def __init__(self, base_url: str, timeout: float = 60.0):
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(
                f"unsupported scheme {parts.scheme!r}: the stdlib gateway "
                "speaks plain http"
            )
        if not parts.hostname:
            raise ValueError(f"no host in gateway URL {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        # A path component means the gateway sits behind a prefix-routing
        # reverse proxy; silently dropping it would send every request to
        # the proxy root.
        self.path_prefix = parts.path.rstrip("/")
        self.timeout = timeout
        # Per-thread telemetry of the last completed exchange: one client
        # is shared across threads, so a benchmark worker must never read
        # another worker's duration.
        self._last = threading.local()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}{self.path_prefix}"

    @property
    def last_server_duration_ms(self) -> float | None:
        """Server-side handling time of this thread's last response.

        Parsed from the ``X-Repro-Duration-Ms`` header the gateway sets on
        every response — including error envelopes.  ``None`` before the
        first request or when the server predates the header.
        """
        return getattr(self._last, "duration_ms", None)

    @property
    def last_trace_id(self) -> str | None:
        """Trace id echoed on this thread's last response."""
        return getattr(self._last, "trace_id", None)

    # -- transport -----------------------------------------------------------

    def _transport(self, method: str, path: str, body: bytes | None,
                   headers: dict) -> tuple[int, bytes]:
        trace_id = current_trace_id()
        if trace_id is not None:
            # Propagate the caller's trace so the server's span tree joins
            # the client-side one under a single id.
            headers.setdefault(TRACE_HEADER, trace_id)
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            connection.request(method, self.path_prefix + path, body=body,
                               headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
            duration = response.getheader(DURATION_HEADER)
            self._last.trace_id = response.getheader(TRACE_HEADER)
        except (OSError, http.client.HTTPException) as exc:
            raise GatewayConnectionError(
                f"cannot reach gateway at {self.base_url}: {exc}"
            ) from exc
        finally:
            connection.close()
        try:
            self._last.duration_ms = (None if duration is None
                                      else float(duration))
        except ValueError:
            self._last.duration_ms = None
        return status, raw

    def _raise_envelope(self, status: int, raw: bytes) -> None:
        """Turn a non-2xx body into the typed error, best effort."""
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = None
        error = decoded.get("error") if isinstance(decoded, dict) else None
        if isinstance(error, dict):
            raise GatewayRequestError(
                status, str(error.get("code", "unknown")),
                str(error.get("message", "")),
            )
        raise GatewayConnectionError(
            f"gateway returned status {status} without an error envelope"
        )

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        status, raw = self._transport(method, path, body, headers)
        if status >= 400:
            self._raise_envelope(status, raw)
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise GatewayConnectionError(
                f"gateway at {self.base_url} returned non-JSON "
                f"(status {status}): {raw[:200]!r}"
            ) from exc
        if not isinstance(decoded, dict):
            raise GatewayConnectionError(
                "gateway response body is not a JSON object"
            )
        return decoded

    @staticmethod
    def _decode(decoder, payload: dict):
        try:
            return decoder(payload)
        except GatewayFault as fault:
            raise GatewayConnectionError(
                f"gateway response failed schema decode: {fault.message}"
            ) from None

    # -- API -----------------------------------------------------------------

    def rank(self, announcement: Announcement) -> Alert:
        """Score one announcement; returns the decoded :class:`Alert`."""
        payload = self._request(
            "POST", "/v1/rank", RankRequestV1(announcement).to_payload()
        )
        return self._decode(RankResponseV1.decode, payload).alert

    def rank_batch(self,
                   announcements: Sequence[Announcement]) -> list[Alert]:
        """Score a micro-batch in one server-side forward pass."""
        request = RankBatchRequestV1(tuple(announcements))
        payload = self._request("POST", "/v1/rank/batch",
                                request.to_payload())
        return list(self._decode(RankBatchResponseV1.decode, payload).alerts)

    def observe(self, announcement: Announcement) -> ObserveResponseV1:
        """Feed a resolved release into the server's history cache."""
        payload = self._request(
            "POST", "/v1/observe",
            ObserveRequestV1(announcement).to_payload(),
        )
        return self._decode(ObserveResponseV1.decode, payload)

    def models(self) -> ModelsResponseV1:
        return self._decode(ModelsResponseV1.decode,
                            self._request("GET", "/v1/models"))

    def reload(self, ref: str) -> ReloadResponseV1:
        """Hot-swap the serving model to a registry ``name[@version]``."""
        payload = self._request("POST", "/v1/models/reload",
                                ReloadRequestV1(ref).to_payload())
        return self._decode(ReloadResponseV1.decode, payload)

    def healthz(self) -> HealthResponseV1:
        return self._decode(HealthResponseV1.decode,
                            self._request("GET", "/v1/healthz"))

    def stats(self) -> StatsResponseV1:
        return self._decode(StatsResponseV1.decode,
                            self._request("GET", "/v1/stats"))

    def metrics_text(self) -> str:
        """Raw Prometheus text exposition from ``GET /v1/metrics``."""
        status, raw = self._transport("GET", "/v1/metrics", None,
                                      {"Accept": "text/plain"})
        if status >= 400:
            self._raise_envelope(status, raw)
        return raw.decode("utf-8")

    def recent_traces(self, limit: int | None = None) -> list[dict]:
        """Most-recent-first span trees from ``GET /v1/trace/recent``."""
        path = "/v1/trace/recent"
        if limit is not None:
            path += f"?limit={int(limit)}"
        payload = self._request("GET", path)
        return list(self._decode(TraceResponseV1.decode, payload).traces)


__all__ = [
    "SCHEMA_VERSION",
    "GatewayClient",
    "GatewayClientError",
    "GatewayConnectionError",
    "GatewayRequestError",
]
