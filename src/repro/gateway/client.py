"""Python client SDK for the gateway (stdlib ``http.client`` only).

:class:`GatewayClient` speaks the versioned wire schema and hands back the
same domain objects the in-process API produces — ``rank`` returns an
:class:`~repro.serving.service.Alert`, decoded through the shared
``from_payload`` codecs, so a remote ranking compares bit-for-bit with an
in-process one.  Server refusals surface as
:class:`GatewayRequestError` carrying the envelope's stable ``code``;
transport problems (connection refused, non-JSON replies) as
:class:`GatewayConnectionError`; a request that outran the socket
timeout as :class:`GatewayTimeoutError` (a connection-error subclass, so
existing handlers keep working).

Resilience (ISSUE 7)
--------------------
Transient failures retry under a :class:`~repro.resilience.RetryPolicy`
(exponential backoff with jitter): connection errors, timeouts, and the
retryable statuses 429/500/502/503/504.  Retried endpoints are the
idempotent ones — ``rank``/``rank_batch`` (scoring is history-pure and
the server folds each announcement's deterministic event id at most
once), ``observe`` (the client mints one ``event_id`` per logical call
*before* the retry loop, so a retransmission deduplicates server-side),
and the read-only GETs.  ``reload`` is never retried.  An optional
:class:`~repro.resilience.CircuitBreaker` trips on connection errors and
5xx envelopes; refused calls raise :class:`GatewayCircuitOpenError`
without touching the socket.  Every retry counts
``client_retries_total{endpoint}`` in the process default registry.

>>> client = GatewayClient("http://127.0.0.1:8787")        # doctest: +SKIP
>>> alert = client.rank(Announcement(channel_id=3, coin_id=-1,
...                                  exchange_id=0, pair="BTC",
...                                  time=2410.0))         # doctest: +SKIP
>>> alert.top(3)                                           # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time as _time
import uuid
from typing import Sequence
from urllib.parse import urlsplit

from repro.gateway.schema import (
    DEADLINE_HEADER,
    SCHEMA_VERSION,
    GatewayFault,
    HealthResponseV1,
    ModelsResponseV1,
    ObserveRequestV1,
    ObserveResponseV1,
    RankBatchRequestV1,
    RankBatchResponseV1,
    RankRequestV1,
    RankResponseV1,
    ReloadRequestV1,
    ReloadResponseV1,
    StatsResponseV1,
    TraceResponseV1,
)
from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
)
from repro.serving.online import Announcement
from repro.serving.service import Alert
from repro.telemetry import DURATION_HEADER, TRACE_HEADER, current_trace_id
from repro.telemetry.metrics import default_registry

#: Default connect/read timeout.  Finite and small on purpose: a wedged
#: gateway must cost a caller seconds, not minutes (the old default of
#: 60s was effectively "hang").
DEFAULT_TIMEOUT = 10.0

#: Envelope statuses worth retrying: shed (429), transient server-side
#: failures and proxy errors.  Everything else 4xx is a caller bug that
#: will fail identically on every attempt.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


class _NoDelayConnection(http.client.HTTPConnection):
    """Keep-alive connection with Nagle's algorithm disabled.

    ``http.client`` writes the request head and body as separate
    segments; on a reused connection Nagle holds the second segment
    until the peer ACKs the first, and with delayed ACKs that stall is
    ~40 ms per request — dwarfing the scoring work.  TCP_NODELAY turns
    a keep-alive round trip back into wire latency.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class GatewayClientError(RuntimeError):
    """Base of everything the client raises."""


class GatewayConnectionError(GatewayClientError):
    """The gateway could not be reached or answered gibberish."""


class GatewayTimeoutError(GatewayConnectionError):
    """The gateway did not answer within the client's timeout."""


class GatewayCircuitOpenError(GatewayClientError):
    """The client's circuit breaker refused the call locally."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        #: Seconds until the breaker will admit a probe.
        self.retry_after = retry_after


class GatewayRequestError(GatewayClientError):
    """The gateway refused the request with a structured error envelope."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class GatewayClient:
    """Talk to one ``repro gateway`` over HTTP/JSON.

    Each thread keeps one persistent keep-alive ``HTTPConnection`` to the
    gateway (connections are thread-local, so one client instance is safe
    to share across threads — the benchmark's concurrent clients do).  A
    request that finds its reused socket stale (the server restarted or
    an idle timeout closed it) reconnects and resends transparently,
    exactly once, without consuming the retry budget; failures on a
    *fresh* connection always surface to the retry policy so breaker and
    ``client_retries_total`` semantics are unchanged.  Connections opened
    count ``client_connections_opened_total``.

    Parameters
    ----------
    timeout:
        Connect/read timeout in seconds (:data:`DEFAULT_TIMEOUT`).
    retry:
        Backoff policy for transient failures on idempotent endpoints.
        Pass :data:`~repro.resilience.NO_RETRY` to disable.
    breaker:
        Optional shared :class:`~repro.resilience.CircuitBreaker`; when
        open, calls raise :class:`GatewayCircuitOpenError` locally.
    deadline_ms:
        When set, every request carries an ``X-Repro-Deadline-Ms``
        header so the server can refuse work the client has already
        given up on.
    """

    def __init__(self, base_url: str, timeout: float = DEFAULT_TIMEOUT, *,
                 retry: RetryPolicy = DEFAULT_RETRY_POLICY,
                 breaker: CircuitBreaker | None = None,
                 deadline_ms: float | None = None):
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(
                f"unsupported scheme {parts.scheme!r}: the stdlib gateway "
                "speaks plain http"
            )
        if not parts.hostname:
            raise ValueError(f"no host in gateway URL {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        # A path component means the gateway sits behind a prefix-routing
        # reverse proxy; silently dropping it would send every request to
        # the proxy root.
        self.path_prefix = parts.path.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self.deadline_ms = deadline_ms
        self._m_retries = default_registry().counter(
            "client_retries_total",
            "Gateway client retries after a transient failure.",
            ("endpoint",),
        )
        self._m_conns = default_registry().counter(
            "client_connections_opened_total",
            "TCP connections the gateway client has opened.",
        )
        # Per-thread telemetry of the last completed exchange: one client
        # is shared across threads, so a benchmark worker must never read
        # another worker's duration.
        self._last = threading.local()
        # Per-thread keep-alive connection (HTTPConnection is not
        # thread-safe) plus a cross-thread index so close() reaches all.
        self._conn_state = threading.local()
        self._open_conns: set[http.client.HTTPConnection] = set()
        self._conn_lock = threading.Lock()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}{self.path_prefix}"

    @property
    def last_server_duration_ms(self) -> float | None:
        """Server-side handling time of this thread's last response.

        Parsed from the ``X-Repro-Duration-Ms`` header the gateway sets on
        every response — including error envelopes.  ``None`` before the
        first request or when the server predates the header.
        """
        return getattr(self._last, "duration_ms", None)

    @property
    def last_trace_id(self) -> str | None:
        """Trace id echoed on this thread's last response."""
        return getattr(self._last, "trace_id", None)

    # -- transport -----------------------------------------------------------

    #: Failure shapes of a reused socket the peer already closed: the
    #: request never reached the application, so resending it on a fresh
    #: connection is safe and invisible to the retry/breaker layer.
    _STALE_SOCKET_ERRORS = (
        http.client.RemoteDisconnected,
        http.client.BadStatusLine,
        http.client.CannotSendRequest,
        ConnectionResetError,
        ConnectionAbortedError,
        BrokenPipeError,
    )

    def _checkout_connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's keep-alive connection, opening one if needed.

        Returns ``(connection, reused)`` — ``reused`` is True only when
        the socket has already served at least one full exchange, which
        is the precondition for a transparent resend.
        """
        connection = getattr(self._conn_state, "conn", None)
        if connection is not None:
            return connection, getattr(self._conn_state, "served", 0) > 0
        connection = _NoDelayConnection(self.host, self.port,
                                        timeout=self.timeout)
        self._conn_state.conn = connection
        self._conn_state.served = 0
        self._m_conns.inc()
        with self._conn_lock:
            self._open_conns.add(connection)
        return connection, False

    def _discard_connection(
            self, connection: http.client.HTTPConnection) -> None:
        """Close and forget a connection we no longer trust."""
        if getattr(self._conn_state, "conn", None) is connection:
            self._conn_state.conn = None
            self._conn_state.served = 0
        with self._conn_lock:
            self._open_conns.discard(connection)
        try:
            connection.close()
        except OSError:
            pass

    def close(self) -> None:
        """Close every pooled connection (all threads).  Idempotent; the
        client remains usable — the next request simply reconnects."""
        with self._conn_lock:
            connections, self._open_conns = self._open_conns, set()
        for connection in connections:
            try:
                connection.close()
            except OSError:
                pass
        if getattr(self._conn_state, "conn", None) in connections:
            self._conn_state.conn = None
            self._conn_state.served = 0

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _transport(self, method: str, path: str, body: bytes | None,
                   headers: dict) -> tuple[int, bytes]:
        trace_id = current_trace_id()
        if trace_id is not None:
            # Propagate the caller's trace so the server's span tree joins
            # the client-side one under a single id.
            headers.setdefault(TRACE_HEADER, trace_id)
        connection, reused = self._checkout_connection()
        try:
            return self._exchange(connection, method, path, body, headers)
        except self._STALE_SOCKET_ERRORS as exc:
            self._discard_connection(connection)
            if not reused:
                raise GatewayConnectionError(
                    f"cannot reach gateway at {self.base_url}: {exc}"
                ) from exc
            # The keep-alive socket went stale between requests (server
            # restart, idle close).  One transparent resend on a fresh
            # connection; a second failure is a real outage and surfaces.
            connection, _ = self._checkout_connection()
            try:
                return self._exchange(connection, method, path, body,
                                      headers)
            except TimeoutError as exc:
                self._discard_connection(connection)
                raise GatewayTimeoutError(
                    f"gateway at {self.base_url} did not answer within "
                    f"{self.timeout}s"
                ) from exc
            except (OSError, http.client.HTTPException) as exc:
                self._discard_connection(connection)
                raise GatewayConnectionError(
                    f"cannot reach gateway at {self.base_url}: {exc}"
                ) from exc
        except TimeoutError as exc:
            # socket.timeout is TimeoutError (an OSError subclass) — the
            # order of these clauses is what gives it a distinct type.
            # Never resent, even on a reused socket: the server may still
            # be processing the first copy.
            self._discard_connection(connection)
            raise GatewayTimeoutError(
                f"gateway at {self.base_url} did not answer within "
                f"{self.timeout}s"
            ) from exc
        except (OSError, http.client.HTTPException) as exc:
            self._discard_connection(connection)
            raise GatewayConnectionError(
                f"cannot reach gateway at {self.base_url}: {exc}"
            ) from exc

    def _exchange(self, connection: http.client.HTTPConnection, method: str,
                  path: str, body: bytes | None,
                  headers: dict) -> tuple[int, bytes]:
        """One request/response on ``connection``; keeps it alive when the
        server allows.  The body is always read in full (even for error
        envelopes) so the next request never desyncs on leftover bytes."""
        connection.request(method, self.path_prefix + path, body=body,
                           headers=headers)
        response = connection.getresponse()
        raw = response.read()
        status = response.status
        duration = response.getheader(DURATION_HEADER)
        self._last.trace_id = response.getheader(TRACE_HEADER)
        if response.will_close:
            self._discard_connection(connection)
        else:
            self._conn_state.served = \
                getattr(self._conn_state, "served", 0) + 1
        try:
            self._last.duration_ms = (None if duration is None
                                      else float(duration))
        except ValueError:
            self._last.duration_ms = None
        return status, raw

    def _raise_envelope(self, status: int, raw: bytes) -> None:
        """Turn a non-2xx body into the typed error, best effort."""
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = None
        error = decoded.get("error") if isinstance(decoded, dict) else None
        if isinstance(error, dict):
            raise GatewayRequestError(
                status, str(error.get("code", "unknown")),
                str(error.get("message", "")),
            )
        raise GatewayConnectionError(
            f"gateway returned status {status} without an error envelope"
        )

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if self.deadline_ms is not None:
            headers[DEADLINE_HEADER] = f"{self.deadline_ms:g}"
        if payload is not None:
            body = json.dumps(payload,
                              separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        status, raw = self._transport(method, path, body, headers)
        if status >= 400:
            self._raise_envelope(status, raw)
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise GatewayConnectionError(
                f"gateway at {self.base_url} returned non-JSON "
                f"(status {status}): {raw[:200]!r}"
            ) from exc
        if not isinstance(decoded, dict):
            raise GatewayConnectionError(
                "gateway response body is not a JSON object"
            )
        return decoded

    @staticmethod
    def _decode(decoder, payload: dict):
        try:
            return decoder(payload)
        except GatewayFault as fault:
            raise GatewayConnectionError(
                f"gateway response failed schema decode: {fault.message}"
            ) from None

    # -- resilience ----------------------------------------------------------

    @staticmethod
    def _is_breaker_failure(exc: GatewayClientError) -> bool:
        """Connection errors/timeouts and 5xx envelopes trip the breaker;
        any other envelope proves the server is alive (429 included —
        shedding is healthy behaviour, not an outage)."""
        if isinstance(exc, GatewayConnectionError):
            return True
        return isinstance(exc, GatewayRequestError) and exc.status >= 500

    @staticmethod
    def _is_retryable(exc: GatewayClientError) -> bool:
        if isinstance(exc, GatewayConnectionError):
            return True
        return isinstance(exc, GatewayRequestError) \
            and exc.status in RETRYABLE_STATUSES

    def _call(self, endpoint: str, fn):
        """Run one logical API call under the breaker + retry policy.

        ``fn`` must be safe to invoke repeatedly — every retried endpoint
        is idempotent by construction (see the module docstring).
        """
        policy = self.retry
        attempt = 1
        while True:
            if self.breaker is not None:
                try:
                    self.breaker.allow()
                except CircuitOpenError as exc:
                    raise GatewayCircuitOpenError(
                        str(exc), exc.retry_after) from None
            try:
                result = fn()
            except GatewayClientError as exc:
                if self.breaker is not None:
                    if self._is_breaker_failure(exc):
                        self.breaker.record_failure()
                    else:
                        self.breaker.record_success()
                if not self._is_retryable(exc) \
                        or attempt >= policy.max_attempts:
                    raise
                self._m_retries.labels(endpoint=endpoint).inc()
                pause = policy.delay(attempt)
                if pause > 0:
                    _time.sleep(pause)
                attempt += 1
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return result

    # -- API -----------------------------------------------------------------

    def rank(self, announcement: Announcement) -> Alert:
        """Score one announcement; returns the decoded :class:`Alert`."""
        request = RankRequestV1(announcement).to_payload()
        payload = self._call(
            "rank", lambda: self._request("POST", "/v1/rank", request)
        )
        return self._decode(RankResponseV1.decode, payload).alert

    def rank_batch(self,
                   announcements: Sequence[Announcement]) -> list[Alert]:
        """Score a micro-batch in one server-side forward pass."""
        request = RankBatchRequestV1(tuple(announcements)).to_payload()
        payload = self._call(
            "rank_batch",
            lambda: self._request("POST", "/v1/rank/batch", request),
        )
        return list(self._decode(RankBatchResponseV1.decode, payload).alerts)

    def observe(self, announcement: Announcement,
                event_id: str | None = None) -> ObserveResponseV1:
        """Feed a resolved release into the server's history cache.

        The ``event_id`` (minted here when not supplied) is fixed
        *before* the retry loop: a retransmission after a lost response
        carries the same id, the server folds it at most once, and the
        duplicate reply reports ``duplicate=True``.
        """
        if event_id is None:
            event_id = f"cli:{uuid.uuid4().hex}"
        request = ObserveRequestV1(announcement,
                                   event_id=event_id).to_payload()
        payload = self._call(
            "observe", lambda: self._request("POST", "/v1/observe", request)
        )
        return self._decode(ObserveResponseV1.decode, payload)

    def models(self) -> ModelsResponseV1:
        payload = self._call(
            "models", lambda: self._request("GET", "/v1/models")
        )
        return self._decode(ModelsResponseV1.decode, payload)

    def reload(self, ref: str) -> ReloadResponseV1:
        """Hot-swap the serving model to a registry ``name[@version]``.

        Never retried: a reload that timed out may still be swapping
        server-side, and blind retransmission could interleave swaps.
        The breaker still observes the outcome.
        """
        request = ReloadRequestV1(ref).to_payload()
        if self.breaker is not None:
            try:
                self.breaker.allow()
            except CircuitOpenError as exc:
                raise GatewayCircuitOpenError(
                    str(exc), exc.retry_after) from None
        try:
            payload = self._request("POST", "/v1/models/reload", request)
        except GatewayClientError as exc:
            if self.breaker is not None:
                if self._is_breaker_failure(exc):
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return self._decode(ReloadResponseV1.decode, payload)

    def healthz(self) -> HealthResponseV1:
        payload = self._call(
            "healthz", lambda: self._request("GET", "/v1/healthz")
        )
        return self._decode(HealthResponseV1.decode, payload)

    def stats(self) -> StatsResponseV1:
        payload = self._call(
            "stats", lambda: self._request("GET", "/v1/stats")
        )
        return self._decode(StatsResponseV1.decode, payload)

    def metrics_text(self) -> str:
        """Raw Prometheus text exposition from ``GET /v1/metrics``."""
        status, raw = self._transport("GET", "/v1/metrics", None,
                                      {"Accept": "text/plain"})
        if status >= 400:
            self._raise_envelope(status, raw)
        return raw.decode("utf-8")

    def recent_traces(self, limit: int | None = None) -> list[dict]:
        """Most-recent-first span trees from ``GET /v1/trace/recent``."""
        path = "/v1/trace/recent"
        if limit is not None:
            path += f"?limit={int(limit)}"
        payload = self._call("traces", lambda: self._request("GET", path))
        return list(self._decode(TraceResponseV1.decode, payload).traces)


__all__ = [
    "DEFAULT_TIMEOUT",
    "RETRYABLE_STATUSES",
    "SCHEMA_VERSION",
    "GatewayClient",
    "GatewayCircuitOpenError",
    "GatewayClientError",
    "GatewayConnectionError",
    "GatewayRequestError",
    "GatewayTimeoutError",
]
