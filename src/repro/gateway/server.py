"""Stdlib HTTP transport for the gateway (``http.server``, no new deps).

:class:`GatewayHTTPServer` is a :class:`ThreadingHTTPServer` whose handler
routes the versioned ``/v1/...`` endpoints to a :class:`GatewayApp`.  The
transport layer owns exactly three jobs — routing, body decoding and
response encoding — and converts every failure into the uniform error
envelope: a :class:`GatewayFault` keeps its stable code and status, any
other exception becomes a 500 ``internal`` envelope (never a traceback on
the wire).

``serve_in_thread`` backs the tests and benchmarks; the blocking
``serve_forever`` path backs ``repro gateway``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.gateway.app import GatewayApp
from repro.gateway.schema import (
    E_INTERNAL,
    E_METHOD_NOT_ALLOWED,
    E_NOT_FOUND,
    E_PAYLOAD_TOO_LARGE,
    GatewayFault,
    ObserveRequestV1,
    RankBatchRequestV1,
    RankRequestV1,
    ReloadRequestV1,
    bad_request,
    decode_json_body,
    error_envelope,
)

#: Raw request bodies beyond this fail with ``payload_too_large`` before
#: any JSON parsing — a gateway facing the open internet must bound reads.
MAX_BODY_BYTES = 8 * 1024 * 1024

_GET_ROUTES = {
    "/v1/healthz": lambda app, _payload: app.healthz(),
    "/v1/stats": lambda app, _payload: app.stats(),
    "/v1/models": lambda app, _payload: app.models(),
}

_POST_ROUTES = {
    "/v1/rank": lambda app, payload: app.rank(RankRequestV1.decode(payload)),
    "/v1/rank/batch": lambda app, payload: app.rank_batch(
        RankBatchRequestV1.decode(payload)),
    "/v1/observe": lambda app, payload: app.observe(
        ObserveRequestV1.decode(payload)),
    "/v1/models/reload": lambda app, payload: app.reload(
        ReloadRequestV1.decode(payload)),
}


class _GatewayHandler(BaseHTTPRequestHandler):
    server_version = "repro-gateway/1"
    protocol_version = "HTTP/1.1"
    # Socket read timeout: a client that stalls mid-headers or sends fewer
    # body bytes than its Content-Length must not pin a handler thread
    # forever — size alone (MAX_BODY_BYTES) does not bound time.
    timeout = 60

    @property
    def app(self) -> GatewayApp:
        return self.server.app  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            raise bad_request("Content-Length header is not a number") \
                from None
        if length < 0:
            # read(-1) would block until client EOF, pinning the handler
            # thread; refuse and drop the (unreadable) connection.
            self.close_connection = True
            raise bad_request("Content-Length header must be non-negative")
        if length > MAX_BODY_BYTES:
            # The body stays unread, so this keep-alive connection cannot
            # be reused — close it instead of misparsing the remainder.
            self.close_connection = True
            raise GatewayFault(
                E_PAYLOAD_TOO_LARGE, 413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        return self.rfile.read(length) if length else b""

    def _dispatch(self, routes, other_routes) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            # Drain the body before routing: a 404/405 that left it unread
            # would be misparsed as the keep-alive connection's next
            # request line.
            body = self._read_body()
            handler = routes.get(path)
            if handler is None:
                if path in other_routes:
                    raise GatewayFault(
                        E_METHOD_NOT_ALLOWED, 405,
                        f"{self.command} is not allowed on {path}",
                    )
                raise GatewayFault(E_NOT_FOUND, 404,
                                   f"no such endpoint: {path}")
            payload = None
            if routes is _POST_ROUTES:
                payload = decode_json_body(body)
            response = handler(self.app, payload)
            self._send_json(200, response.to_payload())
        except GatewayFault as fault:
            self.app.count("errors")
            self._send_json(fault.status, error_envelope(fault))
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - boundary: envelope, not trace
            self.app.count("errors")
            self.close_connection = True
            fault = GatewayFault(
                E_INTERNAL, 500,
                f"internal error ({type(exc).__name__}); see server logs",
            )
            self._send_json(500, error_envelope(fault))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(_GET_ROUTES, _POST_ROUTES)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(_POST_ROUTES, _GET_ROUTES)

    def _reject_method(self) -> None:
        """Any other verb: the envelope contract still applies (the stdlib
        default would answer with an HTML 501 page).  405 on known paths,
        404 on unknown ones."""
        if self.command == "HEAD":
            # A HEAD reply must not carry a body; ours does (the envelope),
            # so drop the connection rather than desync the client parser.
            self.close_connection = True
        self._dispatch({}, {**_GET_ROUTES, **_POST_ROUTES})

    do_PUT = do_DELETE = do_PATCH = do_HEAD = do_OPTIONS = _reject_method


class GatewayHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`GatewayApp`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], app: GatewayApp,
                 verbose: bool = False):
        super().__init__(address, _GatewayHandler)
        self.app = app
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(app: GatewayApp, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> GatewayHTTPServer:
    """Bind a gateway server (``port=0`` picks a free port)."""
    return GatewayHTTPServer((host, port), app, verbose=verbose)


def serve_in_thread(app: GatewayApp, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[GatewayHTTPServer,
                                            threading.Thread]:
    """Start a gateway in a daemon thread; caller shuts the server down."""
    server = make_server(app, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-gateway", daemon=True)
    thread.start()
    return server, thread
