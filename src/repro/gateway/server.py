"""Stdlib HTTP transport for the gateway (``http.server``, no new deps).

:class:`GatewayHTTPServer` is a :class:`ThreadingHTTPServer` whose handler
routes the versioned ``/v1/...`` endpoints to a :class:`GatewayApp`.  The
transport layer owns exactly four jobs — routing, body decoding, response
encoding and request telemetry — and converts every failure into the
uniform error envelope: a :class:`GatewayFault` keeps its stable code and
status, any other exception becomes a 500 ``internal`` envelope (never a
traceback on the wire).

Telemetry contract (see :mod:`repro.telemetry`):

* every request runs under a root span named ``"<METHOD> <path>"``; the
  trace id comes from the client's ``X-Repro-Trace-Id`` header when
  present (sanitized), else is freshly generated;
* every response — success *and* error envelope — carries
  ``X-Repro-Trace-Id`` and ``X-Repro-Duration-Ms`` headers;
* every request increments ``gateway_requests_total{endpoint,status}``
  and observes ``gateway_request_seconds{endpoint}``; error envelopes
  additionally count ``gateway_errors_total{code}`` and emit one
  structured JSON log line;
* finished traces land in the hub's :class:`TraceStore` ring — except
  scrapes of ``/v1/metrics`` and ``/v1/trace/recent`` themselves, which
  would otherwise evict the interesting traces they came to read.

``serve_in_thread`` backs the tests and benchmarks; the blocking
``serve_forever`` path backs ``repro gateway``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.gateway.app import GatewayApp
from repro.gateway.schema import (
    DEADLINE_HEADER,
    E_INTERNAL,
    E_METHOD_NOT_ALLOWED,
    E_NOT_FOUND,
    E_OVERLOADED,
    E_PAYLOAD_TOO_LARGE,
    GatewayFault,
    ObserveRequestV1,
    RankBatchRequestV1,
    RankRequestV1,
    ReloadRequestV1,
    bad_request,
    decode_json_body,
    error_envelope,
)
from repro.resilience import AdmissionQueue, Deadline, deadline_scope
from repro.telemetry import (
    DURATION_HEADER,
    TRACE_HEADER,
    new_trace_id,
    sanitize_trace_id,
    start_trace,
)

#: Raw request bodies beyond this fail with ``payload_too_large`` before
#: any JSON parsing — a gateway facing the open internet must bound reads.
MAX_BODY_BYTES = 8 * 1024 * 1024


def _parse_limit(query: dict) -> int | None:
    """``?limit=N`` for ``/v1/trace/recent`` (last value wins)."""
    values = query.get("limit")
    if not values:
        return None
    try:
        limit = int(values[-1])
    except ValueError:
        raise bad_request("limit must be an integer") from None
    if limit < 0:
        raise bad_request("limit must be >= 0")
    return limit


# Route handlers take (app, payload, query).  A handler returning ``str``
# is served as plain text (the Prometheus exposition); everything else is
# a schema response object encoded via ``to_payload()``.
_GET_ROUTES = {
    "/v1/healthz": lambda app, _payload, _query: app.healthz(),
    "/v1/stats": lambda app, _payload, _query: app.stats(),
    "/v1/models": lambda app, _payload, _query: app.models(),
    "/v1/metrics": lambda app, _payload, _query: app.metrics_text(),
    "/v1/trace/recent": lambda app, _payload, query: app.trace_recent(
        _parse_limit(query)),
}

_POST_ROUTES = {
    "/v1/rank": lambda app, payload, _query: app.rank(
        RankRequestV1.decode(payload)),
    "/v1/rank/batch": lambda app, payload, _query: app.rank_batch(
        RankBatchRequestV1.decode(payload)),
    "/v1/observe": lambda app, payload, _query: app.observe(
        ObserveRequestV1.decode(payload)),
    "/v1/models/reload": lambda app, payload, _query: app.reload(
        ReloadRequestV1.decode(payload)),
}

# Scrape endpoints: still traced (headers, timing) but not archived in
# the TraceStore — a metrics poller must not evict real request traces.
_UNSTORED_PATHS = frozenset({"/v1/metrics", "/v1/trace/recent"})

# Endpoints subject to admission control and drain refusal: the ones that
# reach the model or mutate serving state.  Health probes, metric scrapes
# and introspection must keep answering under overload and during drain —
# that is when operators need them most.
_SHEDDABLE_PATHS = frozenset({"/v1/rank", "/v1/rank/batch", "/v1/observe"})


def _endpoint_label(path: str) -> str:
    """Bound the ``endpoint`` label to known routes (cardinality guard)."""
    if path in _GET_ROUTES or path in _POST_ROUTES:
        return path
    return "other"


class _GatewayHandler(BaseHTTPRequestHandler):
    server_version = "repro-gateway/1"
    protocol_version = "HTTP/1.1"
    # Socket read timeout: a client that stalls mid-headers or sends fewer
    # body bytes than its Content-Length must not pin a handler thread
    # forever — size alone (MAX_BODY_BYTES) does not bound time.
    timeout = 60
    # Keep-alive responses go out as head + body segments; without
    # TCP_NODELAY, Nagle + delayed ACK can hold the body ~40 ms on a
    # reused connection.
    disable_nagle_algorithm = True

    @property
    def app(self) -> GatewayApp:
        return self.server.app  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        # Stdlib internals (send_error, socket chatter) routed through the
        # structured logger instead of bare stderr prints.
        if getattr(self.server, "verbose", False):
            self.app.telemetry.logger.debug("http", detail=format % args)

    def log_request(self, code="-", size="-") -> None:
        # Access logging is handled (structured, with trace ids) at the
        # end of _dispatch; suppress the stdlib per-response line.
        pass

    def _telemetry_headers(self) -> list[tuple[str, str]]:
        started = getattr(self, "_trace_started", None)
        elapsed_ms = 0.0 if started is None \
            else (time.perf_counter() - started) * 1000.0
        trace_id = getattr(self, "_trace_id", None) or new_trace_id()
        return [(TRACE_HEADER, trace_id),
                (DURATION_HEADER, f"{elapsed_ms:.3f}")]

    def _send_bytes(self, status: int, content_type: str,
                    data: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in self._telemetry_headers():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, status: int, body: dict) -> None:
        # Compact separators: a ranking response is dominated by its
        # scores array, and the default ", "/": " padding is ~10% of
        # the bytes every response pays to encode and ship.
        self._send_bytes(status, "application/json",
                         json.dumps(body, separators=(",", ":"))
                         .encode("utf-8"))

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(status, "text/plain; version=0.0.4; charset=utf-8",
                         text.encode("utf-8"))

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            raise bad_request("Content-Length header is not a number") \
                from None
        if length < 0:
            # read(-1) would block until client EOF, pinning the handler
            # thread; refuse and drop the (unreadable) connection.
            self.close_connection = True
            raise bad_request("Content-Length header must be non-negative")
        if length > MAX_BODY_BYTES:
            # The body stays unread, so this keep-alive connection cannot
            # be reused — close it instead of misparsing the remainder.
            self.close_connection = True
            raise GatewayFault(
                E_PAYLOAD_TOO_LARGE, 413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        return self.rfile.read(length) if length else b""

    def _parse_deadline(self) -> Deadline | None:
        """The request's deadline budget, from header or server default."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            default_ms = getattr(self.server, "deadline_ms", None)
            if default_ms is None:
                return None
            return Deadline.after_ms(default_ms)
        try:
            milliseconds = float(raw)
        except ValueError:
            raise bad_request(
                f"{DEADLINE_HEADER} must be a number of milliseconds"
            ) from None
        if not milliseconds > 0:  # also rejects NaN
            raise bad_request(f"{DEADLINE_HEADER} must be > 0")
        return Deadline.after_ms(milliseconds)

    def _admit(self, path: str) -> bool:
        """Admission control for sheddable paths; True when a matching
        ``leave()`` is owed.

        Runs *after* the body is read: refusing with unread body bytes
        would desync the keep-alive connection.  Shedding closes the
        connection anyway — an overloaded gateway should not hold idle
        sockets open for clients it just turned away.
        """
        if path not in _SHEDDABLE_PATHS:
            return False
        app = self.app
        if getattr(self.server, "draining", False):
            app.record_shed("draining")
            self.close_connection = True
            raise GatewayFault(
                E_OVERLOADED, 429,
                "gateway is draining for shutdown; retry elsewhere",
            )
        queue = getattr(self.server, "admission", None)
        if queue is None:
            return False
        if not queue.try_enter():
            app.record_shed("overloaded")
            self.close_connection = True
            raise GatewayFault(
                E_OVERLOADED, 429,
                f"gateway is at its in-flight limit ({queue.limit}); "
                "back off and retry",
            )
        return True

    def _dispatch(self, routes, other_routes) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        query = parse_qs(urlsplit(self.path).query)
        app = self.app
        hub = app.telemetry
        self._trace_started = time.perf_counter()
        self._trace_id = sanitize_trace_id(self.headers.get(TRACE_HEADER))
        store = None if path in _UNSTORED_PATHS else hub.traces
        status = 500
        trace = start_trace(f"{self.command} {path}",
                            trace_id=self._trace_id, store=store,
                            endpoint=path, method=self.command)
        # The response is buffered and written only after the trace is
        # archived and the metrics recorded: the moment a client sees the
        # reply, its trace is scrapeable (no bookkeeping race).
        reply = None  # (status, send-method, payload)
        with trace as root:
            try:
                # Drain the body before routing: a 404/405 that left it
                # unread would be misparsed as the keep-alive connection's
                # next request line.
                body = self._read_body()
                handler = routes.get(path)
                if handler is None:
                    if path in other_routes:
                        raise GatewayFault(
                            E_METHOD_NOT_ALLOWED, 405,
                            f"{self.command} is not allowed on {path}",
                        )
                    raise GatewayFault(E_NOT_FOUND, 404,
                                       f"no such endpoint: {path}")
                admitted = self._admit(path)
                try:
                    payload = None
                    if routes is _POST_ROUTES:
                        payload = decode_json_body(body)
                    with deadline_scope(self._parse_deadline()):
                        response = handler(app, payload, query)
                finally:
                    if admitted:
                        self.server.admission.leave()
                status = 200
                if isinstance(response, str):
                    reply = (200, self._send_text, response)
                else:
                    reply = (200, self._send_json, response.to_payload())
            except GatewayFault as fault:
                status = fault.status
                self._record_fault(path, fault)
                reply = (fault.status, self._send_json,
                         error_envelope(fault))
            except ConnectionError:  # pragma: no cover - client went away
                status = 0
            except Exception as exc:  # noqa: BLE001 - boundary: envelope, not trace
                self.close_connection = True
                fault = GatewayFault(
                    E_INTERNAL, 500,
                    f"internal error ({type(exc).__name__}); see server logs",
                )
                self._record_fault(path, fault, exc=exc)
                reply = (500, self._send_json, error_envelope(fault))
            root.set("status", status)
        elapsed = time.perf_counter() - self._trace_started
        app.record_request(_endpoint_label(path), status, elapsed)
        hub.maybe_log_slow(root)
        if getattr(self.server, "verbose", False):
            hub.logger.info(
                "request", method=self.command, path=path, status=status,
                duration_ms=round(elapsed * 1000.0, 3),
                trace_id=self._trace_id,
            )
        try:
            if reply is not None:
                reply_status, send, data = reply
                send(reply_status, data)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def _record_fault(self, path: str, fault: GatewayFault,
                      exc: Exception | None = None) -> None:
        """One error envelope = one counter bump + one structured line."""
        app = self.app
        app.count("errors")
        app.record_error(fault.code)
        log = app.telemetry.logger
        emit = log.error if fault.status >= 500 else log.warning
        fields = {
            "code": fault.code, "status": fault.status, "endpoint": path,
            "method": self.command, "message": str(fault),
        }
        if exc is not None:
            fields["exception"] = type(exc).__name__
        emit("gateway_error", **fields)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(_GET_ROUTES, _POST_ROUTES)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(_POST_ROUTES, _GET_ROUTES)

    def _reject_method(self) -> None:
        """Any other verb: the envelope contract still applies (the stdlib
        default would answer with an HTML 501 page).  405 on known paths,
        404 on unknown ones."""
        if self.command == "HEAD":
            # A HEAD reply must not carry a body; ours does (the envelope),
            # so drop the connection rather than desync the client parser.
            self.close_connection = True
        self._dispatch({}, {**_GET_ROUTES, **_POST_ROUTES})

    do_PUT = do_DELETE = do_PATCH = do_HEAD = do_OPTIONS = _reject_method


class GatewayHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`GatewayApp`.

    Resilience knobs (ISSUE 7):

    * ``max_inflight`` bounds concurrently *served* rank/observe requests
      via an :class:`AdmissionQueue`; excess requests get a fast 429
      ``overloaded`` envelope instead of queueing behind the model.
    * ``deadline_ms`` is a default per-request budget applied when the
      client sends no ``X-Repro-Deadline-Ms`` header; expired budgets
      answer 503 ``deadline_exceeded`` before scoring starts.
    * :meth:`begin_drain` / :meth:`wait_drained` implement graceful
      shutdown: new work is refused (sheddable paths answer 429 with the
      connection closed) while in-flight requests run to completion.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int], app: GatewayApp,
                 verbose: bool = False, max_inflight: int | None = None,
                 deadline_ms: float | None = None,
                 listen_socket=None):
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0 (or None)")
        if listen_socket is None:
            super().__init__(address, _GatewayHandler)
        else:
            # Adopt a pre-bound, already-listening socket (the pool binds
            # with SO_REUSEPORT before forking workers).  Skip the stdlib
            # bind/activate, close the socket it would have created, and
            # fill in the attributes server_bind() normally derives —
            # without the getfqdn() call, which can stall on slow DNS.
            super().__init__(address, _GatewayHandler,
                             bind_and_activate=False)
            self.socket.close()
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
            host, port = self.server_address[:2]
            self.server_name = host
            self.server_port = port
        self.app = app
        self.verbose = verbose
        self.admission = AdmissionQueue(max_inflight)
        self.deadline_ms = deadline_ms
        self.draining = False

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- graceful shutdown ---------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting sheddable work; already-running requests finish.

        A bare ``bool`` flag is enough: handler threads only read it, and
        Python attribute stores are atomic.  Callers follow up with
        :meth:`wait_drained` and then the normal ``shutdown()``.
        """
        self.draining = True

    def wait_drained(self, timeout: float | None = None) -> bool:
        """Block until every admitted request left; True when drained."""
        return self.admission.drain(timeout)


def make_server(app: GatewayApp, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                max_inflight: int | None = None,
                deadline_ms: float | None = None,
                listen_socket=None) -> GatewayHTTPServer:
    """Bind a gateway server (``port=0`` picks a free port).

    ``listen_socket`` hands over a pre-bound listening socket (worker
    pool); ``host``/``port`` are then ignored for binding.
    """
    return GatewayHTTPServer((host, port), app, verbose=verbose,
                             max_inflight=max_inflight,
                             deadline_ms=deadline_ms,
                             listen_socket=listen_socket)


def serve_in_thread(app: GatewayApp, host: str = "127.0.0.1",
                    port: int = 0, **server_kwargs) -> tuple[
                        GatewayHTTPServer, threading.Thread]:
    """Start a gateway in a daemon thread; caller shuts the server down.

    Keyword arguments (``max_inflight``, ``deadline_ms``, ``verbose``)
    pass through to :func:`make_server`.
    """
    server = make_server(app, host, port, **server_kwargs)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-gateway", daemon=True)
    thread.start()
    return server, thread
