"""Cross-connection micro-batching for ``/v1/rank`` (worker-internal).

A ThreadingHTTPServer hands every connection its own handler thread, so
concurrent ``/v1/rank`` requests reach the app as independent single
rankings — each paying a full forward pass even though the compiled
plans score a batch of 16 for barely more than a batch of 1.  The
:class:`MicroBatcher` coalesces them: the first thread to arrive becomes
the *leader*, holds the batch open for a short window (``--batch-window-
ms``, ~2 ms) while other handler threads append their announcements as
*followers*, then runs one gated ``PredictionService.rank_batch`` for
the lot and demultiplexes alerts (or per-entry faults) back to the
waiting threads.

Semantics are bit-for-bit those of solo ranking:

* gating (coin-universe, known-channel, candidate and deadline checks)
  is applied **per entry** — one bad announcement faults its own request
  and never poisons batch-mates;
* scoring is history-pure and the fold order is unchanged (the service
  folds after scoring, exactly as a solo ``rank_batch([a])`` would), so
  the alert for an announcement is identical whether it was coalesced
  or not;
* a request that arrives while no other rank is in flight skips the
  window entirely — sequential replay traffic pays zero added latency.

The leader publishes results and sets every entry's event in a
``finally``: follower threads can never be left hanging, whatever the
batch execution raises.
"""

from __future__ import annotations

import threading

from repro.gateway.schema import E_INTERNAL, GatewayFault
from repro.resilience import current_deadline
from repro.serving.online import Announcement
from repro.serving.service import Alert

#: Default coalescing window in milliseconds (the CLI default).
DEFAULT_WINDOW_MS = 2.0

#: Upper bound on a follower's wait for its leader.  Only reachable if
#: the executor thread dies mid-flush (a bug, not an operating mode);
#: better a typed 500 than a handler thread pinned forever.
_FOLLOWER_TIMEOUT_S = 120.0


class _Entry:
    """One enqueued rank request and its rendezvous with the leader."""

    __slots__ = ("announcement", "deadline", "done", "alert", "fault")

    def __init__(self, announcement: Announcement, deadline):
        self.announcement = announcement
        self.deadline = deadline
        self.done = threading.Event()
        self.alert: Alert | None = None
        self.fault: GatewayFault | None = None


class MicroBatcher:
    """Leader/follower batcher over an ``execute(entries)`` callback.

    ``execute`` (the app's gated scoring section) must fill each entry's
    ``alert`` or ``fault``; entries it leaves untouched fault with a 500
    so a buggy executor degrades loudly instead of hanging clients.
    """

    def __init__(self, execute, window_s: float, max_batch: int):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._execute = execute
        self.window_s = window_s
        self.max_batch = max_batch
        self._lock = threading.Lock()
        # The open batch (None while no leader is collecting) and the
        # event its leader sleeps on; followers set it when the batch
        # fills so a full window is never waited out pointlessly.
        self._pending: list[_Entry] | None = None
        self._full: threading.Event | None = None
        # Rank requests currently inside submit(); a lone request sees
        # inflight == 1 and skips the window (no batch-mates can exist).
        self._inflight = 0
        # Lifetime counters the app exposes as metrics.
        self.flushes = 0
        self.coalesced_requests = 0

    def submit(self, announcement: Announcement) -> Alert:
        """Rank one announcement through the next coalesced flush.

        Returns the alert or raises the entry's :class:`GatewayFault` —
        exactly what the solo path would have produced.
        """
        entry = _Entry(announcement, current_deadline())
        with self._lock:
            self._inflight += 1
            leading = self._pending is None
            if leading:
                self._pending = [entry]
                self._full = threading.Event()
                wake = self._full
                alone = self._inflight == 1
            else:
                self._pending.append(entry)
                if len(self._pending) >= self.max_batch:
                    self._full.set()
        try:
            if leading:
                self._lead(wake, alone)
            else:
                entry.done.wait(_FOLLOWER_TIMEOUT_S)
        finally:
            with self._lock:
                self._inflight -= 1
        if entry.fault is not None:
            raise entry.fault
        if entry.alert is None:  # leader died or follower timed out
            raise GatewayFault(
                E_INTERNAL, 500,
                "micro-batch flush abandoned this request; see server logs",
            )
        return entry.alert

    def _lead(self, wake: threading.Event, alone: bool) -> None:
        """Hold the window open, then flush whatever accumulated."""
        if not alone:
            wake.wait(self.window_s)
        with self._lock:
            batch, self._pending = self._pending, None
            self._full = None
            self.flushes += 1
            self.coalesced_requests += len(batch)
        try:
            self._execute(batch)
        except GatewayFault as fault:  # executor-level refusal: fan out
            for entry in batch:
                if entry.fault is None and entry.alert is None:
                    entry.fault = fault
        except Exception as exc:  # noqa: BLE001 - boundary: fault, not hang
            fault = GatewayFault(
                E_INTERNAL, 500,
                f"internal error ({type(exc).__name__}); see server logs",
            )
            for entry in batch:
                if entry.fault is None and entry.alert is None:
                    entry.fault = fault
        finally:
            for entry in batch:
                entry.done.set()


__all__ = ["DEFAULT_WINDOW_MS", "MicroBatcher"]
