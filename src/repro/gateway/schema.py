"""The gateway wire schema: versioned request/response types + error codes.

Schema-version policy
---------------------
Every request and response body is a JSON object carrying
``"schema_version"``.  The version is a single integer, bumped only for
*incompatible* changes (a renamed/removed field, a changed meaning);
purely additive fields do not bump it.  The server accepts exactly
:data:`SCHEMA_VERSION` — a request from a newer or older client fails
with the stable error code ``unsupported_schema_version`` instead of
being half-understood, mirroring how :mod:`repro.registry` treats
artifact schema mismatches: **never a stack trace, never a wrong score**.
Responses (including error envelopes) always state the server's version
so a client can diagnose the mismatch.

Decode layer
------------
``decode_*`` functions turn raw HTTP bodies into typed request
dataclasses.  Any malformed input — invalid JSON, a missing field, a
mistyped field, an unknown schema version — raises :class:`GatewayFault`
with a stable machine-readable ``code`` and the HTTP status the server
should answer with; :func:`error_envelope` renders the fault as the
uniform error body::

    {"schema_version": 1, "error": {"code": "...", "message": "..."}}

The payload codecs themselves live on the domain types
(:meth:`Announcement.to_payload`, :meth:`Ranking.to_payload`,
:meth:`Alert.to_payload` and their ``from_payload`` duals) so the server
and the client SDK encode and decode through the same code path —
rankings survive the wire bit-for-bit.

Observability endpoints (ISSUE 6)
---------------------------------
``GET /v1/trace/recent`` is a normal versioned JSON endpoint
(:class:`TraceResponseV1`); individual span-tree *fields* follow the
additive rule like any other payload.  ``GET /v1/metrics`` is the one
deliberate exception to the JSON envelope: it speaks Prometheus text
exposition format (version 0.0.4), which carries its own compatibility
contract — series may be *added* freely, but renaming or re-labelling an
existing series is a breaking change governed by the metric naming
conventions in the README's "Observability" section, not by
``schema_version``.  Error responses on both endpoints still use the
uniform JSON envelope.  Every response on every endpoint carries
``X-Repro-Trace-Id`` (echoing the request's id, if it sent one) and
``X-Repro-Duration-Ms`` headers; both are additive metadata outside the
schema version.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.serving.online import Announcement
from repro.serving.service import Alert
from repro.utils.payload import (
    payload_float,
    payload_int,
    payload_list,
    payload_object,
    payload_str,
)

#: Wire-schema version this server/client pair speaks (see policy above).
SCHEMA_VERSION = 1

# -- stable error codes (the machine-readable contract) -----------------------

E_BAD_JSON = "bad_json"                          # 400: body is not JSON
E_BAD_REQUEST = "bad_request"                    # 400: missing/mistyped field
E_UNSUPPORTED_SCHEMA = "unsupported_schema_version"   # 400
E_UNKNOWN_CHANNEL = "unknown_channel"            # 422: untrained channel
E_NO_CANDIDATES = "no_candidates"                # 422: nothing listed
E_BATCH_TOO_LARGE = "batch_too_large"            # 413
E_PAYLOAD_TOO_LARGE = "payload_too_large"        # 413: raw body cap
E_UNKNOWN_MODEL = "unknown_model"                # 404: reload ref not found
E_BAD_ARTIFACT = "bad_artifact"                  # 409: reload target corrupt
E_NO_REGISTRY = "no_registry"                    # 409: gateway has no registry
E_NOT_FOUND = "not_found"                        # 404: unknown route
E_METHOD_NOT_ALLOWED = "method_not_allowed"      # 405
E_INTERNAL = "internal"                          # 500
E_OVERLOADED = "overloaded"                      # 429: admission bound hit
E_DEADLINE_EXCEEDED = "deadline_exceeded"        # 503: request budget spent

#: Every code a conforming server may emit — pinned by tests so clients
#: can switch on them without chasing a moving target.
ERROR_CODES = frozenset({
    E_BAD_JSON, E_BAD_REQUEST, E_UNSUPPORTED_SCHEMA, E_UNKNOWN_CHANNEL,
    E_NO_CANDIDATES, E_BATCH_TOO_LARGE, E_PAYLOAD_TOO_LARGE,
    E_UNKNOWN_MODEL, E_BAD_ARTIFACT, E_NO_REGISTRY, E_NOT_FOUND,
    E_METHOD_NOT_ALLOWED, E_INTERNAL, E_OVERLOADED, E_DEADLINE_EXCEEDED,
})

#: Optional per-request deadline budget, in milliseconds (additive
#: metadata like the trace headers).  The server refuses to *start*
#: expensive work once the budget is spent and answers 503
#: ``deadline_exceeded`` — the client has already given up, so finishing
#: the work would only burn capacity nobody collects.
DEADLINE_HEADER = "X-Repro-Deadline-Ms"


class GatewayFault(Exception):
    """A request the gateway refuses, as a (code, HTTP status, message)."""

    def __init__(self, code: str, status: int, message: str):
        # Registration is enforced statically by `repro lint` (WIRE001);
        # this debug-build check only catches codes built at runtime,
        # which the linter cannot see.  Stripped under `python -O`.
        if __debug__ and code not in ERROR_CODES:
            raise AssertionError(f"unregistered error code {code!r}")
        super().__init__(message)
        self.code = code
        self.status = status
        self.message = message


def error_envelope(fault: GatewayFault) -> dict:
    """The uniform error body every non-2xx response carries."""
    return {
        "schema_version": SCHEMA_VERSION,
        "error": {"code": fault.code, "message": fault.message},
    }


def bad_request(message: str) -> GatewayFault:
    return GatewayFault(E_BAD_REQUEST, 400, message)


# -- envelope decoding --------------------------------------------------------


def _reject_constant(name: str):
    # Python's json accepts the non-standard NaN/Infinity tokens by
    # default; a NaN time would silently fail every listing comparison
    # downstream, so refuse them at the door.
    raise ValueError(f"non-finite JSON token {name!r} is not allowed")


def decode_json_body(raw: bytes) -> dict:
    """Parse a request body into a dict or fail with a 400 fault."""
    try:
        payload = json.loads(raw.decode("utf-8"),
                             parse_constant=_reject_constant)
    except (UnicodeDecodeError, ValueError) as exc:
        raise GatewayFault(E_BAD_JSON, 400,
                           f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise GatewayFault(E_BAD_JSON, 400,
                           "request body must be a JSON object")
    return payload


def check_schema_version(payload: dict) -> None:
    """Reject any request not speaking exactly :data:`SCHEMA_VERSION`."""
    try:
        version = payload_int(payload, "schema_version")
    except ValueError as exc:
        raise bad_request(str(exc)) from None
    if version != SCHEMA_VERSION:
        raise GatewayFault(
            E_UNSUPPORTED_SCHEMA, 400,
            f"unsupported schema_version {version}; this server speaks "
            f"version {SCHEMA_VERSION}",
        )


def _decode_announcement(obj, *, require_coin: bool) -> Announcement:
    try:
        announcement = Announcement.from_payload(obj)
    except ValueError as exc:
        raise bad_request(f"bad announcement: {exc}") from None
    if require_coin and announcement.coin_id < 0:
        raise bad_request(
            "bad announcement: 'coin_id' is required here — observing a "
            "pump with an unknown released coin would poison the history"
        )
    return announcement


# -- typed requests -----------------------------------------------------------


@dataclass(frozen=True)
class RankRequestV1:
    """``POST /v1/rank`` — score one announcement."""

    announcement: Announcement

    def to_payload(self) -> dict:
        return {"schema_version": SCHEMA_VERSION,
                "announcement": self.announcement.to_payload()}

    @classmethod
    def decode(cls, payload: dict) -> "RankRequestV1":
        check_schema_version(payload)
        try:
            obj = payload_object(payload, "announcement")
        except ValueError as exc:
            raise bad_request(str(exc)) from None
        return cls(_decode_announcement(obj, require_coin=False))


@dataclass(frozen=True)
class RankBatchRequestV1:
    """``POST /v1/rank/batch`` — score a micro-batch in one forward pass."""

    announcements: tuple[Announcement, ...]

    def to_payload(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "announcements": [a.to_payload() for a in self.announcements],
        }

    @classmethod
    def decode(cls, payload: dict) -> "RankBatchRequestV1":
        check_schema_version(payload)
        try:
            entries = payload_list(payload, "announcements")
        except ValueError as exc:
            raise bad_request(str(exc)) from None
        announcements = []
        for index, entry in enumerate(entries):
            try:
                announcements.append(
                    _decode_announcement(entry, require_coin=False)
                )
            except GatewayFault as fault:
                raise GatewayFault(
                    fault.code, fault.status,
                    f"announcements[{index}]: {fault.message}",
                ) from None
        return cls(tuple(announcements))


@dataclass(frozen=True)
class ObserveRequestV1:
    """``POST /v1/observe`` — feed a resolved release into the history.

    ``event_id`` (additive, optional) names the observation uniquely so
    retransmissions deduplicate: the server folds a given id at most
    once, however many times a retrying client delivers it.  Omitting it
    keeps the pre-ISSUE-7 at-least-once semantics.
    """

    announcement: Announcement
    event_id: str | None = None

    def to_payload(self) -> dict:
        payload = {"schema_version": SCHEMA_VERSION,
                   "announcement": self.announcement.to_payload()}
        if self.event_id is not None:
            payload["event_id"] = self.event_id
        return payload

    @classmethod
    def decode(cls, payload: dict) -> "ObserveRequestV1":
        check_schema_version(payload)
        try:
            obj = payload_object(payload, "announcement")
            event_id = payload_str(payload, "event_id", default="")
        except ValueError as exc:
            raise bad_request(str(exc)) from None
        return cls(_decode_announcement(obj, require_coin=True),
                   event_id=event_id or None)


@dataclass(frozen=True)
class ReloadRequestV1:
    """``POST /v1/models/reload`` — hot-swap to a registry artifact."""

    ref: str

    def to_payload(self) -> dict:
        return {"schema_version": SCHEMA_VERSION, "ref": self.ref}

    @classmethod
    def decode(cls, payload: dict) -> "ReloadRequestV1":
        check_schema_version(payload)
        try:
            ref = payload_str(payload, "ref")
        except ValueError as exc:
            raise bad_request(str(exc)) from None
        if not ref:
            raise bad_request("field 'ref' must not be empty")
        return cls(ref)


# -- typed responses ----------------------------------------------------------


def _versioned(body: dict) -> dict:
    return {"schema_version": SCHEMA_VERSION, **body}


@dataclass(frozen=True)
class RankResponseV1:
    alert: Alert

    def to_payload(self) -> dict:
        return _versioned({"alert": self.alert.to_payload()})

    @classmethod
    def decode(cls, payload: dict) -> "RankResponseV1":
        check_schema_version(payload)
        try:
            return cls(Alert.from_payload(payload_object(payload, "alert")))
        except ValueError as exc:
            raise bad_request(f"bad rank response: {exc}") from None


@dataclass(frozen=True)
class RankBatchResponseV1:
    alerts: tuple[Alert, ...]

    def to_payload(self) -> dict:
        return _versioned({"alerts": [a.to_payload() for a in self.alerts]})

    @classmethod
    def decode(cls, payload: dict) -> "RankBatchResponseV1":
        check_schema_version(payload)
        try:
            alerts = tuple(
                Alert.from_payload(entry)
                for entry in payload_list(payload, "alerts")
            )
        except ValueError as exc:
            raise bad_request(f"bad batch response: {exc}") from None
        return cls(alerts)


@dataclass(frozen=True)
class ObserveResponseV1:
    channel_id: int
    history_length: int
    # Additive: True when the event_id had been folded before — a retry
    # landing after the original succeeded.  The history did not grow.
    duplicate: bool = False

    def to_payload(self) -> dict:
        return _versioned({"observed": True, "channel_id": self.channel_id,
                           "history_length": self.history_length,
                           "duplicate": self.duplicate})

    @classmethod
    def decode(cls, payload: dict) -> "ObserveResponseV1":
        check_schema_version(payload)
        try:
            return cls(channel_id=payload_int(payload, "channel_id"),
                       history_length=payload_int(payload, "history_length"),
                       duplicate=bool(payload.get("duplicate", False)))
        except ValueError as exc:
            raise bad_request(f"bad observe response: {exc}") from None


@dataclass(frozen=True)
class ReloadResponseV1:
    model: dict                      # the now-current model descriptor
    previous: dict | None = None     # what was serving before the swap

    def to_payload(self) -> dict:
        return _versioned({"swapped": True, "model": dict(self.model),
                           "previous": self.previous})

    @classmethod
    def decode(cls, payload: dict) -> "ReloadResponseV1":
        check_schema_version(payload)
        try:
            model = payload_object(payload, "model")
            previous = payload.get("previous")
        except ValueError as exc:
            raise bad_request(f"bad reload response: {exc}") from None
        return cls(model=model, previous=previous)


@dataclass(frozen=True)
class HealthResponseV1:
    status: str
    model: dict
    uptime_seconds: float
    reloads: int

    def to_payload(self) -> dict:
        return _versioned({
            "status": self.status,
            "model": dict(self.model),
            "uptime_seconds": self.uptime_seconds,
            "reloads": self.reloads,
        })

    @classmethod
    def decode(cls, payload: dict) -> "HealthResponseV1":
        check_schema_version(payload)
        try:
            return cls(
                status=payload_str(payload, "status"),
                model=payload_object(payload, "model", default={}),
                uptime_seconds=payload_float(payload, "uptime_seconds",
                                             default=0.0),
                reloads=payload_int(payload, "reloads", default=0),
            )
        except ValueError as exc:
            raise bad_request(f"bad health response: {exc}") from None


@dataclass(frozen=True)
class StatsResponseV1:
    service: dict                    # ServiceStats.summary()
    gateway: dict                    # per-endpoint request counters etc.

    def to_payload(self) -> dict:
        return _versioned({"service": dict(self.service),
                           "gateway": dict(self.gateway)})

    @classmethod
    def decode(cls, payload: dict) -> "StatsResponseV1":
        check_schema_version(payload)
        try:
            return cls(service=payload_object(payload, "service"),
                       gateway=payload_object(payload, "gateway"))
        except ValueError as exc:
            raise bad_request(f"bad stats response: {exc}") from None


@dataclass(frozen=True)
class TraceResponseV1:
    """``GET /v1/trace/recent`` — the last N finished span trees."""

    traces: list = field(default_factory=list)  # TraceStore.recent() dicts

    def to_payload(self) -> dict:
        return _versioned({"traces": list(self.traces)})

    @classmethod
    def decode(cls, payload: dict) -> "TraceResponseV1":
        check_schema_version(payload)
        try:
            return cls(traces=payload_list(payload, "traces"))
        except ValueError as exc:
            raise bad_request(f"bad trace response: {exc}") from None


@dataclass(frozen=True)
class ModelsResponseV1:
    registry: str | None             # registry root, or None if unconfigured
    current: dict                    # descriptor of the model now serving
    models: list = field(default_factory=list)   # registry_payload()["models"]

    def to_payload(self) -> dict:
        return _versioned({"registry": self.registry,
                           "current": dict(self.current),
                           "models": list(self.models)})

    @classmethod
    def decode(cls, payload: dict) -> "ModelsResponseV1":
        check_schema_version(payload)
        try:
            return cls(
                registry=payload.get("registry"),
                current=payload_object(payload, "current"),
                models=payload_list(payload, "models"),
            )
        except ValueError as exc:
            raise bad_request(f"bad models response: {exc}") from None
