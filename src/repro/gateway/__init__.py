"""repro.gateway — the versioned HTTP/JSON serving surface.

Everything in-process serving can do, over a wire protocol (ISSUE 5):
``POST /v1/rank`` and ``/v1/rank/batch`` score announcements through the
micro-batched :class:`~repro.serving.PredictionService`,
``POST /v1/observe`` feeds channel history, ``GET /v1/models`` +
``POST /v1/models/reload`` list and hot-swap
:class:`~repro.registry.ModelRegistry` artifacts with zero dropped
requests, and ``GET /v1/healthz`` / ``GET /v1/stats`` expose liveness and
:class:`~repro.serving.ServiceStats`.

Observability (ISSUE 6): ``GET /v1/metrics`` serves the Prometheus text
exposition of every registry the gateway can see, ``GET /v1/trace/recent``
returns recent span trees, every response carries ``X-Repro-Trace-Id`` and
``X-Repro-Duration-Ms`` headers, and errors are logged as structured JSON
(see :mod:`repro.telemetry`).

Layers
------
``schema``  — wire-schema version, typed request/response dataclasses,
              strict decode, stable error codes (:data:`ERROR_CODES`).
``app``     — :class:`GatewayApp`: transport-free endpoint logic with an
              atomically swappable service.
``server``  — :class:`GatewayHTTPServer` (stdlib ``ThreadingHTTPServer``)
              plus :func:`make_server` / :func:`serve_in_thread`.
``client``  — :class:`GatewayClient`: the Python SDK; decodes responses
              through the same codecs the server encodes with, and
              retries transient failures under a
              :class:`~repro.resilience.RetryPolicy` (ISSUE 7).
``replay``  — :func:`replay_against_gateway`: drive a remote gateway from
              a locally replayed message stream (``repro serve
              --gateway``).
``microbatch`` — :class:`MicroBatcher`: coalesce concurrent ``/v1/rank``
              requests across connections into one forward pass (PR 9).
``pool``    — :func:`bind_pool_sockets` / :func:`run_pool` /
              :func:`worker_serve`: the ``--workers N`` pre-fork worker
              pool with crash supervision, SIGTERM fan-out and pool-level
              metrics aggregation (PR 9).
"""

from repro.gateway.app import DEFAULT_MAX_BATCH, GatewayApp, describe_model
from repro.gateway.microbatch import DEFAULT_WINDOW_MS, MicroBatcher
from repro.gateway.pool import (
    PoolMetrics,
    bind_pool_sockets,
    run_pool,
    worker_serve,
)
from repro.gateway.client import (
    DEFAULT_TIMEOUT,
    RETRYABLE_STATUSES,
    GatewayCircuitOpenError,
    GatewayClient,
    GatewayClientError,
    GatewayConnectionError,
    GatewayRequestError,
    GatewayTimeoutError,
)
from repro.gateway.replay import (
    RemoteReplay,
    RemoteReplayResult,
    replay_against_gateway,
)
from repro.gateway.schema import (
    DEADLINE_HEADER,
    ERROR_CODES,
    SCHEMA_VERSION,
    GatewayFault,
    TraceResponseV1,
    error_envelope,
)
from repro.telemetry import DURATION_HEADER, TRACE_HEADER
from repro.gateway.server import (
    GatewayHTTPServer,
    make_server,
    serve_in_thread,
)

__all__ = [
    "SCHEMA_VERSION", "ERROR_CODES", "GatewayFault", "error_envelope",
    "GatewayApp", "describe_model", "DEFAULT_MAX_BATCH",
    "GatewayHTTPServer", "make_server", "serve_in_thread",
    "GatewayClient", "GatewayClientError", "GatewayConnectionError",
    "GatewayRequestError", "GatewayTimeoutError", "GatewayCircuitOpenError",
    "DEFAULT_TIMEOUT", "RETRYABLE_STATUSES",
    "RemoteReplay", "RemoteReplayResult", "replay_against_gateway",
    "TraceResponseV1", "TRACE_HEADER", "DURATION_HEADER",
    "DEADLINE_HEADER",
    "MicroBatcher", "DEFAULT_WINDOW_MS",
    "PoolMetrics", "bind_pool_sockets", "run_pool", "worker_serve",
]
