"""Replay a message stream against a *remote* gateway.

The client-side twin of :meth:`repro.serving.StreamEngine.run`: pump
detection and 24h-gap sessionization run locally (they need only the
fitted detection artefacts, not the ranker), while every scoring decision
goes over the wire through the :class:`GatewayClient`.  Both twins run
the *same* micro-batching event loop
(:func:`repro.serving.engine.drive_stream`), so a replay against a
gateway serving the same artifact produces bit-for-bit the alerts the
local engine would (``tests/gateway/test_remote_replay.py``).

Where the engine gates announcements locally (``knows_channel`` /
``has_candidates``), the remote loop cannot — the model lives on the
server — so it sends optimistically and converts the gateway's stable
422 codes (``unknown_channel`` / ``no_candidates``) back into the
engine's skip semantics, falling back from one batch POST to per-item
POSTs only when a batch is refused.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.pipeline import CollectionResult
from repro.gateway.client import GatewayClient, GatewayRequestError
from repro.gateway.schema import E_NO_CANDIDATES, E_UNKNOWN_CHANNEL
from repro.serving.engine import drive_stream
from repro.serving.online import Announcement, OnlineDetector, OnlineSessionizer
from repro.serving.service import Alert
from repro.serving.sinks import AlertSink
from repro.serving.stats import ServiceStats
from repro.serving.stream import MessageStream
from repro.sources.base import as_source

_SKIP_CODES = (E_UNKNOWN_CHANNEL, E_NO_CANDIDATES)


@dataclass
class RemoteReplayResult:
    """Everything one remote replay produced (client-side view)."""

    alerts: list[Alert]
    stats: ServiceStats
    skipped: list[Announcement] = field(default_factory=list)


class RemoteReplay:
    """Event loop: local detection/sessionization, remote ranking."""

    def __init__(self, detector: OnlineDetector,
                 sessionizer: OnlineSessionizer, client: GatewayClient,
                 sinks: tuple[AlertSink, ...] = (), max_batch: int = 64,
                 stats: ServiceStats | None = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.detector = detector
        self.sessionizer = sessionizer
        self.client = client
        self.sinks = tuple(sinks)
        self.max_batch = max_batch
        self.stats = stats or ServiceStats()

    def _rank_remote(self,
                     batch: list[Announcement]) -> tuple[list[Alert],
                                                         list[Announcement]]:
        """One batch over the wire; refused batches degrade to singles."""
        try:
            return self.client.rank_batch(batch), []
        except GatewayRequestError as exc:
            if exc.code not in _SKIP_CODES:
                raise
        alerts: list[Alert] = []
        skipped: list[Announcement] = []
        for announcement in batch:
            try:
                alerts.append(self.client.rank(announcement))
            except GatewayRequestError as exc:
                if exc.code not in _SKIP_CODES:
                    raise
                if exc.code == E_UNKNOWN_CHANNEL:
                    self.stats.unknown_channels += 1
                else:
                    self.stats.no_candidates += 1
                skipped.append(announcement)
        return alerts, skipped

    def _rank_and_record(self,
                         batch: list[Announcement]) -> tuple[list[Alert],
                                                             list[Announcement]]:
        alerts, skipped = self._rank_remote(batch)
        for alert in alerts:
            # Server-measured scoring latency; the client-side loop only
            # accounts for it.
            self.stats.alerts += 1
            self.stats.record_latency(alert.latency_ms)
        return alerts, skipped

    def run(self, stream: MessageStream) -> RemoteReplayResult:
        alerts, skipped = drive_stream(
            stream, detector=self.detector, sessionizer=self.sessionizer,
            stats=self.stats, max_batch=self.max_batch, sinks=self.sinks,
            rank_batch=self._rank_and_record,
        )
        return RemoteReplayResult(alerts=alerts, stats=self.stats,
                                  skipped=skipped)


def replay_against_gateway(source, collection: CollectionResult,
                           client: GatewayClient, *,
                           sinks: tuple[AlertSink, ...] = (),
                           max_batch: int = 64,
                           detector_threshold: float | None = None
                           ) -> RemoteReplayResult:
    """Replay the held-out test period against a running gateway.

    The remote counterpart of
    :func:`repro.serving.replay_test_period` — same stream window, same
    monitored channel set, same micro-batching — with the ranking model
    living behind ``client`` instead of in this process.
    """
    source = as_source(source)
    stats = ServiceStats()
    detector_kwargs = {}
    if detector_threshold is not None:
        detector_kwargs["threshold"] = detector_threshold
    detector = OnlineDetector.from_detection(
        collection.detection, stats=stats, **detector_kwargs
    )
    sessionizer = OnlineSessionizer(
        source.coins.symbols, list(source.exchange_names), stats=stats,
    )
    replay = RemoteReplay(detector, sessionizer, client, sinks=sinks,
                          max_batch=max_batch, stats=stats)
    start = collection.dataset.split_hours[1]
    stream = MessageStream.replay(
        source, start=start,
        channel_ids=collection.exploration.explored_ids,
    )
    return replay.run(stream)
