"""SignalRanker — the heuristic, training-free baseline ranker.

Ranks an announcement's candidate coins purely by composite signal score.
No model, no fitting: this is the floor any *trained* signal-aware ranker
must clear, and a deployable fallback when no artifact is available.

``evaluate`` scores a :class:`TargetCoinDataset` split list-by-list and
returns the same HR@k dict the trained rankers report, so the baseline
drops straight into the ``repro eval`` comparison tables.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.predictor import CoinScore, Ranking
from repro.markets import PAIR_SYMBOLS
from repro.ml import hit_ratio_at_k
from repro.signals.engine import SignalEngine

HR_KS = (1, 3, 5, 10, 20, 30)


class SignalRanker:
    """Rank candidates by composite market-signal score alone."""

    def __init__(self, source, engine: SignalEngine | None = None):
        self.source = source
        self.engine = engine or SignalEngine.from_source(source)

    def candidates(self, exchange_id: int, time: float) -> np.ndarray:
        """Eligible coins: listed on the exchange, not a pairing major."""
        listed = self.source.coins.listed_coins(exchange_id, time)
        return listed[listed >= len(PAIR_SYMBOLS)]

    def rank(self, channel_id: int, exchange_id: int,
             time: float) -> Ranking:
        """Score every candidate for one announcement (Ranking-compatible)."""
        coins = self.candidates(exchange_id, time)
        if len(coins) == 0:
            return Ranking(channel_id=channel_id, exchange_id=exchange_id,
                           pump_time=time, scores=[])
        composite = self.engine.composite(coins, time)
        order = np.argsort(-composite, kind="stable")
        scores = [
            CoinScore(int(coins[i]), self.source.coins.symbols[int(coins[i])],
                      float(composite[i]))
            for i in order
        ]
        return Ranking(channel_id=channel_id, exchange_id=exchange_id,
                       pump_time=time, scores=scores)

    def rank_lists(self, dataset, split: str = "test") -> list[np.ndarray]:
        """``(score, label)`` arrays per ranking list of a dataset split."""
        by_list: dict[int, list] = {}
        for example in dataset.examples:
            if example.split == split:
                by_list.setdefault(example.list_id, []).append(example)
        lists = []
        for list_id in sorted(by_list):
            rows = by_list[list_id]
            coins = np.array([e.coin_id for e in rows], dtype=np.int64)
            composite = self.engine.composite(coins, rows[0].time)
            labels = np.array([e.label for e in rows], dtype=np.float64)
            lists.append(np.stack([composite, labels], axis=1))
        return lists

    def evaluate(self, dataset, split: str = "test",
                 ks: Sequence[int] = HR_KS) -> dict[int, float]:
        """HR@k of the heuristic on a dataset split."""
        return hit_ratio_at_k(self.rank_lists(dataset, split), ks)
