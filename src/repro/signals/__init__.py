"""repro.signals — market-microstructure signals over the data plane.

A pluggable signal stage over :mod:`repro.sources` candle/volume data
(ROADMAP item 3).  Three consumers:

* **signal-aware features** — :meth:`SignalEngine.feature_block` columns
  appended to the FeatureAssembler numerics (``repro train --signals``),
  carried through registry artifacts and the serving gateway unchanged;
* **heuristic baseline** — :class:`SignalRanker` ranks candidates by
  composite score alone, comparable against trained rankers;
* **ad-hoc inspection** — the ``repro signals`` CLI.

Scores are deterministic and bit-for-bit identical across source
backends: all window math reads integer-hour candles only (see
:mod:`repro.signals.base`).
"""

from repro.signals.base import (
    EPS,
    SIGNAL_LOOKBACK_HOURS,
    Signal,
    SignalError,
    anchor_hour,
    lookback_hours,
    signal_grids,
)
from repro.signals.engine import COMPOSITE_FEATURE, SignalEngine
from repro.signals.library import (
    SIGNAL_NAMES,
    MomentumDivergence,
    PriceRunup,
    TurnoverImbalance,
    VolatilityCompression,
    VolumePriceDecoupling,
    VolumeSurge,
    default_signals,
)
from repro.signals.ranker import SignalRanker
from repro.signals.scorer import (
    DEFAULT_INTERACTIONS,
    DEFAULT_SCALES,
    DEFAULT_WEIGHTS,
    CompositeScorer,
    Interaction,
)

__all__ = [
    "COMPOSITE_FEATURE",
    "CompositeScorer",
    "DEFAULT_INTERACTIONS",
    "DEFAULT_SCALES",
    "DEFAULT_WEIGHTS",
    "EPS",
    "Interaction",
    "MomentumDivergence",
    "PriceRunup",
    "SIGNAL_LOOKBACK_HOURS",
    "SIGNAL_NAMES",
    "Signal",
    "SignalEngine",
    "SignalError",
    "SignalRanker",
    "TurnoverImbalance",
    "VolatilityCompression",
    "VolumePriceDecoupling",
    "VolumeSurge",
    "anchor_hour",
    "default_signals",
    "lookback_hours",
    "signal_grids",
]
