"""SignalEngine — per-coin, per-time signal scores over any market source.

The engine owns a battery of :class:`Signal` implementations and a
:class:`CompositeScorer`.  One :meth:`evaluate` call fetches the shared
candle grids once (see :func:`repro.signals.base.signal_grids`) and runs
every signal over them — vectorized across coins, no per-coin Python.

``feature_block`` is the FeatureAssembler/predictor hook: squashed
per-signal channels plus the composite, as extra numeric feature columns.
Evaluations are counted and timed in the process-wide telemetry registry
(``signal_evaluations_total`` / ``signal_compute_seconds``).
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.signals.base import SignalError, signal_grids
from repro.signals.library import default_signals
from repro.signals.scorer import CompositeScorer
from repro.telemetry import default_registry

#: Suffix column appended after the per-signal channels in feature blocks.
COMPOSITE_FEATURE = "signal_composite"


def _record_evaluation(started: float, coins: int, signals: int) -> None:
    """Count one engine evaluation in the process-wide registry.

    Instruments are (re-)resolved per call — registration is idempotent
    and this keeps working when tests swap the default registry.
    """
    registry = default_registry()
    registry.counter(
        "signal_evaluations_total",
        "SignalEngine evaluations (one per announcement scored).",
    ).inc()
    registry.counter(
        "signal_coin_scores_total",
        "Per-coin signal score rows computed across all evaluations.",
    ).inc(coins * signals)
    registry.histogram(
        "signal_compute_seconds",
        "Wall time of one SignalEngine evaluation.",
    ).observe(_time.perf_counter() - started)


class SignalEngine:
    """Compute signal scores for candidate coins at an announcement time.

    Parameters
    ----------
    market:
        Any market oracle exposing broadcastable ``log_close`` /
        ``hourly_volume`` (both source backends qualify).
    signals:
        The signal battery; defaults to the standard six
        (:func:`repro.signals.library.default_signals`).
    scorer:
        Composite scorer; defaults to :class:`CompositeScorer` over the
        battery's names with library weights/interactions.
    """

    def __init__(self, market, signals=None, scorer=None):
        self.market = market
        self.signals = tuple(signals) if signals is not None \
            else default_signals()
        if not self.signals:
            raise SignalError("signal battery must not be empty")
        self.signal_names = tuple(s.name for s in self.signals)
        if len(set(self.signal_names)) != len(self.signal_names):
            raise SignalError("signal names must be unique")
        self.scorer = scorer or CompositeScorer(self.signal_names)

    @classmethod
    def from_source(cls, source, signals=None,
                    scorer=None) -> "SignalEngine":
        """Build over a :class:`repro.sources.DataSource` backend.

        File-backed sources validate candle coverage for the signal
        lookback windows up front (see
        :meth:`repro.sources.FileDatasetSource.validate_signal_coverage`),
        so a dump with holes fails at construction with the uncovered
        window named — never with NaN scores at serve time.
        """
        validate = getattr(source, "validate_signal_coverage", None)
        if validate is not None:
            validate()
        return cls(source.market, signals=signals, scorer=scorer)

    @property
    def feature_names(self) -> tuple:
        """Column names of :meth:`feature_block`."""
        return tuple(f"signal_{name}" for name in self.signal_names) \
            + (COMPOSITE_FEATURE,)

    def evaluate(self, coins: np.ndarray, time: float) -> np.ndarray:
        """Raw per-signal scores, ``(n_coins, n_signals)``."""
        started = _time.perf_counter()
        coins = np.asarray(coins, dtype=np.int64)
        log_close, volume = signal_grids(self.market, coins, time)
        raw = np.empty((len(coins), len(self.signals)))
        for column, signal in enumerate(self.signals):
            raw[:, column] = signal.compute(log_close, volume)
        _record_evaluation(started, len(coins), len(self.signals))
        return raw

    def composite(self, coins: np.ndarray, time: float) -> np.ndarray:
        """Composite scores, ``(n_coins,)`` — the heuristic ranking key."""
        return self.scorer.composite(self.evaluate(coins, time))

    def feature_block(self, coins: np.ndarray, time: float) -> np.ndarray:
        """Signal feature columns: squashed signals + composite.

        ``(n_coins, n_signals + 1)``, aligned with :attr:`feature_names`.
        Squashed (not raw) channels keep the columns on a bounded scale so
        train-split standardization stays well-conditioned.
        """
        raw = self.evaluate(coins, time)
        squashed = self.scorer.squash(raw)
        return np.concatenate(
            [squashed, self.scorer.composite(raw)[:, None]], axis=1
        )
