"""Signal plumbing: the grid contract and the ``Signal`` protocol.

Every signal consumes the same two arrays — per-coin hourly **log-close**
and **volume** grids covering the :data:`SIGNAL_LOOKBACK_HOURS` hours
strictly before an announcement — and returns one raw score per coin.

The grid is anchored on *integer* hours (``anchor = floor(t) - 1``, the
last fully closed candle before the announcement) because that is the
resolution both source backends agree on bit-for-bit: synthetic dumps
record candles at integer hours and :class:`repro.sources.FileMarketData`
floors lookups to the recorded hour, so querying only integer hours makes
signal scores identical across a :class:`SyntheticWorldSource` and its
exported dump (pinned by tests/signals/test_engine.py).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

#: Hours of hourly candles every signal window fits inside.  Matches the
#: stable-feature lead (repro.features.coin.STABLE_LEAD_HOURS) and stays
#: under the ingest margin (repro.sources.ingest.NEEDED_HOURS_MARGIN), so
#: any dump that supports the paper features also supports signals.
SIGNAL_LOOKBACK_HOURS = 72

#: Guard against divide-by-zero on dead markets; small enough to never
#: move a score on live ones.
EPS = 1e-9

#: Canonical log-close precision for signal inputs.  A recorded dump
#: stores ``close = exp(log_close)`` as text and the file backend takes
#: ``log`` again, so the reread value differs from the simulator's by a
#: ulp (``log(exp(x)) != x``).  Rounding the grid to nanolog precision
#: absorbs that roundtrip, making scores bit-for-bit identical across
#: backends without losing any market structure (hourly moves are
#: ~1e-2 .. 1e-1 in log space).
LOG_CLOSE_DECIMALS = 9


class SignalError(ValueError):
    """A signal could not be computed (bad window, malformed grid)."""


@runtime_checkable
class Signal(Protocol):
    """One market-microstructure signal over the pre-announcement window.

    ``compute`` receives ``(n_coins, SIGNAL_LOOKBACK_HOURS)`` log-close and
    volume grids (column ``-1`` is the anchor hour) and returns a raw
    ``(n_coins,)`` float64 score, higher = more pump-like.  Implementations
    must be pure array math — no RNG, no wall clock, no per-coin loops —
    so scores are deterministic and cheap at serving time.
    """

    name: str

    def compute(self, log_close: np.ndarray,
                volume: np.ndarray) -> np.ndarray: ...


def anchor_hour(time: float) -> int:
    """Last fully closed integer hour strictly before ``time``."""
    return int(np.floor(time)) - 1


def lookback_hours(time: float) -> np.ndarray:
    """The integer hour grid a signal evaluation at ``time`` reads."""
    anchor = anchor_hour(time)
    return np.arange(anchor - SIGNAL_LOOKBACK_HOURS + 1, anchor + 1,
                     dtype=np.int64)


def signal_grids(market, coins: np.ndarray,
                 time: float) -> tuple[np.ndarray, np.ndarray]:
    """Fetch the ``(n_coins, 72)`` log-close and volume grids for ``time``.

    Queries the market oracle only at integer hours (see module docstring)
    and validates the result: a grid with NaNs would silently poison every
    downstream score, so it fails loudly instead.
    """
    coins = np.asarray(coins, dtype=np.int64)
    hours = lookback_hours(time).astype(np.float64)
    log_close = np.round(np.asarray(
        market.log_close(coins[:, None], hours[None, :]), dtype=np.float64
    ), LOG_CLOSE_DECIMALS)
    volume = np.asarray(
        market.hourly_volume(coins[:, None], hours[None, :]), dtype=np.float64
    )
    shape = (len(coins), SIGNAL_LOOKBACK_HOURS)
    if log_close.shape != shape or volume.shape != shape:
        raise SignalError(
            f"market returned grids {log_close.shape}/{volume.shape}, "
            f"expected {shape}"
        )
    bad = ~(np.isfinite(log_close) & np.isfinite(volume))
    if bad.any():
        coin_rows = np.unique(coins[np.nonzero(bad)[0]])[:4]
        raise SignalError(
            f"non-finite candles in signal window "
            f"[{int(hours[0])}, {int(hours[-1])}] for coins "
            f"{coin_rows.tolist()} at t={time:.2f}"
        )
    return log_close, volume
