"""CompositeScorer — weighted squashed signals plus interaction bonuses.

Raw signal scores live on wildly different scales (log-ratios, signed
shares, log-price drifts), so each is squashed with ``tanh(raw / scale)``
into ``(-1, 1)`` before weighing.  Interaction bonuses reward *co-firing*
pairs — e.g. a volume surge on top of a long run-up is far stronger
evidence than either alone — mirroring the weighted-scorer-with-bonuses
design the related detection repos use.

Everything is pure float64 array math with a fixed evaluation order, so
composite scores are bit-for-bit reproducible for a given source.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Interaction:
    """A bonus applied when two squashed signals both clear a threshold."""

    first: str
    second: str
    threshold: float
    bonus: float


#: Per-signal tanh scales: the raw score that maps to ``tanh(1) ≈ 0.76``.
DEFAULT_SCALES = {
    "volume_surge": 0.5,
    "volume_price_decoupling": 0.5,
    "volatility_compression": 0.6,
    "price_runup": 0.05,
    "turnover_imbalance": 0.4,
    "momentum_divergence": 0.004,
}

#: Per-signal weights in the composite sum.
DEFAULT_WEIGHTS = {
    "volume_surge": 1.0,
    "volume_price_decoupling": 0.8,
    "volatility_compression": 0.6,
    "price_runup": 1.0,
    "turnover_imbalance": 0.7,
    "momentum_divergence": 0.6,
}

#: Co-firing bonuses: ignition (surge on run-up), stealth accumulation
#: (decoupled volume into a quiet book), one-sided tape (surge + buy-side
#: imbalance).
DEFAULT_INTERACTIONS = (
    Interaction("volume_surge", "price_runup", 0.3, 0.5),
    Interaction("volume_price_decoupling", "volatility_compression", 0.3, 0.4),
    Interaction("volume_surge", "turnover_imbalance", 0.3, 0.3),
)


@dataclass(frozen=True)
class CompositeScorer:
    """Combine per-signal raw scores into one composite per coin."""

    signal_names: tuple
    weights: dict = field(default_factory=dict)
    scales: dict = field(default_factory=dict)
    interactions: tuple = DEFAULT_INTERACTIONS

    def __post_init__(self):
        index = {name: i for i, name in enumerate(self.signal_names)}
        for interaction in self.interactions:
            for name in (interaction.first, interaction.second):
                if name not in index:
                    raise ValueError(
                        f"interaction references unknown signal {name!r}"
                    )
        object.__setattr__(self, "_index", index)
        weights = np.array([
            self.weights.get(name, DEFAULT_WEIGHTS.get(name, 1.0))
            for name in self.signal_names
        ])
        scales = np.array([
            self.scales.get(name, DEFAULT_SCALES.get(name, 1.0))
            for name in self.signal_names
        ])
        if (scales <= 0).any():
            raise ValueError("signal scales must be positive")
        object.__setattr__(self, "_weights", weights)
        object.__setattr__(self, "_scales", scales)

    def weight_of(self, name: str) -> float:
        """Effective composite weight of one signal."""
        return float(self._weights[self._index[name]])

    def scale_of(self, name: str) -> float:
        """Effective tanh scale of one signal."""
        return float(self._scales[self._index[name]])

    def squash(self, raw: np.ndarray) -> np.ndarray:
        """Per-signal ``tanh(raw / scale)``, shape-preserving."""
        return np.tanh(raw / self._scales[None, :])

    def composite(self, raw: np.ndarray) -> np.ndarray:
        """``(n_coins,)`` composite from ``(n_coins, n_signals)`` raw scores."""
        squashed = self.squash(raw)
        score = squashed @ self._weights
        for interaction in self.interactions:
            both = (
                (squashed[:, self._index[interaction.first]]
                 > interaction.threshold)
                & (squashed[:, self._index[interaction.second]]
                   > interaction.threshold)
            )
            score = score + interaction.bonus * both
        return score
