"""The built-in signal library (~6 pre-pump microstructure signals).

Each signal is a frozen dataclass implementing the :class:`Signal`
protocol with pure vectorized window math over the shared
``(n_coins, 72)`` grids.  Raw scores are unbounded; the
:class:`~repro.signals.scorer.CompositeScorer` squashes and weighs them.

The set follows the pre-pump patterns of the real-time detection
literature (ROADMAP item 3): accumulation-phase run-up and turnover
imbalance, ignition-phase volume surge, volume-price decoupling and
volatility compression, plus cross-window momentum divergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signals.base import EPS


def _mean(grid: np.ndarray, hours: int) -> np.ndarray:
    """Mean of the trailing ``hours`` columns (whole grid when 0)."""
    window = grid if hours == 0 else grid[:, -hours:]
    return window.mean(axis=1)


def _returns(log_close: np.ndarray) -> np.ndarray:
    """Hourly log returns, ``(n_coins, 71)``."""
    return np.diff(log_close, axis=1)


@dataclass(frozen=True)
class VolumeSurge:
    """Recent volume elevated against the coin's own 72 h norm.

    ``log((mean vol over last `recent` h) / (mean vol over 72 h))`` — the
    ignition tell: pumps announce themselves with turnover before price.
    """

    name: str = "volume_surge"
    recent_hours: int = 6

    def compute(self, log_close, volume):
        return np.log(
            (_mean(volume, self.recent_hours) + EPS) / (_mean(volume, 0) + EPS)
        )


@dataclass(frozen=True)
class VolumePriceDecoupling:
    """Volume elevation *not* explained by a price move.

    Volume-surge minus ``price_scale`` × |log-price change| over the same
    recent window: organic rallies move price with volume, accumulation
    and wash-trading move volume while price is pinned.
    """

    name: str = "volume_price_decoupling"
    recent_hours: int = 6
    price_scale: float = 12.0

    def compute(self, log_close, volume):
        surge = np.log(
            (_mean(volume, self.recent_hours) + EPS) / (_mean(volume, 0) + EPS)
        )
        move = np.abs(log_close[:, -1] - log_close[:, -self.recent_hours - 1])
        return surge - self.price_scale * move

@dataclass(frozen=True)
class VolatilityCompression:
    """Recent return volatility compressed below the 72 h baseline.

    ``log(std(returns over 72 h) / std(returns over last `recent` h))`` —
    positive when the book has gone quiet (the pre-ignition squeeze).
    """

    name: str = "volatility_compression"
    recent_hours: int = 12

    def compute(self, log_close, volume):
        returns = _returns(log_close)
        recent = returns[:, -self.recent_hours:].std(axis=1)
        baseline = returns.std(axis=1)
        return np.log((baseline + EPS) / (recent + EPS))


@dataclass(frozen=True)
class PriceRunup:
    """Slow pre-pump accumulation: log-price drift over the long window."""

    name: str = "price_runup"
    window_hours: int = 60

    def compute(self, log_close, volume):
        return log_close[:, -1] - log_close[:, -self.window_hours - 1]


@dataclass(frozen=True)
class TurnoverImbalance:
    """Buy-side turnover dominance over the last day.

    Net signed volume share: volume traded in up-hours minus down-hours,
    normalized by total — a depth/turnover imbalance proxy on hourly
    candles (accumulation buys the book lopsided long before ignition).
    """

    name: str = "turnover_imbalance"
    window_hours: int = 24

    def compute(self, log_close, volume):
        returns = _returns(log_close)[:, -self.window_hours:]
        recent_volume = volume[:, -self.window_hours:]
        signed = np.where(returns > 0.0, recent_volume, -recent_volume)
        return signed.sum(axis=1) / (recent_volume.sum(axis=1) + EPS)


@dataclass(frozen=True)
class MomentumDivergence:
    """Short-horizon momentum pulling away from the long-horizon trend.

    Per-hour momentum over the short window minus per-hour momentum over
    the long window: flat coins that suddenly start climbing score high,
    coins merely continuing an old trend do not.
    """

    name: str = "momentum_divergence"
    short_hours: int = 6
    long_hours: int = 48

    def compute(self, log_close, volume):
        short = (log_close[:, -1] - log_close[:, -self.short_hours - 1]) \
            / self.short_hours
        long = (log_close[:, -1] - log_close[:, -self.long_hours - 1]) \
            / self.long_hours
        return short - long


def default_signals() -> tuple:
    """The standard six-signal battery, in canonical order."""
    return (
        VolumeSurge(),
        VolumePriceDecoupling(),
        VolatilityCompression(),
        PriceRunup(),
        TurnoverImbalance(),
        MomentumDivergence(),
    )


SIGNAL_NAMES = tuple(s.name for s in default_signals())
