"""Pump-history sequence features (§5.1, "sequence" group).

Pumped coins are grouped by channel and ordered chronologically; each
position carries the coin's id plus its stable statistics.  Position 1 is
the temporally **closest** pump (matching Figure 10's ``P1``); sequences
shorter than ``length`` are left-padded with a dedicated PAD coin id and
zero numerics, with a mask distinguishing real positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.sessions import PnDSample
from repro.features.coin import COIN_FEATURE_NAMES, coin_feature_matrix
from repro.simulation.market import MarketSimulator

SEQUENCE_NUMERIC_NAMES = COIN_FEATURE_NAMES  # per-position numeric features
N_SEQUENCE_FEATURES = 1 + len(SEQUENCE_NUMERIC_NAMES)  # + coin_id


@dataclass(frozen=True)
class SequenceFeatures:
    """Fixed-length encoded pump history of one channel at one time."""

    coin_ids: np.ndarray   # (N,) int; PAD id where mask == 0
    numeric: np.ndarray    # (N, K-1) float
    mask: np.ndarray       # (N,) float; 1 for real positions


def pad_coin_id(n_coins: int) -> int:
    """The reserved PAD id (one past the last real coin)."""
    return n_coins


def encode_history(market: MarketSimulator, history: Sequence[PnDSample],
                   length: int) -> SequenceFeatures:
    """Encode a channel's pump history, newest first.

    ``history`` must be chronological (oldest first); the most recent pump
    lands at position 0 of the output, mirroring the paper's ``P1``.
    """
    if length < 1:
        raise ValueError("sequence length must be positive")
    n_coins = market.universe.n_coins
    coin_ids = np.full(length, pad_coin_id(n_coins), dtype=np.int64)
    numeric = np.zeros((length, len(SEQUENCE_NUMERIC_NAMES)))
    mask = np.zeros(length)
    recent = list(history)[-length:][::-1]  # newest first
    if recent:
        ids = np.array([s.coin_id for s in recent], dtype=np.int64)
        coin_ids[: len(recent)] = ids
        mask[: len(recent)] = 1.0
        # Stable stats are evaluated at each pump's own time.
        for i, sample in enumerate(recent):
            numeric[i] = coin_feature_matrix(
                market, np.array([sample.coin_id]), sample.time
            )[0]
    return SequenceFeatures(coin_ids=coin_ids, numeric=numeric, mask=mask)
