"""Pump-history sequence features (§5.1, "sequence" group).

Pumped coins are grouped by channel and ordered chronologically; each
position carries the coin's id plus its stable statistics.  Position 1 is
the temporally **closest** pump (matching Figure 10's ``P1``); sequences
shorter than ``length`` are left-padded with a dedicated PAD coin id and
zero numerics, with a mask distinguishing real positions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.data.sessions import PnDSample
from repro.features.coin import COIN_FEATURE_NAMES, coin_feature_matrix
from repro.sources.base import MarketDataSource
from repro.telemetry import span

SEQUENCE_NUMERIC_NAMES = COIN_FEATURE_NAMES  # per-position numeric features
N_SEQUENCE_FEATURES = 1 + len(SEQUENCE_NUMERIC_NAMES)  # + coin_id


@dataclass(frozen=True)
class SequenceFeatures:
    """Fixed-length encoded pump history of one channel at one time."""

    coin_ids: np.ndarray   # (N,) int; PAD id where mask == 0
    numeric: np.ndarray    # (N, K-1) float
    mask: np.ndarray       # (N,) float; 1 for real positions


def pad_coin_id(n_coins: int) -> int:
    """The reserved PAD id (one past the last real coin)."""
    return n_coins


def encode_history(market: MarketDataSource, history: Sequence[PnDSample],
                   length: int) -> SequenceFeatures:
    """Encode a channel's pump history, newest first.

    ``history`` must be chronological (oldest first); the most recent pump
    lands at position 0 of the output, mirroring the paper's ``P1``.
    """
    if length < 1:
        raise ValueError("sequence length must be positive")
    n_coins = market.universe.n_coins
    coin_ids = np.full(length, pad_coin_id(n_coins), dtype=np.int64)
    numeric = np.zeros((length, len(SEQUENCE_NUMERIC_NAMES)))
    mask = np.zeros(length)
    recent = list(history)[-length:][::-1]  # newest first
    if recent:
        ids = np.array([s.coin_id for s in recent], dtype=np.int64)
        times = np.array([s.time for s in recent], dtype=np.float64)
        coin_ids[: len(recent)] = ids
        mask[: len(recent)] = 1.0
        # Stable stats are evaluated at each pump's own time; one batched
        # query covers the whole history instead of one call per sample.
        numeric[: len(recent)] = coin_feature_matrix(market, ids, times)
    return SequenceFeatures(coin_ids=coin_ids, numeric=numeric, mask=mask)


# Signature of a pump-history lookup: (channel_id, time, length) -> samples
# strictly before ``time``, chronological.  Matches
# :meth:`repro.data.dataset.TargetCoinDataset.history_before`.
HistoryLookup = Callable[[int, float, int], Sequence[PnDSample]]


class SequenceFeatureCache:
    """LRU of encoded channel pump histories keyed by ``(channel_id, time)``.

    Feature assembly, scaler fitting and offline ranking all re-encode the
    same channel history at the same announcement time; the encoding is a
    market query per history sample, so memoizing it turns repeated lookups
    into O(1).  Only valid over an *immutable* history source (the offline
    dataset) — the serving layer, whose per-channel histories grow as
    announcements stream in, bypasses the cache.
    """

    def __init__(self, market: MarketDataSource, history_fn: HistoryLookup,
                 length: int, max_entries: int = 8192):
        if length < 1:
            raise ValueError("sequence length must be positive")
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.market = market
        self.history_fn = history_fn
        self.length = length
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[tuple[int, float], SequenceFeatures]" = OrderedDict()

    def get(self, channel_id: int, time: float) -> SequenceFeatures:
        """Encoded history of ``channel_id`` strictly before ``time``."""
        key = (channel_id, time)
        features = self._store.get(key)
        if features is not None:
            self._store.move_to_end(key)
            self.hits += 1
            return features
        self.misses += 1
        # Only the miss path opens a span: a hit is a dict lookup, and the
        # offline assembly loop calls this hot enough that even a no-op
        # span check per hit would show up.
        with span("sequence.encode", channel_id=channel_id):
            history = self.history_fn(channel_id, time, self.length)
            features = encode_history(self.market, history, self.length)
        self._store[key] = features
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return features
