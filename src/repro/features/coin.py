"""Stable coin features (§5.1): the CoinGecko-style statistics.

The paper collects market cap, price, volume, Alexa rank, Twitter followers
and Reddit subscribers *three days prior* to the pump event, because those
values are stable before the P&D machinery starts moving the market.
"""

from __future__ import annotations

import numpy as np

from repro.sources.base import MarketDataSource

STABLE_LEAD_HOURS = 72  # "three days prior to the pump event"

COIN_FEATURE_NAMES = (
    "log_market_cap",
    "log_alexa_rank",
    "log_reddit_subscribers",
    "log_twitter_followers",
    "log_price_3d",
    "log_volume_3d",
)


def coin_feature_matrix(market: MarketDataSource, coin_ids: np.ndarray,
                        time: float | np.ndarray) -> np.ndarray:
    """Stable statistics for candidate coins at a pump time.

    Returns ``(len(coin_ids), len(COIN_FEATURE_NAMES))``; price and volume
    are taken 72 hours before ``time`` so pre-pump movement cannot leak in.
    ``time`` may be a scalar (one pump event) or an array aligned with
    ``coin_ids`` (batched encoding of histories whose pumps happened at
    different times).
    """
    coin_ids = np.asarray(coin_ids, dtype=np.int64)
    universe = market.universe
    stable_hour = np.broadcast_to(
        np.asarray(time, dtype=np.float64) - STABLE_LEAD_HOURS, coin_ids.shape
    )
    log_price = market.log_close(coin_ids, stable_hour)
    log_volume = np.log(market.hourly_volume(coin_ids, stable_hour) + 1e-12)
    return np.stack(
        [
            np.log(universe.market_cap[coin_ids]),
            np.log(universe.alexa_rank[coin_ids]),
            np.log(universe.reddit_subscribers[coin_ids] + 1.0),
            np.log(universe.twitter_followers[coin_ids] + 1.0),
            log_price,
            log_volume,
        ],
        axis=1,
    )
