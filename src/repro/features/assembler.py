"""FeatureAssembler — model-ready tensors for the target-coin task.

Assembles, for every example of a :class:`~repro.data.dataset.TargetCoinDataset`:

* ``channel_idx`` — dense channel index (embedding input);
* ``coin_idx`` — candidate coin id (embedding input, PAD-aware);
* ``numeric`` — channel + coin-stable + market-movement features,
  standardized with train-split statistics only;
* ``seq_coin_idx`` / ``seq_numeric`` / ``seq_mask`` — the channel's encoded
  pump history (identical across the candidates of one ranking list, so it
  is computed once per list);
* ``label``, ``list_id``, ``split``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import TargetCoinDataset, TargetCoinExample
from repro.features.coin import COIN_FEATURE_NAMES, coin_feature_matrix
from repro.features.market_windows import MARKET_FEATURE_NAMES, market_feature_matrix
from repro.features.sequence import (
    SEQUENCE_NUMERIC_NAMES,
    SequenceFeatureCache,
    pad_coin_id,
)
from repro.ml.scaling import StandardScaler
from repro.sources.base import as_source

CHANNEL_FEATURE_NAMES = ("log_subscribers",)

NUMERIC_FEATURE_NAMES = CHANNEL_FEATURE_NAMES + COIN_FEATURE_NAMES + MARKET_FEATURE_NAMES


@dataclass
class AssembledSplit:
    """Arrays of one split, aligned row-by-row."""

    channel_idx: np.ndarray    # (B,)
    coin_idx: np.ndarray       # (B,)
    numeric: np.ndarray        # (B, D)
    seq_coin_idx: np.ndarray   # (B, N)
    seq_numeric: np.ndarray    # (B, N, K-1)
    seq_mask: np.ndarray       # (B, N)
    label: np.ndarray          # (B,)
    list_id: np.ndarray        # (B,)

    def __len__(self) -> int:
        return len(self.label)

    def ranking_lists(self, scores: np.ndarray) -> list[np.ndarray]:
        """Group (score, label) pairs by list for HR@k evaluation."""
        out = []
        for list_id in np.unique(self.list_id):
            mask = self.list_id == list_id
            out.append(np.stack([scores[mask], self.label[mask]], axis=1))
        return out


@dataclass
class AssembledDataset:
    """All three splits plus vocabulary sizes for embedding layers."""

    train: AssembledSplit
    validation: AssembledSplit
    test: AssembledSplit
    n_channels: int
    n_coin_ids: int       # includes the PAD id
    sequence_length: int
    channel_index: dict[int, int] = field(default_factory=dict)

    def split(self, name: str) -> AssembledSplit:
        if name not in ("train", "validation", "test"):
            raise ValueError(f"unknown split {name!r}")
        return getattr(self, name)


class FeatureAssembler:
    """Build :class:`AssembledDataset` from a data source + extracted dataset.

    ``source`` is any :class:`repro.sources.DataSource` backend (or a bare
    synthetic world, coerced for backward compatibility).

    ``signal_engine`` optionally appends market-microstructure signal
    channels (squashed per-signal scores plus the composite; see
    :mod:`repro.signals`) to every example's numeric block.  It is duck
    typed — anything with ``feature_names`` and
    ``feature_block(coins, time)`` works — so this module never imports
    the signals package (which sits above the feature layer).
    """

    def __init__(self, source, dataset: TargetCoinDataset,
                 signal_engine=None):
        self.source = as_source(source)
        self.dataset = dataset
        self.signal_engine = signal_engine
        self.sequence_length = self.source.sequence_length
        # Channel vocabulary: every channel appearing anywhere in the data.
        channel_ids = sorted({e.channel_id for e in dataset.examples})
        self.channel_index = {cid: i for i, cid in enumerate(channel_ids)}
        self.subscribers = self.source.channels.subscriber_counts()
        # Encoded pump histories, shared with the predictor built on top so
        # scaler fitting and offline ranking reuse assembly-time encodings.
        self.sequence_cache = SequenceFeatureCache(
            self.source.market, dataset.history_before, self.sequence_length
        )

    @property
    def numeric_feature_names(self) -> tuple[str, ...]:
        """Numeric column names, signal channels (if any) last."""
        names = NUMERIC_FEATURE_NAMES
        if self.signal_engine is not None:
            names = names + tuple(self.signal_engine.feature_names)
        return names

    # -- assembly -------------------------------------------------------------

    def assemble(self) -> AssembledDataset:
        examples = self.dataset.examples
        market = self.source.market
        n = len(examples)
        n_numeric = len(self.numeric_feature_names)
        channel_idx = np.zeros(n, dtype=np.int64)
        coin_idx = np.zeros(n, dtype=np.int64)
        numeric = np.zeros((n, n_numeric))
        seq_len = self.sequence_length
        seq_coin_idx = np.zeros((n, seq_len), dtype=np.int64)
        seq_numeric = np.zeros((n, seq_len, len(SEQUENCE_NUMERIC_NAMES)))
        seq_mask = np.zeros((n, seq_len))
        label = np.array([e.label for e in examples], dtype=np.float64)
        list_id = np.array([e.list_id for e in examples], dtype=np.int64)
        split_name = np.array([e.split for e in examples])
        all_coins = np.fromiter(
            (e.coin_id for e in examples), dtype=np.int64, count=n
        )

        # Group rows by ranking list: one market/sequence computation and one
        # set of batched array writes per list (no per-row Python iteration).
        order = np.argsort(list_id, kind="mergesort")
        boundaries = np.flatnonzero(np.diff(list_id[order])) + 1
        starts = np.concatenate(([0], boundaries)) if n else np.empty(0, np.int64)
        stops = np.concatenate((boundaries, [n])) if n else np.empty(0, np.int64)
        for start, stop in zip(starts, stops):
            rows = order[start:stop]
            self._fill_list(rows, examples, market, all_coins, channel_idx,
                            coin_idx, numeric, seq_coin_idx, seq_numeric,
                            seq_mask)

        # Standardize numerics (and sequence numerics) on train stats only.
        train_mask = split_name == "train"
        scaler = StandardScaler().fit(numeric[train_mask])
        numeric = scaler.transform(numeric)
        flat = seq_numeric.reshape(-1, seq_numeric.shape[-1])
        seq_scaler = StandardScaler().fit(
            seq_numeric[train_mask].reshape(-1, seq_numeric.shape[-1])
        )
        seq_numeric = seq_scaler.transform(flat).reshape(seq_numeric.shape)
        seq_numeric *= seq_mask[:, :, None]  # keep PAD rows at exact zero

        def build(mask: np.ndarray) -> AssembledSplit:
            return AssembledSplit(
                channel_idx=channel_idx[mask],
                coin_idx=coin_idx[mask],
                numeric=numeric[mask],
                seq_coin_idx=seq_coin_idx[mask],
                seq_numeric=seq_numeric[mask],
                seq_mask=seq_mask[mask],
                label=label[mask],
                list_id=list_id[mask],
            )

        return AssembledDataset(
            train=build(train_mask),
            validation=build(split_name == "validation"),
            test=build(split_name == "test"),
            n_channels=len(self.channel_index),
            n_coin_ids=pad_coin_id(self.source.coins.n_coins) + 1,
            sequence_length=seq_len,
            channel_index=dict(self.channel_index),
        )

    def _fill_list(self, rows: np.ndarray, examples: list[TargetCoinExample],
                   market, all_coins, channel_idx, coin_idx, numeric,
                   seq_coin_idx, seq_numeric, seq_mask) -> None:
        """Fill feature rows for one ranking list (shared channel + time).

        All writes are list-level batched assignments; the sequence encoding
        (identical across the list's candidates) broadcasts over the rows.
        """
        first = examples[rows[0]]
        time = first.time
        channel_id = first.channel_id
        coins = all_coins[rows]

        channel_feature = np.log(self.subscribers.get(channel_id, 1000) + 1.0)
        coin_features = coin_feature_matrix(market, coins, time)
        movement = market_feature_matrix(market, coins, time)
        parts = [np.full((len(rows), 1), channel_feature), coin_features,
                 movement]
        if self.signal_engine is not None:
            parts.append(self.signal_engine.feature_block(coins, time))
        block = np.concatenate(parts, axis=1)
        sequence = self.sequence_cache.get(channel_id, time)
        channel_idx[rows] = self.channel_index[channel_id]
        coin_idx[rows] = coins
        numeric[rows] = block
        seq_coin_idx[rows] = sequence.coin_ids
        seq_numeric[rows] = sequence.numeric
        seq_mask[rows] = sequence.mask
