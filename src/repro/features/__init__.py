"""repro.features — feature generation for target coin prediction (§5.1)."""

from repro.features.coin import (
    COIN_FEATURE_NAMES,
    STABLE_LEAD_HOURS,
    coin_feature_matrix,
)
from repro.features.market_windows import (
    MARKET_FEATURE_NAMES,
    WINDOW_HOURS,
    market_feature_matrix,
)
from repro.features.sequence import (
    N_SEQUENCE_FEATURES,
    SEQUENCE_NUMERIC_NAMES,
    SequenceFeatureCache,
    SequenceFeatures,
    encode_history,
    pad_coin_id,
)
from repro.features.assembler import (
    AssembledDataset,
    AssembledSplit,
    CHANNEL_FEATURE_NAMES,
    FeatureAssembler,
    NUMERIC_FEATURE_NAMES,
)

__all__ = [
    "COIN_FEATURE_NAMES",
    "STABLE_LEAD_HOURS",
    "coin_feature_matrix",
    "MARKET_FEATURE_NAMES",
    "WINDOW_HOURS",
    "market_feature_matrix",
    "SEQUENCE_NUMERIC_NAMES",
    "N_SEQUENCE_FEATURES",
    "SequenceFeatures",
    "SequenceFeatureCache",
    "encode_history",
    "pad_coin_id",
    "FeatureAssembler",
    "AssembledDataset",
    "AssembledSplit",
    "NUMERIC_FEATURE_NAMES",
    "CHANNEL_FEATURE_NAMES",
]
