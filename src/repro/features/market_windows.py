"""Market-movement features (§5.1): the pre-pump precursor signals.

For each candidate coin the paper computes price/return/volume/trade-count
statistics inside windows ``(x+1, 1]`` hours before the scheduled pump time
for ``x in (1, 3, 6, 12, 24, 48, 60, 72)`` — exactly the windows Figure 4(c)
shows to be informative (insiders accumulate from ~60h out).
"""

from __future__ import annotations

import numpy as np

from repro.sources.base import MarketDataSource

WINDOW_HOURS = (1, 3, 6, 12, 24, 48, 60, 72)

MARKET_FEATURE_NAMES = tuple(
    f"return_{x}h" for x in WINDOW_HOURS
) + tuple(
    f"log_volume_ratio_{x}h" for x in (1, 3, 6, 12, 24)
) + ("log_trade_count_24h",)


def market_feature_matrix(market: MarketDataSource, coin_ids: np.ndarray,
                          time: float) -> np.ndarray:
    """Pre-pump movement features for candidates at a pump time.

    Volume ratios compare each short window to the 72h window, capturing
    *abnormal* recent activity rather than absolute (cap-driven) levels.

    All windows share two batched market queries: one log-price grid over
    the window end/start hours and one 72-column hourly-volume grid whose
    prefix means reproduce every ``window_volume`` span exactly — the same
    numbers as per-window queries at a fraction of the cost.
    """
    coin_ids = np.asarray(coin_ids, dtype=np.int64)
    # return = p(t-1) / p(t-x-1) - 1 for every window x, from one price grid.
    hours = np.array([time - 1.0] + [time - x - 1.0 for x in WINDOW_HOURS])
    logs = market.log_close(coin_ids[:, None], hours[None, :])
    p_end = logs[:, 0]
    columns = [
        np.exp(p_end - logs[:, 1 + i]) - 1.0 for i in range(len(WINDOW_HOURS))
    ]
    volumes = market.window_volume_profile(coin_ids, time, 72)
    base_volume = volumes.mean(axis=1)
    for x in (1, 3, 6, 12, 24):
        ratio = volumes[:, :x].mean(axis=1) / np.maximum(base_volume, 1e-12)
        columns.append(np.log(ratio + 1e-9))
    trade_count = market.trade_count_from_volume(
        volumes[:, :24].mean(axis=1), coin_ids
    )
    columns.append(np.log(trade_count + 1.0))
    return np.stack(columns, axis=1)
