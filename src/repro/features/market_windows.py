"""Market-movement features (§5.1): the pre-pump precursor signals.

For each candidate coin the paper computes price/return/volume/trade-count
statistics inside windows ``(x+1, 1]`` hours before the scheduled pump time
for ``x in (1, 3, 6, 12, 24, 48, 60, 72)`` — exactly the windows Figure 4(c)
shows to be informative (insiders accumulate from ~60h out).
"""

from __future__ import annotations

import numpy as np

from repro.simulation.market import MarketSimulator

WINDOW_HOURS = (1, 3, 6, 12, 24, 48, 60, 72)

MARKET_FEATURE_NAMES = tuple(
    f"return_{x}h" for x in WINDOW_HOURS
) + tuple(
    f"log_volume_ratio_{x}h" for x in (1, 3, 6, 12, 24)
) + ("log_trade_count_24h",)


def market_feature_matrix(market: MarketSimulator, coin_ids: np.ndarray,
                          time: float) -> np.ndarray:
    """Pre-pump movement features for candidates at a pump time.

    Volume ratios compare each short window to the 72h window, capturing
    *abnormal* recent activity rather than absolute (cap-driven) levels.
    """
    coin_ids = np.asarray(coin_ids, dtype=np.int64)
    columns = [
        market.window_return(coin_ids, time, x) for x in WINDOW_HOURS
    ]
    base_volume = market.window_volume(coin_ids, time, 72)
    for x in (1, 3, 6, 12, 24):
        ratio = market.window_volume(coin_ids, time, x) / np.maximum(
            base_volume, 1e-12
        )
        columns.append(np.log(ratio + 1e-9))
    columns.append(np.log(market.window_trade_count(coin_ids, time, 24) + 1.0))
    return np.stack(columns, axis=1)
