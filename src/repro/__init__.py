"""repro — reproduction of "Sequence-Based Target Coin Prediction for
Cryptocurrency Pump-and-Dump" (Hu et al., SIGMOD 2023).

Subpackages
-----------
``repro.nn``
    Numpy autograd framework (Tensor, layers, RNNs, TCN, positional
    attention, optimizers) — the PyTorch substitute.
``repro.ml``
    Classic ML from first principles (LR, RF, TF-IDF, mean encoding,
    metrics) — the scikit-learn substitute.
``repro.text``
    Tokenization, word2vec (SkipGram/CBoW), lexicon sentiment, keyword
    filtering — the gensim/VADER substitute.
``repro.simulation``
    The synthetic world: coins, markets, channels, events, messages — the
    Telegram/Binance/CoinGecko substitute.
``repro.sources``
    The data-plane abstraction: backend protocols, the synthetic-world
    adapter, the file-backed dump loader and ``repro ingest``.
``repro.data``
    The §3 data-collection pipeline: exploration, detection, sessions,
    dataset construction.
``repro.features``
    §5.1 feature generation.
``repro.core``
    §5-§6: SNN, baselines, training, HR@k evaluation, cold-start fix.
``repro.registry``
    Model lifecycle: schema-versioned predictor artifacts and the
    versioned model registry (train once, serve anywhere).
``repro.serving``
    Real-time streaming prediction service over the trained predictor.
``repro.gateway``
    Versioned HTTP/JSON serving API over the prediction service and the
    model registry, plus the Python client SDK.
``repro.forecasting``
    §7: sentiment-enhanced BTC price forecasting.
``repro.analysis``
    §4: observational studies and figure data.

Quickstart
----------
>>> from repro.simulation import SyntheticWorld
>>> from repro.data import collect
>>> world = SyntheticWorld.generate()          # doctest: +SKIP
>>> result = collect(world)                    # doctest: +SKIP
>>> result.table2()                            # doctest: +SKIP
"""

__version__ = "1.0.0"

from repro.utils.config import ReproConfig, Scale, get_scale

__all__ = ["ReproConfig", "Scale", "get_scale", "__version__"]
