"""Experiment configuration and scale presets.

Experiments run at two scales:

* ``small`` (default) — a scaled-down synthetic world so the full test and
  benchmark suite completes in minutes on a laptop.
* ``paper`` — the paper's reported magnitudes (709 events, 108 pump
  channels, 4,000 coins, ...).

Select with the ``REPRO_SCALE`` environment variable or by passing a
:class:`ReproConfig` explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from enum import Enum


class Scale(str, Enum):
    """Named experiment scales."""

    SMALL = "small"
    PAPER = "paper"


def get_scale() -> Scale:
    """Read the requested scale from the ``REPRO_SCALE`` env var."""
    raw = os.environ.get("REPRO_SCALE", "small").strip().lower()
    try:
        return Scale(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_SCALE must be one of {[s.value for s in Scale]}, got {raw!r}"
        ) from exc


@dataclass(frozen=True)
class ReproConfig:
    """All knobs of the synthetic world and the experiment harness.

    The defaults correspond to the ``small`` scale; :meth:`paper` returns the
    paper-sized configuration.  Every module that needs randomness derives it
    from :attr:`seed`, so a config value-equal to another produces an
    identical world.
    """

    seed: int = 7

    # --- coin universe -----------------------------------------------------
    n_coins: int = 1200
    n_exchanges: int = 6
    # --- channels / telegram ----------------------------------------------
    n_pump_channels: int = 64
    n_noise_channels: int = 100
    n_seed_channels: int = 36
    # --- events ------------------------------------------------------------
    n_events: int = 420
    start_time: int = 0  # hours since epoch of the simulated world
    horizon_hours: int = 26_280  # three simulated years
    # --- message generation --------------------------------------------
    chatter_per_channel: int = 160
    # --- dataset construction ----------------------------------------------
    max_negatives_per_event: int = 80
    sequence_length: int = 20
    # --- training ----------------------------------------------------------
    epochs: int = 4
    batch_size: int = 256
    # --- forecasting task ----------------------------------------------
    forecast_hours: int = 5000
    forecast_seq_len: int = 200

    @staticmethod
    def small(seed: int = 7) -> "ReproConfig":
        """The fast configuration used by tests and default benchmarks."""
        return ReproConfig(seed=seed)

    @staticmethod
    def paper(seed: int = 7) -> "ReproConfig":
        """Paper-scale configuration (709 events, 4,000 coins, ...)."""
        return ReproConfig(
            seed=seed,
            n_coins=4000,
            n_exchanges=18,
            n_pump_channels=108,
            n_noise_channels=607,
            n_seed_channels=64,
            n_events=709,
            chatter_per_channel=600,
            max_negatives_per_event=210,
            epochs=6,
            forecast_hours=19_000,
        )

    @staticmethod
    def tiny(seed: int = 7) -> "ReproConfig":
        """A minimal world for unit tests that need end-to-end wiring."""
        return ReproConfig(
            seed=seed,
            n_coins=220,
            n_exchanges=4,
            n_pump_channels=10,
            n_noise_channels=14,
            n_seed_channels=6,
            n_events=48,
            chatter_per_channel=40,
            max_negatives_per_event=25,
            epochs=2,
            forecast_hours=1200,
            forecast_seq_len=64,
        )

    @staticmethod
    def for_scale(scale: Scale | None = None, seed: int = 7) -> "ReproConfig":
        """Resolve a config from an explicit or environment-provided scale."""
        scale = scale or get_scale()
        if scale is Scale.PAPER:
            return ReproConfig.paper(seed=seed)
        return ReproConfig.small(seed=seed)

    def with_(self, **overrides) -> "ReproConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)
