"""Shared utilities: deterministic hashing RNG, configuration, tabulation.

These helpers underpin the simulation substrate.  Everything stochastic in
the repository flows either through an explicit :class:`numpy.random.Generator`
or through the counter-based hash RNG in :mod:`repro.utils.hashrng`, which
makes every experiment reproducible from a single integer seed.
"""

from repro.utils.hashrng import hash_normal, hash_uniform, hash_uint64
from repro.utils.config import ReproConfig, Scale, get_scale
from repro.utils.tabulate import format_table
from repro.utils.timeutil import HOUR, DAY, Clock, hours_between, to_timestamp

__all__ = [
    "hash_uint64",
    "hash_uniform",
    "hash_normal",
    "ReproConfig",
    "Scale",
    "get_scale",
    "format_table",
    "Clock",
    "HOUR",
    "DAY",
    "hours_between",
    "to_timestamp",
]
