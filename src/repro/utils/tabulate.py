"""Minimal fixed-width table formatting for benchmark output.

The benchmark harness prints paper-shaped tables ("paper vs ours") to stdout;
this avoids any dependency on external tabulation packages.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+------
    1 | 2.500
    """
    str_rows = [[_render_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
