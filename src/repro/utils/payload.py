"""Strict readers for JSON-decoded payloads.

Every ``from_payload`` codec (rankings, alerts, announcements, the gateway
wire schema) funnels field access through these helpers so a malformed
payload fails with a pointed ``ValueError`` naming the field and the
expected type — the gateway maps that message verbatim into a 4xx error
envelope, and a wrong type can never flow onward as a wrong score.

``bool`` is deliberately rejected where a number is expected: JSON
``true`` decoding into channel id 1 would be exactly the kind of silent
coercion this layer exists to stop.
"""

from __future__ import annotations

import math

_MISSING = object()


def _get(payload: dict, key: str, default):
    if not isinstance(payload, dict):
        raise ValueError(f"expected an object with field {key!r}")
    value = payload.get(key, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ValueError(f"missing required field {key!r}")
        return default
    return value


def payload_int(payload: dict, key: str, default=_MISSING) -> int:
    """An integer field (floats with integral values are accepted)."""
    value = _get(payload, key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"field {key!r} must be an integer, "
                         f"got {type(value).__name__}")
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(f"field {key!r} must be an integer, got {value!r}")
    return int(value)


def payload_float(payload: dict, key: str, default=_MISSING) -> float:
    """A finite JSON number field."""
    value = _get(payload, key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"field {key!r} must be a number, "
                         f"got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"field {key!r} must be finite, got {value!r}")
    return value


def payload_str(payload: dict, key: str, default=_MISSING) -> str:
    value = _get(payload, key, default)
    if not isinstance(value, str):
        raise ValueError(f"field {key!r} must be a string, "
                         f"got {type(value).__name__}")
    return value


def payload_list(payload: dict, key: str, default=_MISSING) -> list:
    value = _get(payload, key, default)
    if not isinstance(value, list):
        raise ValueError(f"field {key!r} must be an array, "
                         f"got {type(value).__name__}")
    return value


def payload_object(payload: dict, key: str, default=_MISSING) -> dict:
    value = _get(payload, key, default)
    if not isinstance(value, dict):
        raise ValueError(f"field {key!r} must be an object, "
                         f"got {type(value).__name__}")
    return value
