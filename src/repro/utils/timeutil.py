"""Simulated-time helpers.

The synthetic world measures time in integer **hours since the world epoch**
(2019-01-01 00:00 UTC in paper terms).  Minute-resolution series used by the
event study address minutes within an hour.  Keeping time integral makes the
hash-RNG keys exact and the sessionization logic trivial to test.
"""

from __future__ import annotations

from dataclasses import dataclass

HOUR = 1
DAY = 24
WEEK = 7 * DAY
YEAR = 365 * DAY

# Offset (in seconds) of the world epoch from the Unix epoch; used only for
# human-readable rendering of simulated timestamps (2019-01-01T00:00:00Z).
WORLD_EPOCH_UNIX = 1_546_300_800


def to_timestamp(hour: int, minute: int = 0) -> str:
    """Render a simulated hour (+minute) as an ISO-like UTC string.

    >>> to_timestamp(0)
    '2019-01-01 00:00'
    >>> to_timestamp(25, 30)
    '2019-01-02 01:30'
    """
    total_minutes = hour * 60 + minute
    days, rem = divmod(total_minutes, 24 * 60)
    hh, mm = divmod(rem, 60)
    # Simple proleptic calendar rendering: count days from 2019-01-01.
    year, month, day = _civil_from_days(days)
    return f"{year:04d}-{month:02d}-{day:02d} {hh:02d}:{mm:02d}"


def _civil_from_days(days: int) -> tuple[int, int, int]:
    """Convert a day offset from 2019-01-01 to a (year, month, day) triple."""
    # Days since 0000-03-01 for 2019-01-01 is 737364 using Howard Hinnant's
    # civil-from-days algorithm; we inline the standard algorithm.
    z = days + 737_425  # days since 0000-01-01 (era-based algorithm below)
    z -= 60  # shift epoch to March-based year
    era = (z if z >= 0 else z - 146_096) // 146_097
    doe = z - era * 146_097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146_096) // 365
    y = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    d = doy - (153 * mp + 2) // 5 + 1
    m = mp + 3 if mp < 10 else mp - 9
    return (y + (1 if m <= 2 else 0), m, d)


def hours_between(start_hour: int, end_hour: int) -> int:
    """Number of whole hours in ``[start_hour, end_hour)``."""
    return max(0, end_hour - start_hour)


@dataclass
class Clock:
    """A monotone simulated clock, useful for generator-style code."""

    hour: int = 0

    def advance(self, hours: int) -> int:
        """Move the clock forward and return the new time."""
        if hours < 0:
            raise ValueError("clock cannot move backwards")
        self.hour += hours
        return self.hour
