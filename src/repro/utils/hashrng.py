"""Counter-based deterministic random numbers.

The market simulator must be able to answer "what was coin ``c``'s price at
hour ``h``" in O(1), with the *same* answer regardless of which window the
query came from (feature windows overlap across pump events).  A stateful
generator cannot provide that; a counter-based hash can.  We implement a
vectorised SplitMix64-style mixer over ``uint64`` keys: any tuple of integer
arrays is folded into a single key, mixed, and mapped to uniforms or normals.

The mixer is the finalizer from SplitMix64 (Steele et al., "Fast splittable
pseudorandom number generators"), which passes BigCrush as a 64-bit mixer.
"""

from __future__ import annotations

import numpy as np


def _ndtri():
    """Load ``scipy.special.ndtri`` on first use.

    Only :func:`hash_normal` needs the inverse normal CDF; the uniform
    and integer hashes (which the serving stack's cache keys use) stay
    scipy-free.
    """
    try:
        from scipy.special import ndtri
    except ImportError as exc:
        raise ImportError(
            "hash_normal requires scipy (scipy.special.ndtri) for the "
            "inverse normal CDF; install scipy or use hash_uniform"
        ) from exc
    return ndtri


_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SHIFT30 = np.uint64(30)
_SHIFT27 = np.uint64(27)
_SHIFT31 = np.uint64(31)
# 2**-53, used to map the high 53 bits of a uint64 to a double in [0, 1).
_INV_2_53 = float(2.0**-53)
_SHIFT11 = np.uint64(11)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Apply the SplitMix64 finalizer to a uint64 array (wrapping arithmetic)."""
    x = (x + _GOLDEN).astype(np.uint64)
    x = (x ^ (x >> _SHIFT30)) * _MIX1
    x = (x ^ (x >> _SHIFT27)) * _MIX2
    return x ^ (x >> _SHIFT31)


def hash_uint64(*keys) -> np.ndarray:
    """Hash integer arrays (broadcast together) into uniform uint64 values.

    Each ``key`` may be a scalar or array of integers; they are broadcast to a
    common shape and folded sequentially through the mixer, so every distinct
    key tuple yields an independent-looking 64-bit value.

    >>> int(hash_uint64(1, 2, 3)) == int(hash_uint64(1, 2, 3))
    True
    >>> int(hash_uint64(1, 2, 3)) != int(hash_uint64(1, 2, 4))
    True
    """
    if not keys:
        raise ValueError("hash_uint64 requires at least one key")
    arrays = np.broadcast_arrays(*[np.asarray(k) for k in keys])
    with np.errstate(over="ignore"):
        acc = np.zeros(arrays[0].shape, dtype=np.uint64)
        for arr in arrays:
            acc = _splitmix64(acc ^ arr.astype(np.int64).view(np.uint64))
    return acc


def hash_uniform(*keys) -> np.ndarray:
    """Deterministic uniforms in ``[0, 1)`` keyed by integer tuples."""
    bits = hash_uint64(*keys)
    return ((bits >> _SHIFT11).astype(np.float64)) * _INV_2_53


def hash_normal(*keys) -> np.ndarray:
    """Deterministic standard normals keyed by integer tuples.

    Uses the inverse normal CDF so each key consumes exactly one hash,
    keeping streams aligned no matter how windows are sliced.
    """
    u = hash_uniform(*keys)
    # Keep strictly inside (0, 1) so ndtri stays finite.
    u = np.clip(u, 1e-12, 1.0 - 1e-12)
    return _ndtri()(u)


def hash_choice(n: int, *keys) -> np.ndarray:
    """Deterministic integer draws in ``[0, n)`` keyed by integer tuples."""
    if n <= 0:
        raise ValueError("n must be positive")
    return (hash_uint64(*keys) % np.uint64(n)).astype(np.int64)
