"""Alert sinks — where ranked alerts go once the service emits them.

The engine fans every alert out to a list of :class:`AlertSink`s:
:class:`ConsoleAlertSink` prints human-readable lines (the
``examples/live_monitoring.py`` view), :class:`JsonLinesAlertSink` appends
machine-readable records (the downstream-consumer view), and
:class:`CollectingSink` keeps alerts in memory (tests and notebooks).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO

from repro.serving.service import Alert
from repro.utils.timeutil import to_timestamp


class AlertSink:
    """Interface: receive alerts one at a time; ``close()`` when done."""

    def emit(self, alert: Alert) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "AlertSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CollectingSink(AlertSink):
    """Keep every alert in memory (tests, notebooks, post-run analysis)."""

    def __init__(self) -> None:
        self.alerts: list[Alert] = []

    def emit(self, alert: Alert) -> None:
        self.alerts.append(alert)


class ConsoleAlertSink(AlertSink):
    """Human-readable one-line-per-alert output."""

    def __init__(self, top_k: int = 3, file: IO[str] | None = None):
        self.top_k = top_k
        self.file = file or sys.stdout

    def emit(self, alert: Alert) -> None:
        announcement = alert.announcement
        top = ", ".join(
            f"{s.symbol}({s.probability:.2f})" for s in alert.top(self.top_k)
        )
        rank = alert.announced_rank
        marker = "  << HIT" if 0 < rank <= self.top_k else ""
        print(
            f"{to_timestamp(int(announcement.time))}  "
            f"channel={announcement.channel_id}  "
            f"exchange={announcement.exchange_id}/{announcement.pair}  "
            f"top-{self.top_k}: {top}  | released coin ranked "
            f"#{rank}{marker}",
            file=self.file,
        )


class JsonLinesAlertSink(AlertSink):
    """Append one JSON record per alert to a file (or open handle)."""

    def __init__(self, target: str | Path | IO[str], top_k: int = 10):
        self.top_k = top_k
        if isinstance(target, (str, Path)):
            self._file: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False

    def emit(self, alert: Alert) -> None:
        announcement = alert.announcement
        record = {
            "time": announcement.time,
            "timestamp": to_timestamp(int(announcement.time)),
            "channel_id": announcement.channel_id,
            "exchange_id": announcement.exchange_id,
            "pair": announcement.pair,
            "announced_coin_id": announcement.coin_id,
            "announced_rank": alert.announced_rank,
            "latency_ms": round(alert.latency_ms, 3),
            "top": [
                {"coin_id": s.coin_id, "symbol": s.symbol,
                 "probability": round(s.probability, 6)}
                for s in alert.top(self.top_k)
            ],
        }
        self._file.write(json.dumps(record) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()
