"""Memoized feature computation for the prediction service.

Coin-stable and market-movement features are channel-independent: every
announcement on the same exchange at the same (bucketed) time scores the
same candidate matrix.  P&Ds are coordinated — many channels release the
same event within the same hour — so memoizing the block by
``(exchange, time-bucket, candidate-set)`` turns the dominant feature cost
into a dictionary lookup.

``bucket_hours`` quantizes the *feature evaluation time* down to the
bucket's start (never forward — no lookahead).  ``bucket_hours=0`` keeps
exact times, in which case cache hits still occur whenever coordinated
channels announce at identical timestamps.  Quantization is applied whether
or not memoization is enabled, so caching never changes scores.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np

from repro.serving.stats import ServiceStats
from repro.telemetry import span

# ComputeFn(exchange_id, coins, time) -> raw feature block (len(coins), D).
ComputeFn = Callable[[int, np.ndarray, float], np.ndarray]


def bucket_time(time: float, bucket_hours: float) -> float:
    """Quantize a timestamp down to its bucket start (identity when 0)."""
    if bucket_hours <= 0:
        return time
    return float(np.floor(time / bucket_hours) * bucket_hours)


class FeatureCache:
    """LRU-memoized coin/market feature blocks.

    Parameters
    ----------
    compute:
        The underlying feature function (typically the predictor's raw
        coin+market block).
    bucket_hours:
        Time-bucket width for both the cache key and the evaluation time.
    max_entries:
        LRU capacity; ``0`` disables memoization (every call recomputes,
        still at the bucketed time, still counted as a miss).
    stats:
        Hit/miss counters land here.
    """

    def __init__(self, compute: ComputeFn, *, bucket_hours: float = 1.0,
                 max_entries: int = 512, stats: ServiceStats | None = None):
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.compute = compute
        self.bucket_hours = bucket_hours
        self.max_entries = max_entries
        self.stats = stats or ServiceStats()
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def features(self, exchange_id: int, coins: np.ndarray,
                 time: float) -> np.ndarray:
        """The raw feature block for ``coins``, memoized per time bucket.

        The candidate set is part of the key: listings change over time, and
        a stale block for a different coin set must never be returned.
        """
        at = bucket_time(time, self.bucket_hours)
        key = (int(exchange_id), at, coins.tobytes())
        with span("cache.features", candidates=len(coins)) as current:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.cache_hit()
                current.set("hit", True)
                return cached
            self.stats.cache_miss()
            current.set("hit", False)
            block = self.compute(exchange_id, coins, at)
            if self.max_entries:
                self._entries[key] = block
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
            return block
