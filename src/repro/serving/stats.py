"""Service metrics for the streaming engine, backed by the telemetry registry.

One :class:`ServiceStats` instance is threaded through the stream engine,
the online detector/sessionizer, the feature cache and the prediction
service.  Since ISSUE 6 it is a *view over a
:class:`repro.telemetry.MetricsRegistry`*: every counter attribute
(``stats.messages += 1`` keeps working unchanged) is stored in a typed
instrument, so the same numbers ``summary()`` renders are scraped from
``GET /v1/metrics`` in Prometheus text format — the accumulator no longer
dies with the process's stdout.

Latency recordings go two places at once:

* a fixed-bucket ``rank_latency_seconds{model}`` histogram — O(1) memory
  however long the service runs (the old unbounded ``_latencies_ms`` list
  grew forever on a long-running service);
* a bounded reservoir of the most recent :data:`RESERVOIR_CAPACITY`
  values — short runs (every test, every replay) get *exact* p50/p99,
  identical to the old ``np.percentile`` behaviour; beyond the capacity
  the percentiles fall back to the histogram's bucket-interpolated
  estimate.

``summary()`` keeps its exact key set and value semantics.
"""

from __future__ import annotations

import time as _time
from collections import deque
from contextlib import contextmanager

import numpy as np

from repro.telemetry.metrics import MetricsRegistry

#: Exact-percentile window: recordings beyond this many fall back to the
#: histogram estimate.  Bounds a long-running service's memory at O(1).
RESERVOIR_CAPACITY = 4096

#: Scoring-latency bucket bounds in seconds (sub-ms cache hits through
#: multi-second cold batches).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _CounterAttr:
    """A ``ServiceStats`` attribute stored in a registry counter.

    Reads return ints (as before); writes translate into counter deltas so
    ``stats.messages += 1`` and the legacy ``stats.messages = 0`` both
    keep working while the registry sees every change.
    """

    def __set_name__(self, owner, name: str):
        self._attr = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return int(obj._counters[self._attr].value())

    def __set__(self, obj, value) -> None:
        counter = obj._counters[self._attr]
        delta = float(value) - counter.value()
        if delta >= 0:
            counter.inc(delta)
        else:
            # Legacy direct assignment below the current value (e.g. a
            # reset); monotonic scrapes are the caller's concern then.
            counter.force_set(float(value))


class ServiceStats:
    """Operational metrics of one serving run, recorded into a registry.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` instruments live in.  Defaults to a
        private registry so two services in one process never merge
        counters; the gateway exposes it via ``GET /v1/metrics``.
    """

    messages = _CounterAttr()            # messages consumed from the stream
    pump_messages = _CounterAttr()       # messages the online detector flagged
    sessions_closed = _CounterAttr()     # 24h-gap sessions completed
    announcements = _CounterAttr()       # resolvable coin releases seen
    duplicate_releases = _CounterAttr()  # repeat releases within one session
    alerts = _CounterAttr()              # ranked alerts emitted
    unknown_channels = _CounterAttr()    # announcements from untrained channels
    no_candidates = _CounterAttr()       # announcements with no listed coins
    forward_passes = _CounterAttr()      # model invocations (micro-batches)
    scored_rows = _CounterAttr()         # candidate rows pushed through model

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        simple = {
            "messages": "Messages consumed from the stream",
            "pump_messages": "Messages the online detector flagged",
            "sessions_closed": "24h-gap sessions completed",
            "announcements": "Resolvable coin releases seen",
            "duplicate_releases": "Repeat releases within one session",
            "alerts": "Ranked alerts emitted",
            "unknown_channels": "Announcements from untrained channels",
            "no_candidates": "Announcements with no listed coins",
            "forward_passes": "Model invocations (micro-batches)",
            "scored_rows": "Candidate rows pushed through the model",
        }
        # `.labels()` with no labels binds the single unlabelled child, so
        # every entry exposes the same bound API (inc/value/force_set).
        self._counters = {
            name: self.registry.counter(f"service_{name}_total", help).labels()
            for name, help in simple.items()
        }
        lookups = self.registry.counter(
            "service_cache_lookups_total",
            "Feature-cache lookups by result", ("result",),
        )
        self._counters["cache_hits"] = lookups.labels(result="hit")
        self._counters["cache_misses"] = lookups.labels(result="miss")
        self._latency = self.registry.histogram(
            "rank_latency_seconds",
            "Per-announcement scoring latency (share of its micro-batch)",
            ("model",), buckets=LATENCY_BUCKETS,
        )
        self._wall = self.registry.gauge(
            "service_wall_seconds", "Accumulated replay wall-clock time",
        )
        self.registry.gauge_fn(
            "service_cache_hit_ratio",
            "Feature-cache hit rate over the run", self.cache_hit_rate,
        )
        # Exact-percentile window over the most recent recordings (ms).
        self._reservoir: deque[float] = deque(maxlen=RESERVOIR_CAPACITY)
        self._latency_count = 0

    # Registered like the others so `stats.cache_hits += 1` still works,
    # but they share one labelled counter (`result="hit"/"miss"`).
    cache_hits = _CounterAttr()
    cache_misses = _CounterAttr()

    # -- recording -----------------------------------------------------------

    def cache_hit(self) -> None:
        self._counters["cache_hits"].inc()

    def cache_miss(self) -> None:
        self._counters["cache_misses"].inc()

    def record_latency(self, milliseconds: float, model: str = "") -> None:
        """One announcement's scoring latency (share of its micro-batch).

        ``model`` labels the Prometheus series (the serving layer passes
        the ranker class name); the reservoir that backs exact short-run
        percentiles is model-agnostic, matching the old flat list.
        """
        value = float(milliseconds)
        self._latency.labels(model=model).observe(value / 1000.0)
        self._reservoir.append(value)
        self._latency_count += 1

    @contextmanager
    def timed_run(self):
        """Accumulate wall-clock time of the replay loop (for throughput)."""
        start = _time.perf_counter()
        try:
            yield self
        finally:
            self._wall.inc(_time.perf_counter() - start)

    # -- derived metrics -----------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        return self._wall.value

    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def latency_ms(self, percentile: float) -> float:
        """Scoring-latency percentile in milliseconds (0 when no alerts).

        Exact (``np.percentile`` over every recording) while the run fits
        the reservoir; a histogram-interpolated estimate on longer runs.
        """
        if not self._latency_count:
            return 0.0
        if self._latency_count <= RESERVOIR_CAPACITY:
            return float(np.percentile(list(self._reservoir), percentile))
        return self._latency.quantile(percentile / 100.0) * 1000.0

    def throughput(self) -> float:
        """Messages consumed per wall-clock second of replay."""
        wall = self._wall.value
        if wall <= 0:
            return 0.0
        return self.messages / wall

    def mean_batch_size(self) -> float:
        if not self.forward_passes:
            return 0.0
        return self.alerts / self.forward_passes

    def restore(self, summary: dict) -> None:
        """Adopt the counter values of a persisted :meth:`summary`.

        Rehydration (see :mod:`repro.store.rehydrate`) boots a fresh
        service and then replays a stats snapshot taken by the previous
        process, so ``repro history``/``/v1/stats`` keep counting from
        where the crashed run stopped instead of from zero.  Only plain
        counters restore; derived values (percentiles, ratios, wall
        clock) are recomputed live and start over.
        """
        for name in self._counters:
            value = summary.get(name)
            if value is None:
                continue
            # Descriptor assignment routes through the registry counter.
            setattr(self, name, int(value))

    def summary(self) -> dict[str, float]:
        """All derived metrics in one flat dict (CLI/dashboard payload)."""
        return {
            "messages": self.messages,
            "pump_messages": self.pump_messages,
            "sessions_closed": self.sessions_closed,
            "announcements": self.announcements,
            "duplicate_releases": self.duplicate_releases,
            "alerts": self.alerts,
            "unknown_channels": self.unknown_channels,
            "no_candidates": self.no_candidates,
            "forward_passes": self.forward_passes,
            "scored_rows": self.scored_rows,
            "mean_batch_size": round(self.mean_batch_size(), 2),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate(), 3),
            "latency_p50_ms": round(self.latency_ms(50), 3),
            "latency_p99_ms": round(self.latency_ms(99), 3),
            "throughput_msg_per_s": round(self.throughput(), 1),
            "wall_seconds": round(self._wall.value, 3),
        }
