"""Service metrics for the streaming engine.

One :class:`ServiceStats` instance is threaded through the stream engine,
the online detector/sessionizer, the feature cache and the prediction
service, accumulating counters, cache hits and per-announcement scoring
latencies.  ``summary()`` renders everything a deployment dashboard would
plot: throughput, p50/p99 latency and cache hit-rate.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager

import numpy as np


class ServiceStats:
    """Mutable accumulator of one serving run's operational metrics."""

    def __init__(self) -> None:
        self.messages = 0            # messages consumed from the stream
        self.pump_messages = 0       # messages the online detector flagged
        self.sessions_closed = 0     # 24h-gap sessions completed
        self.announcements = 0       # resolvable coin releases seen
        self.duplicate_releases = 0  # repeat releases within one session
        self.alerts = 0              # ranked alerts emitted
        self.unknown_channels = 0    # announcements from untrained channels
        self.no_candidates = 0       # announcements with no listed coins
        self.forward_passes = 0      # model invocations (micro-batches)
        self.scored_rows = 0         # candidate rows pushed through the model
        self.cache_hits = 0
        self.cache_misses = 0
        self._latencies_ms: list[float] = []
        self._wall_seconds = 0.0

    # -- recording -----------------------------------------------------------

    def cache_hit(self) -> None:
        self.cache_hits += 1

    def cache_miss(self) -> None:
        self.cache_misses += 1

    def record_latency(self, milliseconds: float) -> None:
        """One announcement's scoring latency (share of its micro-batch)."""
        self._latencies_ms.append(float(milliseconds))

    @contextmanager
    def timed_run(self):
        """Accumulate wall-clock time of the replay loop (for throughput)."""
        start = _time.perf_counter()
        try:
            yield self
        finally:
            self._wall_seconds += _time.perf_counter() - start

    # -- derived metrics -----------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        return self._wall_seconds

    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def latency_ms(self, percentile: float) -> float:
        """Scoring-latency percentile in milliseconds (0 when no alerts)."""
        if not self._latencies_ms:
            return 0.0
        return float(np.percentile(self._latencies_ms, percentile))

    def throughput(self) -> float:
        """Messages consumed per wall-clock second of replay."""
        if self._wall_seconds <= 0:
            return 0.0
        return self.messages / self._wall_seconds

    def mean_batch_size(self) -> float:
        if not self.forward_passes:
            return 0.0
        return self.alerts / self.forward_passes

    def summary(self) -> dict[str, float]:
        """All derived metrics in one flat dict (CLI/dashboard payload)."""
        return {
            "messages": self.messages,
            "pump_messages": self.pump_messages,
            "sessions_closed": self.sessions_closed,
            "announcements": self.announcements,
            "duplicate_releases": self.duplicate_releases,
            "alerts": self.alerts,
            "unknown_channels": self.unknown_channels,
            "no_candidates": self.no_candidates,
            "forward_passes": self.forward_passes,
            "scored_rows": self.scored_rows,
            "mean_batch_size": round(self.mean_batch_size(), 2),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate(), 3),
            "latency_p50_ms": round(self.latency_ms(50), 3),
            "latency_p99_ms": round(self.latency_ms(99), 3),
            "throughput_msg_per_s": round(self.throughput(), 1),
            "wall_seconds": round(self._wall_seconds, 3),
        }
