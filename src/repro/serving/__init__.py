"""repro.serving — real-time streaming prediction service.

Turns the offline batch pipeline into an incremental, event-driven
service: messages stream in timestamp order, pump-message detection and
24h-gap sessionization run incrementally per channel, and every resolvable
coin release triggers a cached, micro-batched ranking of all listed coins
— the "one hour before the pump, in real time" deployment the paper's
introduction motivates.

Layers
------
``stream``   — :class:`MessageSource` / :class:`ReplaySource` /
               :class:`MessageStream` (pluggable feeds, ordered replay).
``online``   — :class:`OnlineDetector`, :class:`OnlineSessionizer`,
               :class:`Announcement` (incremental §3.2).
``cache``    — :class:`FeatureCache` (memoized coin/market features per
               exchange × time-bucket).
``service``  — :class:`PredictionService`, :class:`Alert` (history cache,
               micro-batched scoring).
``sinks``    — :class:`AlertSink` and console/JSON-lines/collecting sinks.
``stats``    — :class:`ServiceStats` (latency percentiles, throughput,
               cache hit-rate).
``engine``   — :class:`StreamEngine` plus :func:`build_engine` /
               :func:`replay_test_period` wiring helpers.
"""

from repro.serving.cache import FeatureCache, bucket_time
from repro.serving.engine import (
    EngineResult,
    StreamEngine,
    build_engine,
    replay_test_period,
)
from repro.serving.online import Announcement, OnlineDetector, OnlineSessionizer
from repro.serving.service import Alert, PredictionService
from repro.serving.sinks import (
    AlertSink,
    CollectingSink,
    ConsoleAlertSink,
    JsonLinesAlertSink,
)
from repro.serving.stats import ServiceStats
from repro.serving.stream import MessageSource, MessageStream, ReplaySource

__all__ = [
    "MessageSource", "ReplaySource", "MessageStream",
    "OnlineDetector", "OnlineSessionizer", "Announcement",
    "FeatureCache", "bucket_time",
    "PredictionService", "Alert",
    "AlertSink", "CollectingSink", "ConsoleAlertSink", "JsonLinesAlertSink",
    "ServiceStats",
    "StreamEngine", "EngineResult", "build_engine", "replay_test_period",
]
