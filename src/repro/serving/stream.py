"""Message sources and the timestamp-ordered stream the engine consumes.

A :class:`MessageSource` is anything that yields :class:`Message` objects —
the seam where a live Telegram feed would plug in.  :class:`ReplaySource`
replays an in-memory message list (e.g. a data backend's) in timestamp
order, optionally windowed in time and restricted to a monitored channel
set.  :class:`MessageStream` wraps a source and enforces the engine's one
contract: timestamps never go backwards.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.types import Message


class MessageSource:
    """Interface: an iterable of :class:`Message` in timestamp order."""

    def __iter__(self) -> Iterator[Message]:  # pragma: no cover - interface
        raise NotImplementedError


class ReplaySource(MessageSource):
    """Replay a message list chronologically.

    Parameters
    ----------
    messages:
        Any iterable of messages; sorted internally by ``(time, channel_id,
        message_id)`` so equal-time messages replay deterministically.
    start, stop:
        Half-open replay window ``[start, stop)`` in world hours.
    channel_ids:
        If given, only these channels are replayed (the monitored set — a
        real deployment only reads channels its explorer has joined).
    """

    def __init__(self, messages: Iterable[Message], *,
                 start: float | None = None, stop: float | None = None,
                 channel_ids: Sequence[int] | None = None):
        allowed = set(channel_ids) if channel_ids is not None else None
        kept = [
            m for m in messages
            if (start is None or m.time >= start)
            and (stop is None or m.time < stop)
            and (allowed is None or m.channel_id in allowed)
        ]
        kept.sort(key=lambda m: (m.time, m.channel_id, m.message_id))
        self._messages = kept

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages)


class MessageStream:
    """A validated, countable view over a message source.

    Iterating yields the source's messages while enforcing non-decreasing
    timestamps — the online sessionizer's correctness depends on it — and
    counting what passed through (``consumed``).
    """

    def __init__(self, source: MessageSource):
        self.source = source
        self.consumed = 0

    @classmethod
    def replay(cls, source, *,
               start: float | None = None, stop: float | None = None,
               channel_ids: Sequence[int] | None = None) -> "MessageStream":
        """A stream replaying a data source's (or raw list's) messages.

        ``source`` may be a :class:`repro.sources.DataSource` backend, a
        synthetic world (anything with a ``messages`` feed), or a plain
        message sequence.
        """
        feed = getattr(source, "messages", None)
        if callable(feed):
            messages = feed()          # a DataSource backend
        elif feed is not None:
            messages = feed            # a world-style .messages attribute
        else:
            messages = source          # a raw message sequence
        return cls(ReplaySource(messages, start=start, stop=stop,
                                channel_ids=channel_ids))

    def __iter__(self) -> Iterator[Message]:
        last_time: float | None = None
        for message in self.source:
            if last_time is not None and message.time < last_time:
                raise ValueError(
                    f"stream went backwards in time: {message.time} after "
                    f"{last_time} (message {message.message_id})"
                )
            last_time = message.time
            self.consumed += 1
            yield message
