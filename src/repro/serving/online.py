"""Incremental pump-message detection and sessionization.

The offline pipeline (§3.2) scans the full corpus: filter → classify →
sort → group into 24h-gap sessions → extract samples.  Streaming cannot
re-scan history, so this module maintains the same state *incrementally*:

* :class:`OnlineDetector` applies the fitted keyword filter + classifier to
  one message at a time;
* :class:`OnlineSessionizer` keeps one open session per channel, closing it
  when a message arrives more than ``gap_hours`` after the previous one,
  and parses exchange/pair/release information as messages arrive.

Fed the detected messages in timestamp order, the sessionizer produces
exactly the session partition of :func:`repro.data.sessions.sessionize`
(same strict ``> gap_hours`` boundary); announcements differ from offline
:func:`extract_sample` only in that a streaming system necessarily acts on
the *first* resolvable release of a session — it cannot wait to learn
whether the channel will repost the symbol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.detection import DETECTION_THRESHOLD, PumpMessageDetector
from repro.data.sessions import (
    SESSION_GAP_HOURS,
    PnDSample,
    Session,
    parse_exchange_id,
    parse_pair,
    parse_release_symbol,
)
from repro.serving.stats import ServiceStats
from repro.types import Message
from repro.text import KeywordFilter
from repro.utils.payload import payload_float, payload_int, payload_str


@dataclass(frozen=True)
class Announcement:
    """A resolvable coin release observed on the stream.

    Field-compatible with :class:`PnDSample`; ``sample()`` converts, so the
    serving history cache and the offline dataset speak the same type.

    ``coin_id`` may be ``-1`` — "released coin not (yet) known" — which is
    the normal case for a *prediction* request arriving over the gateway:
    the caller asks which coin will pump before the channel reveals it.
    Sentinel announcements rank normally but are never folded into a
    channel's pump history (see :meth:`PredictionService.observe`).
    """

    channel_id: int
    coin_id: int
    exchange_id: int
    pair: str
    time: float

    def sample(self) -> PnDSample:
        return PnDSample(channel_id=self.channel_id, coin_id=self.coin_id,
                         exchange_id=self.exchange_id, pair=self.pair,
                         time=self.time)

    def event_id(self) -> str:
        """Deterministic identity of this announcement as a stream event.

        Two announcements with identical fields are the *same* event (the
        sessionizer emits at most one announcement per session, so field
        equality cannot conflate distinct releases).  ``repr`` of the
        float keeps the id exact — no two distinct times collide.
        """
        return (f"{self.channel_id}/{self.coin_id}/{self.exchange_id}/"
                f"{self.pair}@{self.time!r}")

    # -- wire codec (shared by the gateway server, client and sinks) --------

    def to_payload(self) -> dict:
        return {"channel_id": self.channel_id, "coin_id": self.coin_id,
                "exchange_id": self.exchange_id, "pair": self.pair,
                "time": self.time}

    @classmethod
    def from_payload(cls, payload: dict) -> "Announcement":
        """Strict decode; raises :class:`ValueError` naming the bad field.

        ``channel_id`` and ``time`` are required; ``coin_id`` defaults to
        the ``-1`` sentinel, ``exchange_id`` to Binance (0) and ``pair``
        to BTC — the same defaults offline sample extraction applies.
        """
        if not isinstance(payload, dict):
            raise ValueError("announcement must be an object")
        return cls(
            channel_id=payload_int(payload, "channel_id"),
            coin_id=payload_int(payload, "coin_id", default=-1),
            exchange_id=payload_int(payload, "exchange_id", default=0),
            pair=payload_str(payload, "pair", default="BTC"),
            time=payload_float(payload, "time"),
        )


class OnlineDetector:
    """Per-message §3.2 detection with a fitted filter + classifier."""

    def __init__(self, keyword_filter: KeywordFilter,
                 detector: PumpMessageDetector,
                 threshold: float = DETECTION_THRESHOLD,
                 stats: ServiceStats | None = None):
        self.keyword_filter = keyword_filter
        self.detector = detector
        self.threshold = threshold
        self.stats = stats or ServiceStats()

    @classmethod
    def from_detection(cls, detection, model: str = "rf",
                       threshold: float = DETECTION_THRESHOLD,
                       stats: ServiceStats | None = None) -> "OnlineDetector":
        """Build from a :class:`DetectionOutcome` that kept its artefacts."""
        if detection.keyword_filter is None or model not in detection.detectors:
            raise ValueError(
                "DetectionOutcome carries no fitted artefacts; re-run "
                "run_detection_pipeline() from this version of the code"
            )
        return cls(detection.keyword_filter, detection.detectors[model],
                   threshold=threshold, stats=stats)

    def is_pump(self, message: Message) -> bool:
        """Classify one message as it arrives (no ground-truth access)."""
        if not self.keyword_filter.matches(message.text):
            return False
        probability = float(self.detector.predict_proba([message.text])[0])
        if probability < self.threshold:
            return False
        self.stats.pump_messages += 1
        return True


@dataclass
class _ChannelState:
    """One channel's open session plus incrementally parsed fields."""

    messages: list[Message]
    exchange_id: int = 0       # default Binance, as in extract_sample
    pair: str = "BTC"
    announced: bool = False    # this session already produced an announcement

    def session(self, channel_id: int) -> Session:
        return Session(channel_id, self.messages)


class OnlineSessionizer:
    """Incremental 24h-gap sessionization over detected pump messages.

    ``add`` returns ``(closed_session, announcement)`` — either may be
    ``None``.  A session closes when its channel's next detected message
    arrives more than ``gap_hours`` later (a gap of *exactly* ``gap_hours``
    keeps the session open, matching the offline boundary); an announcement
    is emitted whenever a message resolves to a known coin symbol, carrying
    the exchange/pair parsed from the session so far.
    """

    def __init__(self, symbols: Sequence[str], exchange_names: Sequence[str],
                 gap_hours: float = SESSION_GAP_HOURS,
                 stats: ServiceStats | None = None):
        if gap_hours <= 0:
            raise ValueError("gap_hours must be positive")
        self.gap_hours = gap_hours
        self.known_symbols = {s: i for i, s in enumerate(symbols)}
        self.exchange_ids = {name: i for i, name in enumerate(exchange_names)}
        self.stats = stats or ServiceStats()
        self._open: dict[int, _ChannelState] = {}

    def add(self, message: Message
            ) -> tuple[Session | None, Announcement | None]:
        """Fold one detected message into its channel's session state."""
        state = self._open.get(message.channel_id)
        closed: Session | None = None
        if state is not None and \
                message.time - state.messages[-1].time > self.gap_hours:
            closed = state.session(message.channel_id)
            self.stats.sessions_closed += 1
            state = None
        if state is None:
            state = _ChannelState(messages=[])
            self._open[message.channel_id] = state
        state.messages.append(message)

        exchange = parse_exchange_id(message.text, self.exchange_ids)
        if exchange is not None:
            state.exchange_id = exchange
        pair = parse_pair(message.text)
        if pair is not None:
            state.pair = pair

        announcement: Announcement | None = None
        coin_id = parse_release_symbol(message.text, self.known_symbols)
        if coin_id is not None:
            if state.announced:
                # Channels repost the release symbol; one session is one
                # P&D, so only the first resolvable release announces.
                self.stats.duplicate_releases += 1
            else:
                state.announced = True
                self.stats.announcements += 1
                announcement = Announcement(
                    channel_id=message.channel_id,
                    coin_id=int(coin_id),
                    exchange_id=state.exchange_id,
                    pair=state.pair,
                    time=message.time,
                )
        return closed, announcement

    def open_session(self, channel_id: int) -> Session | None:
        """The channel's still-open session, if any."""
        state = self._open.get(channel_id)
        return state.session(channel_id) if state else None

    def flush(self) -> list[Session]:
        """Close and return every open session (end of stream)."""
        sessions = [
            state.session(channel_id)
            for channel_id, state in self._open.items()
        ]
        self.stats.sessions_closed += len(sessions)
        self._open.clear()
        sessions.sort(key=lambda s: s.start)
        return sessions
