"""The prediction service: cached, micro-batched target-coin ranking.

Wraps a :class:`TargetCoinPredictor` for streaming use:

* **per-channel history cache** — the channel pump histories that feed the
  sequence features are kept in memory and extended as announcements flow
  in, instead of re-queried from the offline dataset;
* **feature cache** — the coin/market feature matrix is memoized per
  (exchange, time-bucket) via :class:`FeatureCache`;
* **micro-batching** — ``rank_batch`` concatenates N concurrent
  announcements into one model forward pass via
  :meth:`TargetCoinPredictor.rank_many`.

Scores are identical with caching on or off (quantization, when enabled,
applies in both paths), and with ``bucket_hours=0`` identical to the
offline :meth:`TargetCoinPredictor.rank` path.
"""

from __future__ import annotations

import time as _time
import uuid
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.predictor import RankRequest, Ranking, TargetCoinPredictor
from repro.data.sessions import PnDSample
from repro.nn.compile import prewarm
from repro.serving.cache import FeatureCache
from repro.serving.online import Announcement
from repro.serving.stats import ServiceStats
from repro.store.base import EventStore, NullEventStore
from repro.telemetry import span
from repro.utils.payload import payload_float, payload_object

#: In-memory dedup window for observation event ids.  A durable store
#: also enforces uniqueness, so evicting old ids here never readmits a
#: duplicate when one is attached; without a store this bounds memory.
SEEN_EVENTS_CAPACITY = 65536


@dataclass(frozen=True)
class Alert:
    """One ranked alert: the announcement plus the model's candidate list."""

    announcement: Announcement
    ranking: Ranking
    latency_ms: float      # this announcement's share of its micro-batch

    @property
    def announced_rank(self) -> int:
        """1-based rank of the coin the channel eventually released."""
        return self.ranking.rank_of(self.announcement.coin_id)

    def top(self, k: int):
        return self.ranking.top(k)

    # -- wire codec (shared by the gateway server and client) ----------------

    def to_payload(self) -> dict:
        """JSON-safe wire form; ranking probabilities survive bit-for-bit.

        ``announced_rank`` is included for consumers but is derived state:
        :meth:`from_payload` recomputes it from the decoded ranking.
        """
        return {
            "announcement": self.announcement.to_payload(),
            "ranking": self.ranking.to_payload(),
            "latency_ms": self.latency_ms,
            "announced_rank": self.announced_rank,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Alert":
        if not isinstance(payload, dict):
            raise ValueError("alert must be an object")
        return cls(
            announcement=Announcement.from_payload(
                payload_object(payload, "announcement")
            ),
            ranking=Ranking.from_payload(payload_object(payload, "ranking")),
            latency_ms=payload_float(payload, "latency_ms", default=0.0),
        )


class PredictionService:
    """Serve ranked alerts for announcements with caching and batching.

    Parameters
    ----------
    predictor:
        The trained offline predictor being served.
    history_cutoff:
        Seed the per-channel history cache with dataset samples strictly
        before this time (defaults to the validation/test boundary, i.e.
        everything the model legitimately saw).  Streamed announcements
        observed later extend the cache.
    bucket_hours:
        Feature-time quantization (see :mod:`repro.serving.cache`).
    cache_entries:
        Feature-cache LRU capacity; ``0`` disables memoization.
    store:
        An :class:`~repro.store.EventStore` every streamed event is
        appended to as it flows (announcements submitted for ranking,
        the ranked alerts, observed releases).  ``None`` serves from
        memory only, exactly as before.
    """

    def __init__(self, predictor: TargetCoinPredictor, *,
                 history_cutoff: float | None = None,
                 bucket_hours: float = 1.0, cache_entries: int = 512,
                 stats: ServiceStats | None = None,
                 store: EventStore | None = None):
        self.predictor = predictor
        self.store = store if store is not None else NullEventStore()
        self.stats = stats or ServiceStats()
        # Labels the rank_latency_seconds series (and trace attributes).
        self.model_name = type(predictor.model).__name__
        self.bucket_hours = bucket_hours
        self._cache = FeatureCache(
            predictor.coin_market_block, bucket_hours=bucket_hours,
            max_entries=cache_entries, stats=self.stats,
        )
        if history_cutoff is None:
            history_cutoff = predictor.dataset.split_hours[1]
        self.history_cutoff = history_cutoff
        # Trace AND verify the shared no-grad inference plan up front (on a
        # synthetic batch): the streaming engine serves alerts through the
        # same compiled plan batch evaluation uses (see repro.nn.compile),
        # so the first announcement pays neither tracing nor the verify-time
        # eager forward.
        prewarm(predictor.model)
        # Candidate sets resolved by the has_candidates() gate, kept until
        # rank_batch() consumes them so the lookup runs once per alert.
        self._candidates_memo: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        # Observation event ids already folded (value unused) — the fast
        # path of retry/replay dedup; the durable store is the slow path.
        self._seen_events: "OrderedDict[str, None]" = OrderedDict()
        # Store-following mode (worker pools): when enabled, every fold
        # goes through catch_up() in store sequence order, so N workers
        # sharing one event log converge on bit-identical histories.
        self._follow_store = False
        self._store_cursor = 0
        self._history: dict[int, list[PnDSample]] = {}
        for channel_id, samples in predictor.dataset.history.items():
            seeded = [s for s in samples if s.time < history_cutoff - 1e-9]
            if seeded:
                self._history[channel_id] = seeded

    @classmethod
    def from_artifact(cls, artifact, source, dataset,
                      **kwargs) -> "PredictionService":
        """Boot a service from a saved predictor artifact — no training.

        ``artifact`` is a :class:`repro.registry.PredictorArtifact` or a
        path to an artifact directory; ``source``/``dataset`` supply the
        market oracle and channel histories the features read from (any
        :class:`repro.sources.DataSource` backend, not necessarily the
        one the model trained on).  All keyword arguments are forwarded
        to the constructor, so a cold start is one call::

            service = PredictionService.from_artifact(
                "models/snn/v0001", source, collection.dataset
            )
        """
        from repro.core.predictor import TargetCoinPredictor

        predictor = TargetCoinPredictor.from_artifact(artifact, source,
                                                      dataset)
        return cls(predictor, **kwargs)

    # -- state ---------------------------------------------------------------

    def knows_channel(self, channel_id: int) -> bool:
        return self.predictor.knows_channel(channel_id)

    def has_candidates(self, announcement: Announcement) -> bool:
        """True when any eligible coin is listed for this announcement."""
        return len(self._candidates(announcement)) > 0

    def _candidates(self, announcement: Announcement) -> np.ndarray:
        """Eligible coins for an announcement, resolved at most once."""
        key = (announcement.exchange_id, announcement.time)
        coins = self._candidates_memo.get(key)
        if coins is None:
            coins = self.predictor.candidates(*key)
            self._candidates_memo[key] = coins
            while len(self._candidates_memo) > 64:
                self._candidates_memo.popitem(last=False)
        return coins

    def history(self, channel_id: int) -> list[PnDSample]:
        """The channel's cached pump history (chronological)."""
        return list(self._history.get(channel_id, ()))

    def observe(self, announcement: Announcement,
                event_id: str | None = None) -> bool:
        """Fold a served announcement into the channel's history cache.

        Announcements carrying the ``coin_id == -1`` sentinel (a gateway
        prediction request whose released coin is not known yet) are
        ignored: a placeholder coin in the pump history would poison the
        sequence features of every later request on that channel.

        ``event_id`` makes the fold idempotent: an id already folded (in
        memory or in the attached durable store) is skipped, so client
        retries and crash/replay recovery never double-count an event.
        Without one, a fresh unique id is minted and the call always
        folds — the pre-existing semantics of repeated ``observe``.

        Returns ``True`` when the history actually grew.
        """
        if announcement.coin_id < 0:
            return False
        if event_id is None:
            event_id = f"obs:{uuid.uuid4().hex}"
        elif event_id in self._seen_events:
            return False
        if self._follow_store:
            # Append, then fold through the store's global sequence: the
            # fold order every pooled worker sees is the seq order, so
            # histories (and therefore sequence features) converge.
            fresh = self.store.append_observation(announcement, event_id)
            if not fresh:
                self._remember_event(event_id)
            self.catch_up()
            return fresh
        if not self.store.append_observation(announcement, event_id):
            self._remember_event(event_id)
            return False
        self._remember_event(event_id)
        self._history.setdefault(announcement.channel_id, []).append(
            announcement.sample()
        )
        return True

    def adopt_observation(self, announcement: Announcement,
                          event_id: str) -> None:
        """Fold an observation already present in the durable store.

        Rehydration replays the store's observation log through this
        method: it updates the history cache and the dedup window but
        never writes back to the store (``INSERT OR IGNORE`` would
        reject every row it is replaying).
        """
        if event_id in self._seen_events:
            return
        self._remember_event(event_id)
        if announcement.coin_id < 0:
            return
        self._history.setdefault(announcement.channel_id, []).append(
            announcement.sample()
        )

    def enable_store_following(self, cursor: int | None = None) -> None:
        """Treat the attached store as a replication bus (worker pools).

        From here on the service folds observations exclusively through
        :meth:`catch_up`, in store sequence order — including its own
        (its appends get a seq like everyone else's).  ``cursor`` is the
        seq already covered by the in-memory history (rehydration passes
        the last replayed seq); ``None`` means "everything in the store
        right now is already folded".
        """
        self._store_cursor = (self.store.last_observation_seq()
                              if cursor is None else int(cursor))
        self._follow_store = True

    def catch_up(self) -> int:
        """Fold observations appended since the cursor (any writer).

        Idempotent per event id, ordered by store seq; returns how many
        rows were folded.  A no-op outside store-following mode.
        """
        if not self._follow_store:
            return 0
        folded = 0
        for seq, event_id, announcement in \
                self.store.observations_since(self._store_cursor):
            self.adopt_observation(announcement, event_id)
            self._store_cursor = seq
            folded += 1
        return folded

    def _remember_event(self, event_id: str) -> None:
        self._seen_events[event_id] = None
        while len(self._seen_events) > SEEN_EVENTS_CAPACITY:
            self._seen_events.popitem(last=False)

    def seen_snapshot(self) -> list[str]:
        """The dedup window's event ids, oldest first (for hot-swaps)."""
        return list(self._seen_events)

    def restore_seen(self, event_ids: list[str]) -> None:
        """Replace the dedup window with a :meth:`seen_snapshot`."""
        self._seen_events = OrderedDict((event_id, None)
                                        for event_id in event_ids)

    def history_snapshot(self) -> dict[int, list[PnDSample]]:
        """Copy of the full per-channel history cache (for hot-swaps)."""
        return {channel_id: list(samples)
                for channel_id, samples in self._history.items()}

    def restore_history(self,
                        snapshot: dict[int, list[PnDSample]]) -> None:
        """Replace the history cache with a :meth:`history_snapshot`.

        The gateway's ``/v1/models/reload`` builds the replacement service
        off-thread and then carries the serving history across, so a
        hot-swap loses none of the announcements streamed since boot.
        """
        self._history = {channel_id: list(samples)
                         for channel_id, samples in snapshot.items()}

    def _history_before(self, channel_id: int, time: float) -> list[PnDSample]:
        length = self.predictor.assembler.sequence_length
        past = [
            s for s in self._history.get(channel_id, ())
            if s.time < time - 1e-9
        ]
        return past[-length:]

    # -- scoring -------------------------------------------------------------

    def rank_one(self, announcement: Announcement) -> Alert:
        return self.rank_batch([announcement])[0]

    def rank_batch(self, announcements: list[Announcement]) -> list[Alert]:
        """Score a micro-batch of announcements in one forward pass.

        Announcements are folded into the history cache only *after* the
        whole batch is scored, so no announcement sees itself (or a
        same-instant peer) in its own sequence features — matching the
        offline dataset's strict ``history_before`` semantics.
        """
        if not announcements:
            return []
        if self._follow_store:
            # Fold whatever peer workers observed since our last look so
            # this batch scores against the same global history a single
            # process would have.
            self.catch_up()
        for announcement in announcements:
            # Logged before scoring: a crash mid-batch still leaves a
            # durable record of what was asked.
            self.store.append_announcement(announcement)
        started = _time.perf_counter()
        with span("service.rank_batch", batch=len(announcements),
                  model=self.model_name):
            requests = [
                RankRequest(a.channel_id, a.exchange_id, a.time,
                            candidates=self._candidates(a))
                for a in announcements
            ]
            rankings = self.predictor.rank_many(
                requests,
                features_fn=self._cache.features,
                history_fn=self._history_before,
            )
        elapsed_ms = (_time.perf_counter() - started) * 1000.0
        per_announcement = elapsed_ms / len(announcements)
        if any(ranking.scores for ranking in rankings):
            # A batch whose every candidate set was empty never reached
            # the model (see rank_many) — don't claim a forward pass.
            self.stats.forward_passes += 1
        alerts = []
        for announcement, ranking in zip(announcements, rankings):
            self.stats.scored_rows += len(ranking.scores)
            self.stats.alerts += 1
            self.stats.record_latency(per_announcement,
                                      model=self.model_name)
            alerts.append(Alert(announcement=announcement, ranking=ranking,
                                latency_ms=per_announcement))
        for alert in alerts:
            self.store.append_alert(alert)
        for announcement in announcements:
            # The deterministic event id makes the fold idempotent: a
            # retried rank of the same announcement scores again (scores
            # are history-pure) but never double-counts the release.
            self.observe(announcement, event_id=announcement.event_id())
        return alerts
