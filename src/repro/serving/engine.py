"""The stream engine: detector → sessionizer → prediction service → sinks.

:class:`StreamEngine` consumes a :class:`MessageStream` and, message by
message, runs the incremental §3.2 pipeline.  Announcements that land on
the same stream timestamp are micro-batched into one model forward pass —
coordinated P&Ds release across many channels simultaneously, so this is
the common case, not a corner case.

:func:`build_engine` wires an engine from the offline artefacts (data
source, collection, trained predictor); :func:`replay_test_period` is the
one-call deployment simulation used by the CLI, the live-monitoring
example and the end-to-end tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.predictor import TargetCoinPredictor
from repro.data.pipeline import CollectionResult
from repro.serving.online import Announcement, OnlineDetector, OnlineSessionizer
from repro.serving.service import Alert, PredictionService
from repro.serving.sinks import AlertSink
from repro.serving.stats import ServiceStats
from repro.serving.stream import MessageStream
from repro.sources.base import as_source
from repro.telemetry import span

# Two stream timestamps closer than this are "concurrent" for batching.
TIME_EPSILON = 1e-9
_TIME_EPSILON = TIME_EPSILON    # backward-compatible alias


def drive_stream(stream: MessageStream, *, detector: OnlineDetector,
                 sessionizer: OnlineSessionizer, stats: ServiceStats,
                 rank_batch, max_batch: int,
                 sinks: tuple[AlertSink, ...] = (),
                 admit=None) -> tuple[list[Alert], list[Announcement]]:
    """The micro-batching event loop shared by local and remote serving.

    Messages flow through detection and sessionization one at a time;
    announcements landing within :data:`TIME_EPSILON` of each other are
    grouped, and every group is scored through ``rank_batch(batch) ->
    (alerts, skipped)`` in ``max_batch``-sized slices.  ``admit``, when
    given, gates each announcement before it joins a batch (return False
    to skip it).  One loop serves both :class:`StreamEngine` (in-process
    ranking, local gates) and :class:`repro.gateway.RemoteReplay`
    (ranking over HTTP, server-side gates) — the bit-for-bit remote/local
    alert parity rests on them batching identically, so there is exactly
    one implementation to keep correct.
    """
    alerts: list[Alert] = []
    skipped: list[Announcement] = []
    pending: list[Announcement] = []

    def flush() -> None:
        while pending:
            batch, pending[:] = pending[:max_batch], pending[max_batch:]
            batch_alerts, batch_skipped = rank_batch(batch)
            skipped.extend(batch_skipped)
            with span("sink.emit", alerts=len(batch_alerts)):
                for alert in batch_alerts:
                    for sink in sinks:
                        sink.emit(alert)
            alerts.extend(batch_alerts)

    with stats.timed_run():
        for message in stream:
            if pending and message.time > pending[-1].time + TIME_EPSILON:
                flush()
            stats.messages += 1
            if not detector.is_pump(message):
                continue
            _closed, announcement = sessionizer.add(message)
            if announcement is None:
                continue
            if admit is not None and not admit(announcement):
                skipped.append(announcement)
                continue
            pending.append(announcement)
        flush()
        sessionizer.flush()
    return alerts, skipped


@dataclass
class EngineResult:
    """Everything one replay produced."""

    alerts: list[Alert]
    stats: ServiceStats
    # Announcements not served: unknown channel or no listed candidates.
    skipped: list[Announcement] = field(default_factory=list)


class StreamEngine:
    """Event-driven serving loop over a message stream."""

    def __init__(self, detector: OnlineDetector, sessionizer: OnlineSessionizer,
                 service: PredictionService, sinks: tuple[AlertSink, ...] = (),
                 max_batch: int = 64, stats: ServiceStats | None = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.detector = detector
        self.sessionizer = sessionizer
        self.service = service
        self.sinks = tuple(sinks)
        self.max_batch = max_batch
        self.stats = stats or ServiceStats()

    def _admit(self, announcement: Announcement) -> bool:
        """Gate an announcement before it joins a micro-batch."""
        if not self.service.knows_channel(announcement.channel_id):
            self.stats.unknown_channels += 1
            return False
        if not self.service.has_candidates(announcement):
            # An always-on loop must outlive odd announcements
            # (e.g. an exchange with nothing listed yet).
            self.stats.no_candidates += 1
            return False
        return True

    def run(self, stream: MessageStream) -> EngineResult:
        """Replay the stream to exhaustion, emitting alerts along the way."""
        alerts, skipped = drive_stream(
            stream, detector=self.detector, sessionizer=self.sessionizer,
            stats=self.stats, max_batch=self.max_batch, sinks=self.sinks,
            admit=self._admit,
            rank_batch=lambda batch: (self.service.rank_batch(batch), []),
        )
        return EngineResult(alerts=alerts, stats=self.stats, skipped=skipped)


def build_engine(source, collection: CollectionResult,
                 predictor, *,
                 sinks: tuple[AlertSink, ...] = (), bucket_hours: float = 1.0,
                 cache_entries: int = 512, max_batch: int = 64,
                 history_cutoff: float | None = None,
                 detector_threshold: float | None = None,
                 store=None) -> StreamEngine:
    """Wire a stream engine from the offline pipeline's artefacts.

    ``source`` is any :class:`repro.sources.DataSource` backend (or a
    bare synthetic world) — the same seam the offline pipeline uses,
    so an engine can serve recorded file dumps as easily as the
    simulator.  ``predictor`` is either an in-memory
    :class:`TargetCoinPredictor` or a saved-artifact reference (a
    :class:`repro.registry.PredictorArtifact` or a path to an artifact
    directory), so a serving process can boot straight from disk without
    retraining.

    One :class:`ServiceStats` instance is shared by every component, so the
    resulting engine's ``stats`` reflects the whole serving path.
    """
    source = as_source(source)
    if not isinstance(predictor, TargetCoinPredictor):
        predictor = TargetCoinPredictor.from_artifact(
            predictor, source, collection.dataset
        )
    stats = ServiceStats()
    detector_kwargs = {}
    if detector_threshold is not None:
        detector_kwargs["threshold"] = detector_threshold
    detector = OnlineDetector.from_detection(
        collection.detection, stats=stats, **detector_kwargs
    )
    sessionizer = OnlineSessionizer(
        source.coins.symbols,
        list(source.exchange_names),
        stats=stats,
    )
    service = PredictionService(
        predictor, bucket_hours=bucket_hours, cache_entries=cache_entries,
        history_cutoff=history_cutoff, stats=stats, store=store,
    )
    return StreamEngine(detector, sessionizer, service, sinks=sinks,
                        max_batch=max_batch, stats=stats)


def replay_test_period(source, collection: CollectionResult,
                       predictor, *,
                       sinks: tuple[AlertSink, ...] = (),
                       bucket_hours: float = 1.0, cache_entries: int = 512,
                       max_batch: int = 64, store=None) -> EngineResult:
    """Replay the held-out test period as a live deployment simulation.

    Streams every explored channel's messages from the validation/test
    boundary onwards — the same horizon the offline test split covers, so
    alert quality is directly comparable to Table 5 metrics.  Like
    :func:`build_engine`, ``source`` may be any backend and ``predictor``
    an in-memory predictor or a saved-artifact reference.
    """
    source = as_source(source)
    start = collection.dataset.split_hours[1]
    engine = build_engine(
        source, collection, predictor, sinks=sinks, bucket_hours=bucket_hours,
        cache_entries=cache_entries, max_batch=max_batch,
        history_cutoff=start, store=store,
    )
    stream = MessageStream.replay(
        source, start=start,
        channel_ids=collection.exploration.explored_ids,
    )
    return engine.run(stream)
