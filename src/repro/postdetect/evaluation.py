"""Post-detection evaluation: delay relative to the pump instant.

The paper argues post-detection "fails to meet practical needs, as P&Ds
typically occur rapidly, leaving no time to alert investors."  Here we make
that quantitative: for every simulated event, when does the anomaly
detector first fire relative to the pump minute — and how does that compare
with the price peak (≈2 minutes in) and the one-hour lead the target-coin
task guarantees?
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.postdetect.anomaly import AnomalyDetector
from repro.simulation.market import PUMP_PEAK_MINUTES
from repro.simulation.world import SyntheticWorld


@dataclass
class DelayStudy:
    """Detection delays (minutes after the pump instant) across events."""

    delays: list[float] = field(default_factory=list)
    misses: int = 0
    false_alarm_rate: float = 0.0  # alarms per scanned quiet hour

    @property
    def n_detected(self) -> int:
        return len(self.delays)

    def median_delay(self) -> float:
        if not self.delays:
            return float("nan")
        return float(np.median(self.delays))

    def detected_before_peak(self) -> float:
        """Fraction of detections that fired before the price peak."""
        if not self.delays:
            return 0.0
        return float(np.mean([d < PUMP_PEAK_MINUTES for d in self.delays]))


def evaluate_detector(detector: AnomalyDetector, coin_id: int,
                      pump_time: float, scan_lead_minutes: int = 30,
                      scan_tail_minutes: int = 30) -> float | None:
    """Delay (minutes, relative to pump time) of the first alarm near one
    event; negative = early (pre-pump hikes), None = missed entirely."""
    start_hour = pump_time - scan_lead_minutes / 60.0
    alarm = detector.first_alarm(
        coin_id, start_hour, scan_lead_minutes + scan_tail_minutes
    )
    if alarm is None:
        return None
    return float(alarm.minute - scan_lead_minutes)


def detection_delay_study(world: SyntheticWorld,
                          detector: AnomalyDetector | None = None,
                          max_events: int = 80,
                          quiet_hours: int = 20) -> DelayStudy:
    """Run the detector over events and quiet periods.

    ``false_alarm_rate`` is estimated on randomly chosen quiet (no-event)
    windows so the delay numbers can be read against a noise floor.
    """
    detector = detector or AnomalyDetector(world.market)
    study = DelayStudy()
    events = [
        e for e in world.events.events if e.exchange_id == 0
    ][:max_events]
    for event in events:
        delay = evaluate_detector(detector, event.coin_id, event.time)
        if delay is None:
            study.misses += 1
        else:
            study.delays.append(delay)

    rng = np.random.default_rng(world.config.seed + 777)
    event_coins = {e.coin_id for e in world.events.events}
    quiet_candidates = [
        c for c in range(3, world.coins.n_coins) if c not in event_coins
    ]
    alarms = 0
    for _ in range(quiet_hours):
        coin = int(rng.choice(quiet_candidates))
        hour = float(rng.uniform(500, world.config.horizon_hours - 100))
        alarms += len(detector.scan(coin, hour, 60))
    study.false_alarm_rate = alarms / max(quiet_hours, 1)
    return study
