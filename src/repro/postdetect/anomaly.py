"""Moving-average anomaly detection over OHLCV streams (Kamps-style).

The detector maintains rolling means of price and volume and raises an
anomaly when the short-window estimate exceeds the long-window baseline by
configurable multiples — the classic post-detection recipe.  It operates on
minute bars, exactly the granularity at which real P&D spikes play out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.market import MarketSimulator


@dataclass(frozen=True)
class DetectorConfig:
    """Thresholds of the moving-average detector.

    Defaults follow the spirit of Kamps & Kleinberg: a price spike factor
    over a short window relative to a long baseline, with a corroborating
    volume spike.
    """

    long_window: int = 180       # minutes of baseline history
    short_window: int = 10       # minutes of the spike estimate
    price_factor: float = 1.05   # short/long price ratio to alarm
    volume_factor: float = 3.0   # short/long volume ratio to alarm
    require_both: bool = True    # price AND volume (paper: joint anomalies)


@dataclass(frozen=True)
class AnomalyEvent:
    """A raised alarm: coin plus minute offset within the scanned window."""

    coin_id: int
    minute: int        # offset from the scan start, in minutes
    price_ratio: float
    volume_ratio: float


class AnomalyDetector:
    """Scan per-coin minute series and raise spike alarms."""

    def __init__(self, market: MarketSimulator,
                 config: DetectorConfig | None = None):
        self.market = market
        self.config = config or DetectorConfig()
        if self.config.short_window >= self.config.long_window:
            raise ValueError("short_window must be below long_window")

    def _rolling_mean(self, values: np.ndarray, window: int) -> np.ndarray:
        csum = np.concatenate([[0.0], np.cumsum(values)])
        out = np.full(len(values), np.nan)
        out[window - 1:] = (csum[window:] - csum[:-window]) / window
        return out

    def scan(self, coin_id: int, start_hour: float,
             duration_minutes: int) -> list[AnomalyEvent]:
        """Alarms over ``[start_hour, start_hour + duration_minutes)``.

        The window is extended backwards by ``long_window`` minutes so the
        baseline is warm from the first scanned minute.
        """
        cfg = self.config
        warmup = cfg.long_window
        offsets = np.arange(-warmup, duration_minutes)
        prices = self.market.minute_close(coin_id, start_hour, offsets)
        volumes = self.market.minute_volume(coin_id, start_hour, offsets)
        long_price = self._rolling_mean(prices, cfg.long_window)
        short_price = self._rolling_mean(prices, cfg.short_window)
        long_volume = self._rolling_mean(volumes, cfg.long_window)
        short_volume = self._rolling_mean(volumes, cfg.short_window)
        events: list[AnomalyEvent] = []
        for i in range(warmup, len(offsets)):
            if np.isnan(long_price[i]):
                continue
            price_ratio = short_price[i] / long_price[i]
            volume_ratio = short_volume[i] / max(long_volume[i], 1e-12)
            price_hit = price_ratio >= cfg.price_factor
            volume_hit = volume_ratio >= cfg.volume_factor
            fired = (price_hit and volume_hit) if cfg.require_both else (
                price_hit or volume_hit
            )
            if fired:
                events.append(AnomalyEvent(
                    coin_id=coin_id,
                    minute=int(offsets[i]),
                    price_ratio=float(price_ratio),
                    volume_ratio=float(volume_ratio),
                ))
        return events

    def first_alarm(self, coin_id: int, start_hour: float,
                    duration_minutes: int) -> AnomalyEvent | None:
        """The earliest alarm in the window, or None."""
        events = self.scan(coin_id, start_hour, duration_minutes)
        return events[0] if events else None
