"""repro.postdetect — the P&D *post-detection* task (related work, §8).

The paper contrasts its ahead-of-time target coin prediction with the
post-detection literature (Kamps & Kleinberg 2018; La Morgia et al. 2020),
which flags a P&D only once price/volume anomalies materialize.  This
package implements a moving-average anomaly detector in that family and
measures its detection delay, quantifying the paper's core motivation: by
the time post-detection fires, the price peak has typically passed.
"""

from repro.postdetect.anomaly import (
    AnomalyDetector,
    AnomalyEvent,
    DetectorConfig,
)
from repro.postdetect.evaluation import (
    DelayStudy,
    detection_delay_study,
    evaluate_detector,
)

__all__ = [
    "AnomalyDetector",
    "AnomalyEvent",
    "DetectorConfig",
    "evaluate_detector",
    "detection_delay_study",
    "DelayStudy",
]
