"""Request tracing: lightweight spans, contextvar propagation, ring store.

A **trace** is one request's tree of timed :class:`Span` nodes.  The
gateway opens a root span per HTTP request (honouring an inbound
``X-Repro-Trace-Id`` header so a client-side replay and the server share
one id); the serving layers annotate the path with :func:`span` context
managers::

    with start_trace("POST /v1/rank", store=traces) as root:
        with span("service.rank_batch", batch=3):
            with span("nn.forward", rows=412):
                ...

The active span lives in a :class:`~contextvars.ContextVar`, so nesting
works across helper calls without plumbing and each gateway handler
thread gets its own tree.  Outside any trace, :func:`span` returns a
shared no-op (one contextvar read, no allocation) — offline training and
assembly loops pay effectively nothing.

Finished root spans land in a :class:`TraceStore` ring buffer, served by
``GET /v1/trace/recent`` and attached to slow-request log lines.
"""

from __future__ import annotations

import threading
import time as _time
import uuid
from collections import deque
from contextvars import ContextVar
from typing import Iterator

#: HTTP header carrying the trace id across the wire (both directions).
TRACE_HEADER = "X-Repro-Trace-Id"
#: HTTP response header with the server-side handling duration.
DURATION_HEADER = "X-Repro-Duration-Ms"

_current: ContextVar["Span | None"] = ContextVar("repro_current_span",
                                                 default=None)

# Trace ids are hex and bounded so a hostile header cannot stuff logs.
_MAX_TRACE_ID = 64


def new_trace_id() -> str:
    return uuid.uuid4().hex


def sanitize_trace_id(raw: str | None) -> str:
    """A usable trace id from an (untrusted) inbound header."""
    if raw:
        candidate = raw.strip()[:_MAX_TRACE_ID]
        if candidate and all(c.isalnum() or c in "-_" for c in candidate):
            return candidate
    return new_trace_id()


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attributes",
                 "children", "started_at", "_t0", "duration_ms")

    def __init__(self, name: str, trace_id: str,
                 parent_id: str | None = None, attributes: dict | None = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = uuid.uuid4().hex[:16]
        self.parent_id = parent_id
        self.attributes = dict(attributes) if attributes else {}
        self.children: list[Span] = []
        self.started_at = _time.time()
        self._t0 = _time.perf_counter()
        self.duration_ms: float | None = None

    def set(self, key: str, value) -> None:
        """Attach/overwrite one attribute (e.g. the final HTTP status)."""
        self.attributes[key] = value

    def finish(self) -> None:
        if self.duration_ms is None:
            self.duration_ms = (_time.perf_counter() - self._t0) * 1000.0

    def to_dict(self) -> dict:
        """JSON-safe span tree (the ``/v1/trace/recent`` wire form)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "duration_ms": (round(self.duration_ms, 3)
                            if self.duration_ms is not None else None),
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanContext:
    """Context manager activating one span on the contextvar."""

    __slots__ = ("span", "_token")

    def __init__(self, span: Span):
        self.span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _current.set(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.finish()
        if exc_type is not None:
            self.span.set("error", exc_type.__name__)
        _current.reset(self._token)
        return False


class _NoopSpan:
    """Shared do-nothing span for code running outside any trace."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **attributes):
    """A child span of the active trace; a shared no-op outside one."""
    parent = _current.get()
    if parent is None:
        return _NOOP
    child = Span(name, parent.trace_id, parent_id=parent.span_id,
                 attributes=attributes)
    parent.children.append(child)
    return _SpanContext(child)


class _TraceContext(_SpanContext):
    """Root-span context that archives the finished tree in a store."""

    __slots__ = ("_store",)

    def __init__(self, span: Span, store: "TraceStore | None"):
        super().__init__(span)
        self._store = store

    def __exit__(self, exc_type, exc, tb) -> bool:
        suppressed = super().__exit__(exc_type, exc, tb)
        if self._store is not None:
            self._store.add(self.span)
        return suppressed


def start_trace(name: str, *, trace_id: str | None = None,
                store: "TraceStore | None" = None, **attributes):
    """Open a root span (a fresh trace id unless one is supplied)."""
    root = Span(name, trace_id or new_trace_id(), attributes=attributes)
    return _TraceContext(root, store)


def current_span() -> Span | None:
    return _current.get()


def current_trace_id() -> str | None:
    """The active trace's id, or ``None`` outside any trace.

    The gateway client stamps this onto outbound requests, so a traced
    local replay and the remote server log the same id.
    """
    active = _current.get()
    return active.trace_id if active is not None else None


class TraceStore:
    """Thread-safe ring buffer of the last N finished trace trees."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: deque[Span] = deque(maxlen=capacity)

    def add(self, root: Span) -> None:
        with self._lock:
            self._traces.append(root)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def recent(self, limit: int | None = None) -> list[dict]:
        """Most-recent-first span trees as JSON-safe dicts."""
        with self._lock:
            roots = list(self._traces)
        roots.reverse()
        if limit is not None:
            if limit < 0:
                raise ValueError("limit must be >= 0")
            roots = roots[:limit]
        return [root.to_dict() for root in roots]


__all__ = [
    "DURATION_HEADER", "TRACE_HEADER", "Span", "TraceStore",
    "current_span", "current_trace_id", "new_trace_id",
    "sanitize_trace_id", "span", "start_trace",
]
