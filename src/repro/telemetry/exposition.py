"""Prometheus text exposition: render registries, parse scrapes.

:func:`render_text` emits the version-0.0.4 text format (``# HELP`` /
``# TYPE`` comments, escaped label values, cumulative histogram
``_bucket{le=...}`` series ending in ``+Inf``, ``_sum`` and ``_count``).
:func:`parse_text` is the inverse used by the ``repro telemetry`` CLI and
the CI smoke job — it is deliberately strict, raising
:class:`ExpositionError` on any line that is not a comment, a blank, or a
well-formed sample, so a formatting regression fails the scrape instead
of silently dropping series.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Iterable

from repro.telemetry.metrics import Gauge, Histogram, MetricsRegistry

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*'
    r"(?P<sep>,|$)"
)


class ExpositionError(ValueError):
    """A scrape body that is not valid Prometheus text format."""


def escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r"\""))


def _unescape(value: str) -> str:
    return (value.replace(r"\"", '"').replace(r"\n", "\n")
            .replace(r"\\", "\\"))


def format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(names: tuple[str, ...], values: tuple[str, ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{escape_label_value(v)}"'
             for n, v in list(zip(names, values)) + list(extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_text(*registries: MetricsRegistry) -> str:
    """The concatenated exposition of one or more registries.

    Registries are deduplicated by identity; the serving stack names its
    series so families never repeat *across* registries (``service_*`` vs
    ``gateway_*`` vs the cross-cutting defaults), keeping the combined
    document valid.
    """
    seen: list[MetricsRegistry] = []
    for registry in registries:
        if not any(registry is r for r in seen):
            seen.append(registry)
    lines: list[str] = []
    for registry in seen:
        for metric in registry.collect():
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                _render_histogram(metric, lines)
                continue
            samples = metric.samples()
            if not samples and isinstance(metric, Gauge):
                # An unlabelled gauge that was registered but never set
                # still exposes its zero — absence reads as "series gone".
                samples = [((), 0.0)] if not metric.labelnames else []
            for key, value in samples:
                labels = _labels_text(metric.labelnames, key)
                lines.append(
                    f"{metric.name}{labels} {format_value(float(value))}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _render_histogram(metric: Histogram, lines: list[str]) -> None:
    for key, value in metric.samples():
        cumulative = 0
        for bound, count in zip(metric.buckets, value.counts):
            cumulative += count
            labels = _labels_text(metric.labelnames, key,
                                  extra=(("le", format_value(bound)),))
            lines.append(f"{metric.name}_bucket{labels} {cumulative}")
        cumulative += value.counts[-1]
        labels = _labels_text(metric.labelnames, key, extra=(("le", "+Inf"),))
        lines.append(f"{metric.name}_bucket{labels} {cumulative}")
        labels = _labels_text(metric.labelnames, key)
        lines.append(f"{metric.name}_sum{labels} "
                     f"{format_value(value.total)}")
        lines.append(f"{metric.name}_count{labels} {value.count}")


@dataclass(frozen=True)
class Sample:
    """One parsed exposition line: ``name{labels} value``."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    @property
    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


def _parse_labels(raw: str, line_no: int) -> tuple[tuple[str, str], ...]:
    pairs: list[tuple[str, str]] = []
    position = 0
    while position < len(raw):
        match = _LABEL_PAIR.match(raw, position)
        if match is None:
            raise ExpositionError(
                f"line {line_no}: malformed label pair at {raw[position:]!r}"
            )
        pairs.append((match.group("name"), _unescape(match.group("value"))))
        position = match.end()
        if match.group("sep") == "" and position < len(raw):
            raise ExpositionError(
                f"line {line_no}: trailing garbage in labels {raw!r}"
            )
    return tuple(pairs)


def _parse_value(raw: str, line_no: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ExpositionError(
            f"line {line_no}: {raw!r} is not a number"
        ) from None


def parse_text(text: str) -> list[Sample]:
    """Parse a scrape body; strict — any unexpected line raises.

    Comments (``# HELP`` / ``# TYPE`` / plain ``#``) and blank lines are
    skipped; everything else must match ``name[{labels}] value``.
    """
    samples: list[Sample] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(stripped)
        if match is None:
            raise ExpositionError(
                f"line {line_no}: not a valid exposition sample: {line!r}"
            )
        labels_raw = match.group("labels")
        samples.append(Sample(
            name=match.group("name"),
            labels=(_parse_labels(labels_raw, line_no)
                    if labels_raw else ()),
            value=_parse_value(match.group("value"), line_no),
        ))
    return samples


def _merge_family(sample_name: str, families: dict) -> str:
    """The family a sample line belongs to (histogram suffixes fold in)."""
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            family = families.get(base)
            if family is not None and family["type"] == "histogram":
                return base
    return sample_name


def merge_expositions(documents: Iterable[str]) -> str:
    """Merge several workers' expositions into one pool-level document.

    Counters and histogram series (``_bucket``/``_sum``/``_count``) sum
    across documents; gauges take the maximum (an uptime or an info flag
    must not multiply by the worker count).  ``# HELP``/``# TYPE`` lines
    and family order follow first appearance, so the merged document is
    as strictly parseable as any single worker's.  Raises
    :class:`ExpositionError` on any line no worker should have emitted.
    """
    families: dict[str, dict] = {}

    def family(name: str) -> dict:
        entry = families.get(name)
        if entry is None:
            entry = {"help": "", "type": "untyped", "samples": {}}
            families[name] = entry
        return entry

    for document in documents:
        for line_no, raw in enumerate(document.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("# HELP "):
                name, _, help_text = line[len("# HELP "):].partition(" ")
                entry = family(name)
                entry["help"] = entry["help"] or help_text
                continue
            if line.startswith("# TYPE "):
                name, _, kind = line[len("# TYPE "):].partition(" ")
                entry = family(name)
                if entry["type"] == "untyped":
                    entry["type"] = kind.strip() or "untyped"
                continue
            if line.startswith("#"):
                continue
            match = _SAMPLE_LINE.match(line)
            if match is None:
                raise ExpositionError(
                    f"line {line_no}: not a valid exposition sample: "
                    f"{raw!r}"
                )
            labels_raw = match.group("labels")
            labels = (_parse_labels(labels_raw, line_no)
                      if labels_raw else ())
            value = _parse_value(match.group("value"), line_no)
            sample_name = match.group("name")
            entry = family(_merge_family(sample_name, families))
            samples = entry["samples"]
            key = (sample_name, labels)
            if key not in samples:
                samples[key] = value
            elif entry["type"] == "gauge":
                samples[key] = max(samples[key], value)
            else:
                samples[key] += value

    lines: list[str] = []
    for name, entry in families.items():
        lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for (sample_name, labels), value in entry["samples"].items():
            pairs = [f'{label}="{escape_label_value(text)}"'
                     for label, text in labels]
            labels_text = "{" + ",".join(pairs) + "}" if pairs else ""
            lines.append(f"{sample_name}{labels_text} "
                         f"{format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


__all__ = [
    "ExpositionError", "Sample", "escape_label_value", "format_value",
    "merge_expositions", "parse_text", "render_text",
]
