"""Typed metric instruments and the process-wide registry.

Three Prometheus-style instrument kinds, all label-aware and safe under
the gateway's :class:`ThreadingHTTPServer` concurrency:

* :class:`Counter`   — monotonically increasing totals
  (``gateway_requests_total{endpoint,status}``);
* :class:`Gauge`     — set/inc/dec values that move both ways
  (``train_epoch_loss{model}``), optionally computed at collect time via
  :meth:`MetricsRegistry.gauge_fn`;
* :class:`Histogram` — fixed-bucket distributions with exact ``_sum`` /
  ``_count`` (``rank_latency_seconds{model}``) plus a quantile *estimate*
  for dashboards that cannot afford unbounded sample buffers.

Every mutation happens under the owning registry's lock, so concurrent
increments from N handler threads sum exactly (a test pins this).
Registration is idempotent: asking twice for the same name returns the
same instrument, while re-registering under a different type, label set
or bucket layout raises — two subsystems silently sharing one series
under different contracts is a bug, not a merge.

Naming conventions (enforced, and relied on by the exposition golden
tests): counters end in ``_total``; durations are seconds and end in
``_seconds``; label names are ``snake_case``.  See the README
"Observability" section for the full table of series this repo emits.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Callable, Iterable, Mapping, Sequence

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram upper bounds (seconds) — sub-millisecond cache hits
#: through multi-second artifact loads.  ``+Inf`` is implicit.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """Invalid metric/label name, or conflicting re-registration."""


def _check_labels(labelnames: Sequence[str]) -> tuple[str, ...]:
    labelnames = tuple(labelnames)
    for name in labelnames:
        if not _LABEL_NAME.match(name):
            raise MetricError(f"invalid label name {name!r}")
    if len(set(labelnames)) != len(labelnames):
        raise MetricError(f"duplicate label names in {labelnames!r}")
    return labelnames


class _Metric:
    """Common core: one named series family with labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.RLock):
        if not _METRIC_NAME.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = _check_labels(labelnames)
        self._lock = lock
        self._children: dict[tuple[str, ...], object] = {}

    # -- label handling ------------------------------------------------------

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def labels(self, **labels) -> "_Metric":
        """A view of this metric bound to one label-value combination."""
        return _Bound(self, self._key(labels))

    def _default_key(self) -> tuple[str, ...]:
        if self.labelnames:
            raise MetricError(
                f"{self.name} is labelled {self.labelnames}; "
                "use .labels(...) to pick a series"
            )
        return ()

    # -- storage -------------------------------------------------------------

    def _new_value(self):
        return 0.0

    def _slot(self, key: tuple[str, ...]):
        value = self._children.get(key)
        if value is None:
            value = self._children[key] = self._new_value()
        return value

    def samples(self) -> list[tuple[tuple[str, ...], object]]:
        """Snapshot of ``(label_values, value)`` pairs, insertion-ordered."""
        with self._lock:
            return [(key, self._copy_value(value))
                    for key, value in self._children.items()]

    def _copy_value(self, value):
        return value

    def clear(self) -> None:
        """Drop every child series (used when an info gauge is re-pointed)."""
        with self._lock:
            self._children.clear()


class _Bound:
    """One labelled child: the instrument API with a fixed label key.

    Methods a given instrument kind does not implement (``set`` on a
    counter, ``observe`` on a gauge) raise ``AttributeError`` on use.
    """

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: _Metric, key: tuple[str, ...]):
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, amount)

    def dec(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, -amount)

    def set(self, value: float) -> None:
        self._metric._set(self._key, value)

    def observe(self, value: float) -> None:
        self._metric._observe(self._key, value)

    def value(self) -> float:
        return self._metric._value(self._key)

    def force_set(self, value: float) -> None:
        self._metric._force_set(self._key, value)


class Counter(_Metric):
    """A monotonically increasing total.  Decrements raise."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._inc(self._default_key(), amount)

    def _inc(self, key: tuple[str, ...], amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._children[key] = self._slot(key) + amount

    @property
    def value(self) -> float:
        return self._value(self._default_key())

    def _value(self, key: tuple[str, ...]) -> float:
        with self._lock:
            return float(self._children.get(key, 0.0))

    def _force_set(self, key: tuple[str, ...], value: float) -> None:
        """Bridge for legacy accumulators (``ServiceStats``) whose public
        API still assigns attribute values directly; not part of the
        normal counter contract."""
        with self._lock:
            self._children[key] = float(value)


class Gauge(_Metric):
    """A value that can go up and down (or be computed at collect time)."""

    kind = "gauge"

    def __init__(self, name, help, labelnames, lock,
                 fn: Callable[[], float] | None = None):
        super().__init__(name, help, labelnames, lock)
        if fn is not None and labelnames:
            raise MetricError("callback gauges cannot be labelled")
        self._fn = fn

    def set(self, value: float) -> None:
        self._set(self._default_key(), value)

    def inc(self, amount: float = 1.0) -> None:
        self._inc(self._default_key(), amount)

    def dec(self, amount: float = 1.0) -> None:
        self._inc(self._default_key(), -amount)

    def _set(self, key: tuple[str, ...], value: float) -> None:
        with self._lock:
            self._slot(key)
            self._children[key] = float(value)

    def _inc(self, key: tuple[str, ...], amount: float = 1.0) -> None:
        with self._lock:
            self._children[key] = self._slot(key) + amount

    @property
    def value(self) -> float:
        return self._value(self._default_key())

    def _value(self, key: tuple[str, ...]) -> float:
        with self._lock:
            return float(self._children.get(key, 0.0))

    def samples(self):
        if self._fn is not None:
            return [((), float(self._fn()))]
        return super().samples()


class _HistogramValue:
    """Per-child histogram state: bucket counts + exact sum/count."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets   # non-cumulative, one per finite bound
        self.total = 0.0
        self.count = 0

    def copy(self) -> "_HistogramValue":
        clone = _HistogramValue(len(self.counts))
        clone.counts = list(self.counts)
        clone.total = self.total
        clone.count = self.count
        return clone


class Histogram(_Metric):
    """Fixed-bucket distribution; O(1) memory however many observations."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise MetricError(
                f"histogram {name} buckets must be sorted and non-empty"
            )
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name} buckets must be distinct")
        #: Finite upper bounds; the ``+Inf`` bucket is the overflow slot.
        self.buckets = bounds

    def _new_value(self):
        return _HistogramValue(len(self.buckets) + 1)

    def _copy_value(self, value: _HistogramValue) -> _HistogramValue:
        return value.copy()

    def observe(self, value: float) -> None:
        self._observe(self._default_key(), value)

    def _observe(self, key: tuple[str, ...], value: float) -> None:
        value = float(value)
        # ``le`` is inclusive: an observation exactly on a bound lands in
        # that bound's bucket (pinned by the boundary test).
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            slot = self._slot(key)
            slot.counts[index] += 1
            slot.total += value
            slot.count += 1

    # -- aggregate reads -----------------------------------------------------

    def _aggregate(self) -> _HistogramValue:
        with self._lock:
            merged = self._new_value()
            for child in self._children.values():
                for i, c in enumerate(child.counts):
                    merged.counts[i] += c
                merged.total += child.total
                merged.count += child.count
            return merged

    @property
    def count(self) -> int:
        return self._aggregate().count

    @property
    def total(self) -> float:
        return self._aggregate().total

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) across all children.

        Linear interpolation inside the containing bucket — an estimate
        whose error is bounded by the bucket width, which is why callers
        needing exact short-run percentiles pair the histogram with a
        bounded reservoir (see :class:`repro.serving.ServiceStats`).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        merged = self._aggregate()
        if merged.count == 0:
            return 0.0
        target = q * merged.count
        seen = 0
        for index, bucket_count in enumerate(merged.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= target:
                lower = self.buckets[index - 1] if index else 0.0
                if index >= len(self.buckets):
                    # Overflow bucket is unbounded; its lower edge is the
                    # best (conservative) point estimate available.
                    return self.buckets[-1]
                upper = self.buckets[index]
                fraction = (target - seen) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            seen += bucket_count
        return self.buckets[-1]


class MetricsRegistry:
    """A named collection of instruments with one mutation lock.

    One registry per observable unit: each :class:`ServiceStats` owns a
    private registry (so two services in one process never merge
    counters), the gateway owns one for transport metrics, and
    :func:`default_registry` holds the process-wide series emitted by
    training, ingest, artifact and compile instrumentation.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name: str, help: str,
                  labelnames: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.labelnames != tuple(labelnames)
                        or (cls is Histogram and existing.buckets
                            != tuple(float(b) for b in kwargs.get(
                                "buckets", DEFAULT_BUCKETS)))):
                    raise MetricError(
                        f"metric {name!r} already registered with a "
                        "different type, label set or bucket layout"
                    )
                return existing
            metric = cls(name, help, labelnames, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def gauge_fn(self, name: str, help: str,
                 fn: Callable[[], float]) -> Gauge:
        """A gauge whose value is computed at collect time (e.g. a ratio)."""
        return self._register(Gauge, name, help, (), fn=fn)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    def collect(self) -> list[_Metric]:
        """The registered instruments, in registration order."""
        with self._lock:
            return list(self._metrics.values())

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """This registry's Prometheus text exposition."""
        from repro.telemetry.exposition import render_text

        return render_text(self)


# -- the process-wide default registry ----------------------------------------

_default = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The shared registry cross-cutting instrumentation records into.

    Training (:class:`repro.core.Trainer`), ingest (:mod:`repro.sources`),
    artifact loads (:mod:`repro.registry`) and plan compilation
    (:mod:`repro.nn.compile`) all write here, so one scrape of a serving
    process also covers the model's load/compile history.
    """
    with _default_lock:
        return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default (tests isolate themselves with this).

    Returns the previous default so callers can restore it.
    """
    global _default
    with _default_lock:
        previous, _default = _default, registry
        return previous


__all__ = [
    "DEFAULT_BUCKETS", "MetricError", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "default_registry", "set_default_registry",
]
