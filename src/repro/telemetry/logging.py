"""Structured JSON logging with trace-id correlation.

One JSON object per line on a stream (stderr by default) — the format
log aggregators ingest directly, replacing the gateway's ad-hoc
``--verbose`` prints.  Every record automatically carries the active
trace id (see :mod:`repro.telemetry.tracing`), so a slow-request span
dump, its error envelope and its access-log line all join on
``trace_id``::

    {"ts": 1722945600.123, "level": "warning", "logger": "repro.gateway",
     "event": "request_failed", "trace_id": "9f1c...", "code": "bad_json",
     "endpoint": "/v1/rank", "status": 400}

``event`` is a stable machine-readable name (snake_case, like metric
names); free-form prose goes in ``message``.  Values that are not
JSON-serializable are stringified rather than raising — a log line must
never take down a handler thread.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time as _time
from typing import TextIO

from repro.telemetry.tracing import current_trace_id

_LEVELS = ("debug", "info", "warning", "error")


class StructuredLogger:
    """Write one JSON object per line, trace-correlated and thread-safe."""

    def __init__(self, name: str, stream: TextIO | None = None,
                 min_level: str = "info"):
        if min_level not in _LEVELS:
            raise ValueError(f"unknown level {min_level!r}")
        self.name = name
        self._stream = stream
        self._min = _LEVELS.index(min_level)
        self._lock = threading.Lock()

    @property
    def stream(self) -> TextIO:
        # Resolved lazily so monkeypatched/captured sys.stderr (pytest's
        # capsys) is honoured; an explicit stream pins the destination.
        return self._stream if self._stream is not None else sys.stderr

    def log(self, level: str, event: str, **fields) -> None:
        if level not in _LEVELS:
            raise ValueError(f"unknown level {level!r}")
        if _LEVELS.index(level) < self._min:
            return
        record = {
            "ts": round(_time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        trace_id = current_trace_id()
        if trace_id is not None and "trace_id" not in fields:
            record["trace_id"] = trace_id
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            try:
                print(line, file=self.stream, flush=True)
            except (OSError, ValueError):  # pragma: no cover - closed stream
                pass

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


class CapturingLogger(StructuredLogger):
    """A logger whose records are kept in memory — the test double."""

    def __init__(self, name: str = "test", min_level: str = "debug"):
        super().__init__(name, stream=io.StringIO(), min_level=min_level)

    @property
    def records(self) -> list[dict]:
        raw = self.stream.getvalue()
        return [json.loads(line) for line in raw.splitlines() if line]


_loggers: dict[str, StructuredLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """Process-wide logger instances, memoized by name."""
    with _loggers_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructuredLogger(name)
        return logger


__all__ = ["CapturingLogger", "StructuredLogger", "get_logger"]
