"""repro.telemetry — stdlib-only observability for the serving stack.

One subsystem, three concerns (ISSUE 6):

* **metrics** — :class:`MetricsRegistry` with typed, labelled instruments
  (:class:`Counter`, :class:`Gauge`, :class:`Histogram`), safe under the
  gateway's thread pool; :func:`default_registry` carries the
  cross-cutting series (training epochs, artifact loads, plan compiles,
  source ingest) so one scrape observes the whole model lifecycle.
* **tracing** — :func:`span` / :func:`start_trace` build per-request span
  trees propagated via a contextvar and the ``X-Repro-Trace-Id`` header;
  finished traces ring-buffer in a :class:`TraceStore` behind
  ``GET /v1/trace/recent`` and slow-request log lines.
* **exposition & logging** — ``GET /v1/metrics`` Prometheus text
  (:func:`render_text` / strict :func:`parse_text`), structured JSON
  logging (:class:`StructuredLogger`) with automatic trace correlation.

:class:`TelemetryHub` bundles all of it for one observable component.
Instrumentation is parity-safe by construction: it only ever *times and
counts* around the existing code paths — rankings remain bit-for-bit
identical with telemetry on (pinned by tests/gateway/test_telemetry.py).
"""

from repro.telemetry.exposition import (
    ExpositionError,
    Sample,
    merge_expositions,
    parse_text,
    render_text,
)
from repro.telemetry.hub import DEFAULT_SLOW_MS, TelemetryHub
from repro.telemetry.logging import (
    CapturingLogger,
    StructuredLogger,
    get_logger,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.telemetry.tracing import (
    DURATION_HEADER,
    TRACE_HEADER,
    Span,
    TraceStore,
    current_span,
    current_trace_id,
    new_trace_id,
    sanitize_trace_id,
    span,
    start_trace,
)

__all__ = [
    "DEFAULT_BUCKETS", "MetricError", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "default_registry", "set_default_registry",
    "ExpositionError", "Sample", "merge_expositions", "parse_text",
    "render_text",
    "TRACE_HEADER", "DURATION_HEADER", "Span", "TraceStore",
    "current_span", "current_trace_id", "new_trace_id",
    "sanitize_trace_id", "span", "start_trace",
    "StructuredLogger", "CapturingLogger", "get_logger",
    "TelemetryHub", "DEFAULT_SLOW_MS",
]
