"""The telemetry hub: one bundle of registry + traces + logger + policy.

A :class:`TelemetryHub` is what a serving process hands around instead of
four separate objects: its metrics registry, its trace ring buffer, its
structured logger and the slow-request threshold.  The gateway owns one
per :class:`~repro.gateway.GatewayApp` (tests inject a fresh hub with a
:class:`~repro.telemetry.logging.CapturingLogger`); ``/v1/metrics``
renders the hub's registry together with the service's stats registry and
the process default registry, so one scrape covers transport, serving,
and the cross-cutting train/load/compile series.
"""

from __future__ import annotations

from repro.telemetry.logging import StructuredLogger, get_logger
from repro.telemetry.metrics import MetricsRegistry, default_registry
from repro.telemetry.tracing import Span, TraceStore

#: A root span at least this long (ms) gets its tree attached to a
#: structured ``slow_request`` log line.
DEFAULT_SLOW_MS = 500.0


class TelemetryHub:
    """Metrics + traces + logging for one observable process/component."""

    def __init__(self, *, registry: MetricsRegistry | None = None,
                 traces: TraceStore | None = None,
                 logger: StructuredLogger | None = None,
                 slow_ms: float = DEFAULT_SLOW_MS,
                 trace_capacity: int = 64):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.traces = (traces if traces is not None
                       else TraceStore(capacity=trace_capacity))
        self.logger = logger if logger is not None else get_logger("repro")
        if slow_ms < 0:
            raise ValueError("slow_ms must be >= 0")
        self.slow_ms = slow_ms

    def maybe_log_slow(self, root: Span) -> bool:
        """Log a finished root span's tree when it crossed ``slow_ms``.

        Returns True when a ``slow_request`` line was emitted — the
        threshold is inclusive so ``slow_ms=0`` traces everything.
        """
        if root.duration_ms is None or root.duration_ms < self.slow_ms:
            return False
        self.logger.warning(
            "slow_request",
            trace_id=root.trace_id,
            name=root.name,
            duration_ms=round(root.duration_ms, 3),
            threshold_ms=self.slow_ms,
            trace=root.to_dict(),
        )
        return True

    def render_metrics(self, *extra: MetricsRegistry) -> str:
        """Prometheus exposition of this hub + any extra registries.

        The process :func:`default_registry` is always included, so the
        scrape of a gateway also shows artifact-load, compile and
        training series recorded before serving started.
        """
        from repro.telemetry.exposition import render_text

        return render_text(self.registry, *extra, default_registry())


__all__ = ["DEFAULT_SLOW_MS", "TelemetryHub"]
