"""Random forest classifier: bagged CART trees with feature subsampling.

The paper's strongest hand-crafted-feature baseline (Tables 1 and 5) and the
model its data pipeline uses for pump-message detection.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier


def _issparse(x) -> bool:
    """True when ``x`` is a scipy sparse matrix, without requiring scipy.

    A serving process without scipy cannot have produced one, so the
    import failure itself answers the question.
    """
    try:
        from scipy import sparse
    except ImportError:
        return False
    return sparse.issparse(x)


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees.

    Parameters
    ----------
    n_estimators, max_depth, min_samples_leaf:
        Usual forest knobs.
    max_features:
        Per-node feature subsample; default ``"sqrt"``.
    max_samples:
        Optional cap on bootstrap sample size — keeps training tractable on
        the ~100k-row target-coin matrix.
    class_weight:
        ``None`` or ``"balanced"``; balanced mode oversamples the minority
        class inside each bootstrap.
    """

    def __init__(self, n_estimators: int = 30, max_depth: int = 12,
                 min_samples_leaf: int = 2, max_features="sqrt",
                 max_samples: int | None = None, class_weight: str | None = None,
                 seed: int = 0):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_samples = max_samples
        self.class_weight = class_weight
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] = []

    def _bootstrap(self, rng: np.random.Generator, y: np.ndarray) -> np.ndarray:
        n = len(y)
        size = min(n, self.max_samples) if self.max_samples else n
        if self.class_weight == "balanced":
            pos = np.flatnonzero(y == 1)
            neg = np.flatnonzero(y == 0)
            if len(pos) and len(neg):
                half = size // 2
                return np.concatenate([
                    rng.choice(pos, size=half, replace=True),
                    rng.choice(neg, size=size - half, replace=True),
                ])
        return rng.choice(n, size=size, replace=True)

    def fit(self, x, y) -> "RandomForestClassifier":
        if _issparse(x):
            x = np.asarray(x.todense())
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        root_rng = np.random.default_rng(self.seed)
        self.trees_ = []
        for _ in range(self.n_estimators):
            rng = np.random.default_rng(root_rng.integers(2**63))
            idx = self._bootstrap(rng, y)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            )
            tree.fit(x[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, x) -> np.ndarray:
        """Average of per-tree leaf probabilities, P(y=1)."""
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        if _issparse(x):
            x = np.asarray(x.todense())
        x = np.asarray(x, dtype=float)
        acc = np.zeros(len(x))
        for tree in self.trees_:
            acc += tree.predict_proba(x)
        return acc / len(self.trees_)

    def predict(self, x, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(int)

    def feature_importances(self) -> np.ndarray:
        """Split-frequency importances (how often each feature splits)."""
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        counts = np.zeros(self.trees_[0].n_features_)

        def walk(node):
            if node.is_leaf:
                return
            counts[node.feature] += 1
            walk(node.left)
            walk(node.right)

        for tree in self.trees_:
            walk(tree._root)
        total = counts.sum()
        return counts / total if total else counts
