"""CART decision tree classifier (gini impurity), the unit of the forest.

Implemented with vectorized per-feature threshold scans: at each node, for
every candidate feature we sort the feature column once and evaluate every
split point from cumulative class counts, so node-splitting cost is
``O(features * n log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class _Node:
    """Tree node; leaves carry class probabilities."""

    prediction: np.ndarray  # P(class 0), P(class 1)
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_for_feature(values: np.ndarray, y: np.ndarray):
    """Return (gini, threshold) of the best binary split on one feature.

    ``y`` must be 0/1.  Returns ``None`` when the feature is constant.
    """
    order = np.argsort(values, kind="mergesort")
    v = values[order]
    labels = y[order]
    n = len(y)
    # Candidate boundaries: positions where the sorted value changes.
    change = np.nonzero(v[1:] != v[:-1])[0]
    if len(change) == 0:
        return None
    left_count = change + 1.0
    right_count = n - left_count
    left_pos = np.cumsum(labels)[change]
    total_pos = labels.sum()
    right_pos = total_pos - left_pos
    p_left = left_pos / left_count
    p_right = right_pos / right_count
    gini_left = 1.0 - p_left**2 - (1 - p_left) ** 2
    gini_right = 1.0 - p_right**2 - (1 - p_right) ** 2
    weighted = (left_count * gini_left + right_count * gini_right) / n
    best = int(np.argmin(weighted))
    threshold = 0.5 * (v[change[best]] + v[change[best] + 1])
    return float(weighted[best]), float(threshold)


class DecisionTreeClassifier:
    """Binary CART with optional per-node feature subsampling.

    ``max_features`` follows the usual conventions: ``None`` (all),
    ``"sqrt"``, or an int.
    """

    def __init__(self, max_depth: int = 12, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features=None,
                 rng: np.random.Generator | None = None):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self._rng = rng or np.random.default_rng(0)
        self._root: _Node | None = None
        self.n_features_: int = 0
        self.n_nodes_: int = 0

    def _n_candidate_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        return min(d, int(self.max_features))

    def _leaf(self, y: np.ndarray) -> _Node:
        p1 = float(y.mean()) if len(y) else 0.0
        self.n_nodes_ += 1
        return _Node(prediction=np.array([1.0 - p1, p1]))

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or y.min() == y.max()
        ):
            return self._leaf(y)
        d = x.shape[1]
        k = self._n_candidate_features(d)
        candidates = (
            np.arange(d) if k == d else self._rng.choice(d, size=k, replace=False)
        )
        best_gini = np.inf
        best_feature = -1
        best_threshold = 0.0
        for feature in candidates:
            result = _best_split_for_feature(x[:, feature], y)
            if result is None:
                continue
            gini, threshold = result
            if gini < best_gini:
                best_gini, best_feature, best_threshold = gini, int(feature), threshold
        if best_feature < 0:
            return self._leaf(y)
        mask = x[:, best_feature] <= best_threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return self._leaf(y)
        node = self._leaf(y)  # carries the fallback prediction
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def fit(self, x, y) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if not np.isin(y, (0, 1)).all():
            raise ValueError("labels must be binary 0/1")
        self.n_features_ = x.shape[1]
        self.n_nodes_ = 0
        self._root = self._grow(x, y, depth=0)
        return self

    def predict_proba(self, x) -> np.ndarray:
        """Vectorized routing of rows down the tree; returns P(y=1)."""
        if self._root is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=float)
        out = np.empty(len(x))
        # Iterative partition routing: keep (node, row_indices) work items.
        stack = [(self._root, np.arange(len(x)))]
        while stack:
            node, idx = stack.pop()
            if len(idx) == 0:
                continue
            if node.is_leaf:
                out[idx] = node.prediction[1]
                continue
            mask = x[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    def predict(self, x, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(int)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("model is not fitted")
        return walk(self._root)
