"""Mean (target) encoding for categorical features.

The paper equips LR and RF with mean encoding "to compensate for the lack of
embedding layers" (§6.1): each categorical value is replaced by a smoothed
estimate of the positive rate among training rows carrying that value.
"""

from __future__ import annotations

import numpy as np


class MeanEncoder:
    """Smoothed target encoding of one categorical column.

    ``encoding(v) = (sum_y(v) + alpha * prior) / (count(v) + alpha)``

    Unseen categories at transform time fall back to the global prior, which
    is exactly the coin-side cold-start behaviour hand-crafted models get.
    """

    def __init__(self, alpha: float = 10.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.prior_: float = 0.0
        self.mapping_: dict[int, float] = {}

    def fit(self, categories, y) -> "MeanEncoder":
        categories = np.asarray(categories)
        y = np.asarray(y, dtype=float)
        if categories.shape != y.shape:
            raise ValueError("categories and targets must align")
        if len(y) == 0:
            raise ValueError("cannot fit on empty data")
        self.prior_ = float(y.mean())
        self.mapping_ = {}
        order = np.argsort(categories, kind="mergesort")
        cats = categories[order]
        ys = y[order]
        boundaries = np.flatnonzero(cats[1:] != cats[:-1]) + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [len(cats)]])
        for start, stop in zip(starts, stops):
            value = cats[start]
            count = stop - start
            total = ys[start:stop].sum()
            self.mapping_[int(value)] = float(
                (total + self.alpha * self.prior_) / (count + self.alpha)
            )
        return self

    def transform(self, categories) -> np.ndarray:
        categories = np.asarray(categories)
        return np.array([self.mapping_.get(int(c), self.prior_) for c in categories])

    def fit_transform(self, categories, y) -> np.ndarray:
        return self.fit(categories, y).transform(categories)
