"""Feature scaling: standardization and min-max, fitted on training data only."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Column-wise zero-mean unit-variance scaling; constant columns pass through."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, x) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0] = 1.0
        self.std_ = std
        return self

    def transform(self, x) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(x, dtype=float) - self.mean_) / self.std_

    def fit_transform(self, x) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(x, dtype=float) * self.std_ + self.mean_


class MinMaxScaler:
    """Column-wise scaling to [0, 1]; constant columns map to 0."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, x) -> "MinMaxScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        self.min_ = x.min(axis=0)
        rng = x.max(axis=0) - self.min_
        rng[rng == 0] = 1.0
        self.range_ = rng
        return self

    def transform(self, x) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(x, dtype=float) - self.min_) / self.range_

    def fit_transform(self, x) -> np.ndarray:
        return self.fit(x).transform(x)
