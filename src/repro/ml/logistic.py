"""Logistic regression trained by full-batch gradient descent with momentum.

One of the two hand-crafted-feature baselines of Tables 1 and 5.  Works on
dense or scipy CSR matrices (TF-IDF output).
"""

from __future__ import annotations

import numpy as np


def _issparse(x) -> bool:
    """True when ``x`` is a scipy sparse matrix, without requiring scipy.

    A process without scipy cannot have produced one, so the import
    failure itself answers the question.
    """
    try:
        from scipy import sparse
    except ImportError:
        return False
    return sparse.issparse(x)


class LogisticRegression:
    """L2-regularized logistic regression.

    Parameters
    ----------
    lr, epochs, momentum:
        Optimization hyper-parameters (full-batch gradient descent).
    l2:
        Ridge penalty on weights (not the intercept).
    class_weight:
        ``None`` or ``"balanced"`` — the latter reweights classes inversely
        to their frequency, which matters at the 0.5% positive rate of the
        target coin task.
    """

    def __init__(self, lr: float = 0.5, epochs: int = 300, l2: float = 1e-4,
                 momentum: float = 0.9, class_weight: str | None = None,
                 tol: float = 1e-7):
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.momentum = momentum
        self.class_weight = class_weight
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 0.5 * (1.0 + np.tanh(0.5 * z))

    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones_like(y)
        if self.class_weight != "balanced":
            raise ValueError("class_weight must be None or 'balanced'")
        n = len(y)
        n_pos = max(1.0, float(y.sum()))
        n_neg = max(1.0, float(n - y.sum()))
        weights = np.where(y == 1, n / (2 * n_pos), n / (2 * n_neg))
        return weights

    def fit(self, x, y) -> "LogisticRegression":
        y = np.asarray(y, dtype=float)
        if not np.isin(y, (0, 1)).all():
            raise ValueError("labels must be binary 0/1")
        is_sparse = _issparse(x)
        n, d = x.shape
        weights = self._sample_weights(y)
        w = np.zeros(d)
        b = 0.0
        vel_w = np.zeros(d)
        vel_b = 0.0
        prev_loss = np.inf
        for epoch in range(self.epochs):
            z = (x @ w) + b
            z = np.asarray(z).ravel()
            p = self._sigmoid(z)
            err = weights * (p - y) / n
            if is_sparse:
                grad_w = np.asarray(x.T @ err).ravel() + self.l2 * w
            else:
                grad_w = x.T @ err + self.l2 * w
            grad_b = err.sum()
            vel_w = self.momentum * vel_w - self.lr * grad_w
            vel_b = self.momentum * vel_b - self.lr * grad_b
            w = w + vel_w
            b = b + vel_b
            self.n_iter_ = epoch + 1
            if epoch % 20 == 0:
                eps = 1e-12
                loss = float(-(weights * (y * np.log(p + eps)
                                          + (1 - y) * np.log(1 - p + eps))).mean())
                if abs(prev_loss - loss) < self.tol:
                    break
                prev_loss = loss
        self.coef_ = w
        self.intercept_ = float(b)
        return self

    def decision_function(self, x) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        z = (x @ self.coef_) + self.intercept_
        return np.asarray(z).ravel()

    def predict_proba(self, x) -> np.ndarray:
        """Return P(y=1 | x) for each row."""
        return self._sigmoid(self.decision_function(x))

    def predict(self, x, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(int)
