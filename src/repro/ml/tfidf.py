"""TF-IDF vectorizer producing scipy CSR matrices.

Feeds the pump-message detector of §3.2: messages are cleaned, tokenized
and represented as smoothed, L2-normalized TF-IDF vectors.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np


def _sparse():
    """Load ``scipy.sparse`` on first use.

    Fitting only counts tokens; scipy is needed the moment a CSR matrix
    must be materialized, and a serving process that never runs the
    TF-IDF detector never pays (or needs) the import.
    """
    try:
        from scipy import sparse
    except ImportError as exc:
        raise ImportError(
            "repro.ml.tfidf produces scipy CSR matrices: install scipy to "
            "use the TF-IDF detector path (the serving stack does not "
            "require it)"
        ) from exc
    return sparse


class TfidfVectorizer:
    """Bag-of-words TF-IDF with smoothed IDF and L2 row normalization.

    Parameters
    ----------
    max_features:
        Keep only the most frequent terms (by document frequency).
    min_df:
        Drop terms appearing in fewer than this many documents.
    tokenizer:
        Callable mapping a string to tokens; defaults to whitespace split
        (the text pipeline pre-cleans messages).
    """

    def __init__(self, max_features: int | None = None, min_df: int = 1,
                 tokenizer=None):
        if min_df < 1:
            raise ValueError("min_df must be >= 1")
        self.max_features = max_features
        self.min_df = min_df
        self.tokenizer = tokenizer or (lambda text: text.split())
        self.vocabulary_: dict[str, int] = {}
        self.idf_: np.ndarray | None = None

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        if len(documents) == 0:
            raise ValueError("cannot fit on an empty corpus")
        doc_freq: Counter = Counter()
        for doc in documents:
            doc_freq.update(set(self.tokenizer(doc)))
        items = [(t, c) for t, c in doc_freq.items() if c >= self.min_df]
        # Deterministic ordering: by document frequency desc, then term.
        items.sort(key=lambda tc: (-tc[1], tc[0]))
        if self.max_features is not None:
            items = items[: self.max_features]
        self.vocabulary_ = {term: i for i, (term, _) in enumerate(items)}
        n_docs = len(documents)
        df = np.array([c for _, c in items], dtype=float)
        # Smoothed IDF, as in sklearn: log((1+n)/(1+df)) + 1.
        self.idf_ = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        return self

    def transform(self, documents: Sequence[str]) -> "sparse.csr_matrix":
        if self.idf_ is None:
            raise RuntimeError("vectorizer is not fitted")
        sparse = _sparse()
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for i, doc in enumerate(documents):
            counts = Counter(
                self.vocabulary_[t] for t in self.tokenizer(doc) if t in self.vocabulary_
            )
            for col, count in counts.items():
                rows.append(i)
                cols.append(col)
                vals.append(float(count) * self.idf_[col])
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(len(documents), len(self.vocabulary_))
        )
        # L2-normalize non-empty rows.
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
        norms[norms == 0] = 1.0
        scale = sparse.diags(1.0 / norms)
        return scale @ matrix

    def fit_transform(self, documents: Sequence[str]) -> "sparse.csr_matrix":
        return self.fit(documents).transform(documents)

    def get_feature_names(self) -> list[str]:
        """Vocabulary terms in column order."""
        return sorted(self.vocabulary_, key=self.vocabulary_.get)
