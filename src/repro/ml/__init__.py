"""repro.ml — classic machine learning built from first principles.

Provides the hand-crafted-feature baselines (logistic regression, random
forest), the TF-IDF representation used by pump-message detection, mean
encoding for categorical features, scalers, and every evaluation metric the
paper reports.
"""

from repro.ml.logistic import LogisticRegression
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.tfidf import TfidfVectorizer
from repro.ml.encoding import MeanEncoder
from repro.ml.scaling import MinMaxScaler, StandardScaler
from repro.ml.metrics import (
    BinaryClassificationReport,
    accuracy,
    classification_report,
    hit_ratio_at_k,
    mean_absolute_error,
    roc_auc,
)
from repro.ml.ranking import (
    mean_rank,
    mean_reciprocal_rank,
    ndcg_at_k,
    ranking_report,
)

# Shared numerics: the overflow-safe sigmoid lives with the tensor math in
# ``repro.nn`` and is re-exported here for classic-ML consumers.
from repro.nn.tensor import stable_sigmoid

__all__ = [
    "LogisticRegression",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "TfidfVectorizer",
    "MeanEncoder",
    "StandardScaler",
    "MinMaxScaler",
    "BinaryClassificationReport",
    "accuracy",
    "classification_report",
    "hit_ratio_at_k",
    "mean_absolute_error",
    "roc_auc",
    "mean_reciprocal_rank",
    "mean_rank",
    "ndcg_at_k",
    "ranking_report",
    "stable_sigmoid",
]
