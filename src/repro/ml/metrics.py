"""Evaluation metrics used across the paper.

* Table 1 — ROC-AUC, precision, recall, F1 (pump message detection).
* Table 5/6 — HR@k over per-event ranking lists (target coin prediction).
* Table 8 — MAE (BTC price forecasting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def _validate_binary(y_true: np.ndarray) -> np.ndarray:
    y_true = np.asarray(y_true)
    if not np.isin(y_true, (0, 1)).all():
        raise ValueError("labels must be binary 0/1")
    return y_true.astype(float)


def roc_auc(y_true, y_score) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Ties in scores receive average ranks, matching the standard definition.
    """
    y_true = _validate_binary(y_true)
    y_score = np.asarray(y_score, dtype=float)
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc requires both classes present")
    order = np.argsort(y_score, kind="mergesort")
    ranks = np.empty(len(y_score), dtype=float)
    ranks[order] = np.arange(1, len(y_score) + 1)
    # Average ranks over ties.
    sorted_scores = y_score[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            avg = (i + j) / 2.0 + 1.0
            ranks[order[i: j + 1]] = avg
        i = j + 1
    rank_sum = ranks[y_true == 1].sum()
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


@dataclass(frozen=True)
class BinaryClassificationReport:
    """Precision/recall/F1 at a decision threshold plus AUC."""

    auc: float
    precision: float
    recall: float
    f1: float
    threshold: float
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int


def classification_report(y_true, y_score, threshold: float = 0.5) -> BinaryClassificationReport:
    """Compute the Table-1 style metric bundle at a probability threshold.

    The paper evaluates the pump-message detector at a deliberately low
    threshold of 0.2 to maximize recall.
    """
    y_true = _validate_binary(y_true)
    y_score = np.asarray(y_score, dtype=float)
    pred = (y_score >= threshold).astype(float)
    tp = int(((pred == 1) & (y_true == 1)).sum())
    fp = int(((pred == 1) & (y_true == 0)).sum())
    fn = int(((pred == 0) & (y_true == 1)).sum())
    tn = int(((pred == 0) & (y_true == 0)).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return BinaryClassificationReport(
        auc=roc_auc(y_true, y_score),
        precision=precision,
        recall=recall,
        f1=f1,
        threshold=threshold,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )


def hit_ratio_at_k(rank_lists: Sequence[np.ndarray], ks: Sequence[int]) -> dict[int, float]:
    """HR@k averaged over ranking lists.

    Each element of ``rank_lists`` is a 2-column array ``(score, is_positive)``
    for one pump event: the positive (pumped) coin plus its negatives.  For
    each k, HR@k is the fraction of events whose positive lands in the top-k
    by score (ties broken pessimistically — a tied positive counts as ranked
    below tied negatives, so results never benefit from degenerate constant
    scores).
    """
    ks = sorted(set(int(k) for k in ks))
    hits = {k: 0 for k in ks}
    total = 0
    for arr in rank_lists:
        arr = np.asarray(arr, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("each rank list must be (n, 2): score, is_positive")
        labels = arr[:, 1]
        if labels.sum() < 1:
            raise ValueError("each rank list needs at least one positive")
        scores = arr[:, 0]
        pos_score = scores[labels == 1].max()
        # Pessimistic rank: strictly higher scores + ties all outrank it.
        n_better = int((scores[labels == 0] >= pos_score).sum())
        rank = n_better + 1
        total += 1
        for k in ks:
            if rank <= k:
                hits[k] += 1
    if total == 0:
        raise ValueError("no rank lists given")
    return {k: hits[k] / total for k in ks}


def mean_absolute_error(y_true, y_pred) -> float:
    """MAE; the objective and metric of the forecasting task (§7)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    return float(np.abs(y_true - y_pred).mean())


def accuracy(y_true, y_pred) -> float:
    """Plain accuracy for 0/1 predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return float((y_true == y_pred).mean())
