"""Additional ranking metrics beyond the paper's HR@k.

MRR, mean rank and NDCG@k over the same per-event ranking lists; useful
for finer-grained model comparison (the paper's HR@k quantizes heavily on
small test sets).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _positive_rank(arr: np.ndarray) -> int:
    """Pessimistic 1-based rank of the positive in one (score, label) list."""
    arr = np.asarray(arr, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("each rank list must be (n, 2): score, is_positive")
    labels = arr[:, 1]
    if labels.sum() < 1:
        raise ValueError("each rank list needs at least one positive")
    scores = arr[:, 0]
    pos_score = scores[labels == 1].max()
    return int((scores[labels == 0] >= pos_score).sum()) + 1


def mean_reciprocal_rank(rank_lists: Sequence[np.ndarray]) -> float:
    """MRR of the positive coin across events."""
    if not len(rank_lists):
        raise ValueError("no rank lists given")
    return float(np.mean([1.0 / _positive_rank(arr) for arr in rank_lists]))


def mean_rank(rank_lists: Sequence[np.ndarray]) -> float:
    """Average 1-based rank of the positive coin."""
    if not len(rank_lists):
        raise ValueError("no rank lists given")
    return float(np.mean([_positive_rank(arr) for arr in rank_lists]))


def ndcg_at_k(rank_lists: Sequence[np.ndarray], k: int) -> float:
    """NDCG@k with binary relevance (one positive per list).

    With a single relevant item the ideal DCG is 1, so NDCG@k reduces to
    ``1 / log2(1 + rank)`` when the positive ranks within k, else 0.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if not len(rank_lists):
        raise ValueError("no rank lists given")
    gains = []
    for arr in rank_lists:
        rank = _positive_rank(arr)
        gains.append(1.0 / np.log2(1.0 + rank) if rank <= k else 0.0)
    return float(np.mean(gains))


def ranking_report(rank_lists: Sequence[np.ndarray],
                   ks: Sequence[int] = (1, 5, 10)) -> dict[str, float]:
    """Bundle of MRR, mean rank and NDCG@k."""
    report = {
        "mrr": mean_reciprocal_rank(rank_lists),
        "mean_rank": mean_rank(rank_lists),
    }
    for k in ks:
        report[f"ndcg@{k}"] = ndcg_at_k(rank_lists, k)
    return report
