"""repro.store — durable, append-only event log for the serving stack.

Everything the serving path streams (announcements, ranked alerts,
observed releases, periodic stats snapshots) can persist through an
:class:`EventStore` as it flows; :func:`rehydrate_service` replays a
store into a fresh service after a crash, restoring rankings
bit-identically (ISSUE 7 / ROADMAP item 2).  The default backend is a
single WAL-mode SQLite file (:class:`SQLiteEventStore`); tests and
store-less deployments use :class:`NullEventStore`.
"""

from repro.store.base import EventStore, NullEventStore, StoreError
from repro.store.rehydrate import rehydrate_service
from repro.store.sqlite import SQLiteEventStore, STORE_SCHEMA_VERSION

__all__ = [
    "EventStore",
    "NullEventStore",
    "SQLiteEventStore",
    "STORE_SCHEMA_VERSION",
    "StoreError",
    "rehydrate_service",
]
