"""Rebuild serving state from a durable event store after a crash.

A gateway booted with ``--store`` on a file that already holds history
replays it before taking traffic:

1. every recorded **observation** is folded back into the fresh
   :class:`~repro.serving.PredictionService` in append order via
   :meth:`adopt_observation` — so the per-channel history cache (and
   therefore every future ranking) is **bit-identical** to the moment
   the previous process died: the model weights come from the artifact,
   the histories from the log, and the features are deterministic
   functions of both;
2. service stats restore from the latest periodic **snapshot**, then the
   counters the store can reconstruct *exactly* are overridden with the
   durable truth: ``alerts`` = stored alert rows, ``scored_rows`` = sum
   of their candidate counts.  Sessionizer-level counters (messages,
   announcements, …) keep the snapshot value — they count events the
   gateway path never increments, so the snapshot is the best record.

The replay touches only the service; it never writes to the store
(``adopt_observation`` exists precisely so the idempotent append path
is not re-entered during its own replay).
"""

from __future__ import annotations

from repro.store.base import EventStore


def rehydrate_service(service, store: EventStore) -> dict:
    """Fold a store's history into a freshly built service.

    Returns a small summary dict (observation/alert counts, whether a
    stats snapshot was found) for boot-time logging.
    """
    observations = store.observations()
    for event_id, announcement in observations:
        service.adopt_observation(announcement, event_id)
    if getattr(service, "_follow_store", False):
        # Pooled workers: everything replayed so far is covered; the
        # cursor resumes from the newest row instead of refolding.
        service.enable_store_following(store.last_observation_seq())

    snapshot = store.latest_stats()
    if snapshot is not None:
        service.stats.restore(snapshot)

    counts = store.counts()
    if counts.get("alerts"):
        # Exact per-row truth beats the (possibly stale) snapshot.
        service.stats.alerts = counts["alerts"]
        scored = getattr(store, "scored_rows", None)
        if scored is not None:
            service.stats.scored_rows = scored()

    return {
        "observations": len(observations),
        "alerts": counts.get("alerts", 0),
        "announcements": counts.get("announcements", 0),
        "stats_snapshot": snapshot is not None,
    }


__all__ = ["rehydrate_service"]
