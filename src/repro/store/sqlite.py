"""WAL-mode SQLite backend for the event store.

One file holds the whole serving history: four append-only tables
(``announcements``, ``alerts``, ``observations``, ``stats_snapshots``)
plus a ``meta`` table pinning the store schema version.  Durability
stance:

* ``journal_mode=WAL`` + ``synchronous=NORMAL`` — every append is its
  own committed transaction; a committed append survives ``kill -9`` of
  the writing process (the WAL write has left the process), which is the
  crash model the recovery tests exercise;
* ``check_same_thread=False`` with one process-level lock — the gateway
  appends from N handler threads; SQLite connections are not concurrency
  -safe, so all access is serialized here (appends are sub-millisecond,
  far off the scoring path's critical section);
* a schema-version mismatch or a non-SQLite file raises
  :class:`StoreError` at open — never a half-read history.

Alert rows carry both the denormalized columns queries filter on
(channel, time, announced rank) and the full wire payload
(:meth:`Alert.to_payload` JSON).  ``json`` serializes floats via
``repr``, so a ranking read back from the store decodes **bit-for-bit**
equal to the one that was served — the property the kill-9 recovery
tests pin.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from repro.store.base import EventStore, StoreError
from repro.telemetry.metrics import default_registry

#: Bumped only for incompatible table changes; additive columns do not.
STORE_SCHEMA_VERSION = 1

_TABLES = ("announcements", "alerts", "observations", "stats_snapshots")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS announcements (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    channel_id  INTEGER NOT NULL,
    coin_id     INTEGER NOT NULL,
    exchange_id INTEGER NOT NULL,
    pair        TEXT    NOT NULL,
    time        REAL    NOT NULL
);
CREATE TABLE IF NOT EXISTS alerts (
    seq            INTEGER PRIMARY KEY AUTOINCREMENT,
    channel_id     INTEGER NOT NULL,
    coin_id        INTEGER NOT NULL,
    exchange_id    INTEGER NOT NULL,
    pair           TEXT    NOT NULL,
    time           REAL    NOT NULL,
    announced_rank INTEGER NOT NULL,
    n_scores       INTEGER NOT NULL,
    latency_ms     REAL    NOT NULL,
    payload        TEXT    NOT NULL
);
CREATE INDEX IF NOT EXISTS alerts_channel_time
    ON alerts (channel_id, time);
CREATE TABLE IF NOT EXISTS observations (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    event_id    TEXT    NOT NULL UNIQUE,
    channel_id  INTEGER NOT NULL,
    coin_id     INTEGER NOT NULL,
    exchange_id INTEGER NOT NULL,
    pair        TEXT    NOT NULL,
    time        REAL    NOT NULL
);
CREATE TABLE IF NOT EXISTS stats_snapshots (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    created REAL NOT NULL,
    payload TEXT NOT NULL
);
"""


class SQLiteEventStore(EventStore):
    """Durable event log in one SQLite file (``:memory:`` for tests)."""

    def __init__(self, path: str | Path):
        self.path = str(path)
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(
                self.path, check_same_thread=False, isolation_level=None,
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            # N pooled gateway workers share one store file; without a
            # busy timeout a writer that collides with another process's
            # commit fails immediately with SQLITE_BUSY instead of
            # waiting its turn.
            self._conn.execute("PRAGMA busy_timeout=5000")
            self._conn.executescript(_SCHEMA)
            self._check_meta()
        except sqlite3.Error as exc:
            raise StoreError(
                f"cannot open event store at {self.path!r}: {exc}"
            ) from exc
        registry = default_registry()
        self._m_appends = registry.counter(
            "store_appends_total",
            "Rows appended to the durable event store.", ("table",),
        )
        self._m_duplicates = registry.counter(
            "store_duplicates_total",
            "Appends skipped because the event id was already recorded.",
            ("table",),
        )

    def _check_meta(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) "
                "VALUES ('created', ?)", (repr(time.time()),),
            )
            return
        found = row[0]
        if found != str(STORE_SCHEMA_VERSION):
            raise StoreError(
                f"event store {self.path!r} has schema version {found}, "
                f"this code speaks {STORE_SCHEMA_VERSION}; refusing to "
                "read a half-understood history"
            )

    # -- appends -------------------------------------------------------------

    def _execute(self, sql: str, params=()):
        with self._lock:
            try:
                return self._conn.execute(sql, params)
            except sqlite3.Error as exc:
                raise StoreError(
                    f"event store {self.path!r} append/query failed: {exc}"
                ) from exc

    def append_announcement(self, announcement) -> None:
        self._execute(
            "INSERT INTO announcements "
            "(channel_id, coin_id, exchange_id, pair, time) "
            "VALUES (?, ?, ?, ?, ?)",
            (announcement.channel_id, announcement.coin_id,
             announcement.exchange_id, announcement.pair,
             announcement.time),
        )
        self._m_appends.labels(table="announcements").inc()

    def append_alert(self, alert) -> None:
        announcement = alert.announcement
        self._execute(
            "INSERT INTO alerts (channel_id, coin_id, exchange_id, pair, "
            "time, announced_rank, n_scores, latency_ms, payload) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (announcement.channel_id, announcement.coin_id,
             announcement.exchange_id, announcement.pair, announcement.time,
             alert.announced_rank, len(alert.ranking.scores),
             alert.latency_ms, json.dumps(alert.to_payload())),
        )
        self._m_appends.labels(table="alerts").inc()

    def append_observation(self, announcement, event_id: str) -> bool:
        cursor = self._execute(
            "INSERT OR IGNORE INTO observations "
            "(event_id, channel_id, coin_id, exchange_id, pair, time) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (event_id, announcement.channel_id, announcement.coin_id,
             announcement.exchange_id, announcement.pair,
             announcement.time),
        )
        fresh = cursor.rowcount == 1
        if fresh:
            self._m_appends.labels(table="observations").inc()
        else:
            self._m_duplicates.labels(table="observations").inc()
        return fresh

    def append_stats(self, summary: dict) -> None:
        self._execute(
            "INSERT INTO stats_snapshots (created, payload) VALUES (?, ?)",
            (time.time(), json.dumps(summary)),
        )
        self._m_appends.labels(table="stats_snapshots").inc()

    # -- queries -------------------------------------------------------------

    def observations(self) -> list:
        from repro.serving.online import Announcement

        rows = self._execute(
            "SELECT event_id, channel_id, coin_id, exchange_id, pair, time "
            "FROM observations ORDER BY seq"
        ).fetchall()
        return [
            (event_id, Announcement(channel_id=channel_id, coin_id=coin_id,
                                    exchange_id=exchange_id, pair=pair,
                                    time=when))
            for event_id, channel_id, coin_id, exchange_id, pair, when
            in rows
        ]

    def observations_since(self, seq: int) -> list:
        from repro.serving.online import Announcement

        rows = self._execute(
            "SELECT seq, event_id, channel_id, coin_id, exchange_id, pair, "
            "time FROM observations WHERE seq > ? ORDER BY seq",
            (int(seq),),
        ).fetchall()
        return [
            (row_seq,
             event_id,
             Announcement(channel_id=channel_id, coin_id=coin_id,
                          exchange_id=exchange_id, pair=pair, time=when))
            for row_seq, event_id, channel_id, coin_id, exchange_id, pair,
            when in rows
        ]

    def last_observation_seq(self) -> int:
        row = self._execute(
            "SELECT COALESCE(MAX(seq), 0) FROM observations"
        ).fetchone()
        return int(row[0])

    def _alert_window(self, *, channel_id=None, since=None, until=None,
                      limit=None) -> tuple[str, list]:
        clauses, params = [], []
        if channel_id is not None:
            clauses.append("channel_id = ?")
            params.append(int(channel_id))
        if since is not None:
            clauses.append("time >= ?")
            params.append(float(since))
        if until is not None:
            clauses.append("time < ?")
            params.append(float(until))
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        tail = ""
        if limit is not None:
            if limit < 0:
                raise ValueError("limit must be >= 0")
            tail = " LIMIT ?"
            params.append(int(limit))
        return where, params, tail

    def alerts(self, *, channel_id: int | None = None,
               since: float | None = None, until: float | None = None,
               limit: int | None = None) -> list:
        from repro.serving.service import Alert

        where, params, tail = self._alert_window(
            channel_id=channel_id, since=since, until=until, limit=limit,
        )
        rows = self._execute(
            f"SELECT payload FROM alerts{where} ORDER BY seq{tail}", params,
        ).fetchall()
        try:
            return [Alert.from_payload(json.loads(row[0])) for row in rows]
        except (ValueError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"event store {self.path!r} holds an undecodable alert "
                f"payload: {exc}"
            ) from exc

    def latest_stats(self) -> dict | None:
        row = self._execute(
            "SELECT payload FROM stats_snapshots ORDER BY seq DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"event store {self.path!r} holds an undecodable stats "
                f"snapshot: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise StoreError(
                f"event store {self.path!r} stats snapshot is not an object"
            )
        return payload

    def counts(self) -> dict[str, int]:
        return {
            table: int(self._execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0])
            for table in _TABLES
        }

    def scored_rows(self) -> int:
        """Total candidate rows across every stored alert (exact)."""
        row = self._execute("SELECT COALESCE(SUM(n_scores), 0) FROM alerts"
                            ).fetchone()
        return int(row[0])

    def time_span(self) -> tuple[float, float] | None:
        """``(earliest, latest)`` alert time, or ``None`` when empty."""
        row = self._execute("SELECT MIN(time), MAX(time) FROM alerts"
                            ).fetchone()
        if row is None or row[0] is None:
            return None
        return float(row[0]), float(row[1])

    def hit_rate(self, k: int, *, since: float | None = None,
                 until: float | None = None) -> tuple[int, int]:
        """Backtest HR@k over stored alerts whose released coin is known.

        Only alerts with ``coin_id >= 0`` participate (a ``-1`` probe has
        no ground truth), mirroring offline evaluation.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        where, params, _tail = self._alert_window(since=since, until=until)
        prefix = where + (" AND " if where else " WHERE ") + "coin_id >= 0"
        total = int(self._execute(
            f"SELECT COUNT(*) FROM alerts{prefix}", params,
        ).fetchone()[0])
        hits = int(self._execute(
            f"SELECT COUNT(*) FROM alerts{prefix} "
            "AND announced_rank BETWEEN 1 AND ?", [*params, int(k)],
        ).fetchone()[0])
        return hits, total

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Checkpoint the WAL into the main database file."""
        with self._lock:
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:  # pragma: no cover - advisory only
                pass

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - already closed
                pass


__all__ = ["SQLiteEventStore", "STORE_SCHEMA_VERSION"]
