"""The event-store protocol: durable, append-only serving history.

Everything the serving stack streams — announcements submitted for
ranking, the ranked alerts themselves, observed (resolved) releases, and
periodic :class:`~repro.serving.ServiceStats` snapshots — can be
persisted through an :class:`EventStore` as it flows, so a crashed
gateway restarts with its history instead of cold (ISSUE 7 / ROADMAP
item 2).

Contract highlights:

* **append-only** — rows are never updated or deleted; the store is a
  log, and queries are views over it;
* **idempotent observations** — every observation carries an
  ``event_id``; appending a duplicate id is a no-op that reports
  ``False``, which is what makes client retries and crash/replay
  recovery safe ("no event is double-counted");
* **crash-durable** — an append that returned is expected to survive
  ``kill -9`` of the writing process (the SQLite backend commits every
  append to a WAL).

:class:`NullEventStore` is the do-nothing stand-in so call sites can be
written unconditionally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.online import Announcement
    from repro.serving.service import Alert


class StoreError(RuntimeError):
    """The store is unusable (bad path, foreign schema, corrupt file)."""


class EventStore:
    """Interface every event-store backend implements."""

    # -- appends (the write path) --------------------------------------------

    def append_announcement(self, announcement: "Announcement") -> None:
        raise NotImplementedError

    def append_alert(self, alert: "Alert") -> None:
        raise NotImplementedError

    def append_observation(self, announcement: "Announcement",
                           event_id: str) -> bool:
        """Persist one observed release; ``False`` when ``event_id`` was
        already recorded (the fold must then be skipped too)."""
        raise NotImplementedError

    def append_stats(self, summary: dict) -> None:
        raise NotImplementedError

    # -- queries (the read path) ---------------------------------------------

    def observations(self) -> list[tuple[str, "Announcement"]]:
        """Every recorded observation, in append order."""
        raise NotImplementedError

    def observations_since(
            self, seq: int) -> list[tuple[int, str, "Announcement"]]:
        """``(seq, event_id, announcement)`` rows with ``seq > seq``, in
        append order.  The cursor-style read that lets N pooled workers
        treat one store as a replication bus: each worker folds the
        others' observations from where it last left off."""
        raise NotImplementedError

    def last_observation_seq(self) -> int:
        """Sequence number of the newest observation (0 when empty)."""
        raise NotImplementedError

    def alerts(self, *, channel_id: int | None = None,
               since: float | None = None, until: float | None = None,
               limit: int | None = None) -> list["Alert"]:
        raise NotImplementedError

    def latest_stats(self) -> dict | None:
        raise NotImplementedError

    def counts(self) -> dict[str, int]:
        raise NotImplementedError

    def hit_rate(self, k: int, *, since: float | None = None,
                 until: float | None = None) -> tuple[int, int]:
        """``(hits, total)`` of alerts whose released coin ranked <= k."""
        raise NotImplementedError

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Push buffered state toward disk (best effort; appends are
        already committed individually)."""

    def close(self) -> None:
        pass

    def __enter__(self) -> "EventStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullEventStore(EventStore):
    """Accepts everything, remembers nothing; queries answer empty.

    ``append_observation`` always reports "fresh" so in-memory dedup
    (which the serving layer performs regardless) stays the only gate.
    """

    def append_announcement(self, announcement) -> None:
        pass

    def append_alert(self, alert) -> None:
        pass

    def append_observation(self, announcement, event_id: str) -> bool:
        return True

    def append_stats(self, summary: dict) -> None:
        pass

    def observations(self) -> list:
        return []

    def observations_since(self, seq: int) -> list:
        return []

    def last_observation_seq(self) -> int:
        return 0

    def alerts(self, **kwargs) -> list:
        return []

    def latest_stats(self) -> dict | None:
        return None

    def counts(self) -> dict[str, int]:
        return {"announcements": 0, "alerts": 0, "observations": 0,
                "stats_snapshots": 0}

    def hit_rate(self, k: int, **kwargs) -> tuple[int, int]:
        return (0, 0)


__all__ = ["EventStore", "NullEventStore", "StoreError"]
