"""A bounded admission queue: load shedding at the serving front door.

:class:`AdmissionQueue` caps how many requests may be *in flight* at
once.  Admission is non-blocking — a request over the bound is refused
immediately (the gateway answers 429 ``overloaded``) instead of queueing
unboundedly until every caller times out anyway.  Refusing early is the
whole point: under overload, a fast typed "no" preserves the latency of
the requests that *are* admitted.

The queue doubles as the graceful-shutdown rendezvous: :meth:`drain`
blocks until every admitted request has left, which is exactly the
"finish in-flight work" step of SIGTERM handling.
"""

from __future__ import annotations

import threading


class AdmissionQueue:
    """Bounded concurrent-admission counter with a drain barrier.

    Parameters
    ----------
    limit:
        Maximum concurrently admitted requests.  ``None`` means
        unbounded (the gate still counts, so drain works either way).
    """

    def __init__(self, limit: int | None = None):
        if limit is not None and limit < 0:
            raise ValueError("admission limit must be >= 0 (or None)")
        self.limit = limit
        self._inflight = 0
        self._admitted_total = 0
        self._shed_total = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def shed_total(self) -> int:
        with self._lock:
            return self._shed_total

    def try_enter(self) -> bool:
        """Admit the caller, or refuse immediately when at the bound."""
        with self._lock:
            if self.limit is not None and self._inflight >= self.limit:
                self._shed_total += 1
                return False
            self._inflight += 1
            self._admitted_total += 1
            return True

    def leave(self) -> None:
        """Mark one admitted request finished (success or failure)."""
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("leave() without a matching try_enter()")
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no request is in flight; True when fully drained.

        Callers stop admitting first (the gateway sets its draining flag
        and closes the listener), then wait here for stragglers.
        """
        with self._lock:
            return self._idle.wait_for(lambda: self._inflight == 0,
                                       timeout=timeout)


__all__ = ["AdmissionQueue"]
