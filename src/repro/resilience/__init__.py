"""repro.resilience — fault-tolerance primitives for the serving stack.

Four small, dependency-free building blocks (ISSUE 7):

* :class:`Deadline` / :func:`deadline_scope` — per-request wall-clock
  budgets, threaded through a contextvar so queue/lock layers can refuse
  work nobody is waiting for any more (gateway: 503 ``deadline_exceeded``);
* :class:`RetryPolicy` / :func:`call_with_retry` — exponential backoff
  with downward jitter; the :class:`~repro.gateway.GatewayClient` retries
  connection errors and retryable 5xx/429 responses under one of these;
* :class:`CircuitBreaker` — stop hammering a peer that is demonstrably
  down; refused calls fail locally in microseconds instead of burning a
  timeout each;
* :class:`AdmissionQueue` — bounded in-flight admission (gateway: 429
  ``overloaded``) plus the drain barrier graceful shutdown waits on.

All of it is plain stdlib and fully deterministic under injected clocks
and RNGs — see ``tests/resilience/test_primitives.py``.
"""

from repro.resilience.admission import AdmissionQueue
from repro.resilience.breaker import CircuitBreaker, CircuitOpenError
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)
from repro.resilience.retry import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY",
    "RetryPolicy",
    "call_with_retry",
    "current_deadline",
    "deadline_scope",
]
