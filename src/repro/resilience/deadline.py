"""Deadline budgets: a wall-clock allowance a request must finish within.

A :class:`Deadline` is an absolute point on the monotonic clock.  The
serving stack threads the *current request's* deadline through a
contextvar (:func:`deadline_scope` / :func:`current_deadline`) so layers
that queue or lock — the gateway's scoring section most of all — can ask
"is this request already dead?" without plumbing an argument through
every call.  A request whose budget is exhausted before scoring begins is
refused with the stable wire code ``deadline_exceeded`` instead of
burning a forward pass nobody is waiting for.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar


class DeadlineExceeded(RuntimeError):
    """Raised by :meth:`Deadline.check` once the budget is exhausted."""


class Deadline:
    """An absolute monotonic-clock deadline.

    Parameters
    ----------
    budget_seconds:
        Seconds from *now* until the deadline.  Must be > 0.
    clock:
        Injectable monotonic clock (tests freeze time with this).
    """

    __slots__ = ("_clock", "_expires", "budget_seconds")

    def __init__(self, budget_seconds: float, *, clock=time.monotonic):
        if budget_seconds <= 0:
            raise ValueError("deadline budget must be > 0 seconds")
        self.budget_seconds = float(budget_seconds)
        self._clock = clock
        self._expires = clock() + self.budget_seconds

    @classmethod
    def after_ms(cls, milliseconds: float, *,
                 clock=time.monotonic) -> "Deadline":
        return cls(float(milliseconds) / 1000.0, clock=clock)

    def remaining(self) -> float:
        """Seconds left, clamped at 0."""
        return max(0.0, self._expires - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is gone."""
        if self.expired:
            raise DeadlineExceeded(
                f"{what}: deadline of {self.budget_seconds * 1000.0:.0f}ms "
                "exhausted"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline(budget={self.budget_seconds:.3f}s, "
                f"remaining={self.remaining():.3f}s)")


#: The deadline of the request currently being handled, if any.  Each
#: gateway handler thread sets it for the span of one request.
_current: ContextVar[Deadline | None] = ContextVar("repro_deadline",
                                                  default=None)


def current_deadline() -> Deadline | None:
    """The ambient request deadline, or ``None`` outside a scope."""
    return _current.get()


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Install ``deadline`` as the ambient one for the enclosed block.

    ``None`` is accepted and simply leaves no deadline in scope, so call
    sites need no conditional wrapping.
    """
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "current_deadline",
    "deadline_scope",
]
