"""A circuit breaker: stop hammering a peer that is demonstrably down.

Classic three-state machine, thread-safe:

* **closed** — traffic flows; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures every call
  is refused locally (:class:`CircuitOpenError`) without touching the
  socket, for ``reset_after`` seconds.  A hung or dead gateway costs the
  caller one timeout, not one timeout per request.
* **half-open** — once ``reset_after`` elapses, a single probe call is
  let through; success closes the circuit, failure re-opens it (and
  restarts the clock).

The breaker never swallows or transforms the underlying error — callers
``allow()`` before the attempt and ``record_success()`` /
``record_failure()`` after, so the typed-error contract of the transport
stays intact.
"""

from __future__ import annotations

import threading
import time


class CircuitOpenError(RuntimeError):
    """The breaker is open: the call was refused without being attempted."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        #: Seconds until the breaker will admit a probe.
        self.retry_after = retry_after


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open probes."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, *, failure_threshold: int = 5,
                 reset_after: float = 30.0, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after <= 0:
            raise ValueError("reset_after must be > 0 seconds")
        self.failure_threshold = failure_threshold
        self.reset_after = float(reset_after)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def allow(self) -> None:
        """Admit one call or raise :class:`CircuitOpenError`.

        In the open state, the first caller past ``reset_after`` becomes
        the half-open probe; everyone else keeps being refused until the
        probe reports back.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return
            elapsed = self._clock() - self._opened_at
            if self._state == self.OPEN and elapsed >= self.reset_after:
                self._state = self.HALF_OPEN
                self._probe_inflight = False
            if self._state == self.HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return
            retry_after = max(0.0, self.reset_after - elapsed)
            raise CircuitOpenError(
                f"circuit breaker is {self._state} after "
                f"{self._failures} consecutive failures; "
                f"next probe in {retry_after:.1f}s",
                retry_after,
            )

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN \
                    or self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False


__all__ = ["CircuitBreaker", "CircuitOpenError"]
