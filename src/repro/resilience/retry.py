"""Exponential backoff with jitter, as a policy object plus a runner.

:class:`RetryPolicy` is pure arithmetic — attempt number in, sleep
duration out — so it can be unit-tested exhaustively and shared by any
caller (the :class:`~repro.gateway.GatewayClient` uses it for connection
errors and retryable 5xx/429 responses).  :func:`call_with_retry` is the
generic runner for callers outside the client.

Jitter is *full-range downward*: the sleep is drawn uniformly from
``[delay * (1 - jitter), delay]``.  A fleet of clients retrying a
recovering server therefore de-synchronizes instead of stampeding it on
exact power-of-two boundaries.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Tuple, Type


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts to make and how long to sleep between them.

    ``max_attempts`` counts the *first* try: ``max_attempts=1`` disables
    retries entirely, ``max_attempts=3`` allows two retries.
    """

    max_attempts: int = 3
    base_delay: float = 0.05     # seconds before the first retry
    multiplier: float = 2.0      # exponential growth per retry
    max_delay: float = 2.0       # cap on any single sleep
    jitter: float = 0.5          # fraction of the delay randomized away

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Sleep before retry number ``attempt`` (1-based: the sleep after
        the first failed try is ``delay(1)``)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        draw = (rng or random).random()
        return raw * (1.0 - self.jitter * draw)


#: The client SDK's default: three attempts, 50ms → 100ms backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Retries disabled (one attempt, no sleeps) — for probes and tests.
NO_RETRY = RetryPolicy(max_attempts=1)


def call_with_retry(fn: Callable, *, policy: RetryPolicy = DEFAULT_RETRY_POLICY,
                    retryable: Tuple[Type[BaseException], ...] = (Exception,),
                    on_retry: Callable | None = None,
                    sleep: Callable[[float], None] = time.sleep,
                    rng: random.Random | None = None):
    """Call ``fn()`` under ``policy``, retrying on ``retryable`` errors.

    ``on_retry(attempt, exc, delay)`` is invoked before each sleep —
    the hook where callers count ``client_retries_total``.  The final
    failure is re-raised unchanged, so the caller's typed-error contract
    survives the retry layer.
    """
    attempt = 1
    while True:
        try:
            return fn()
        except retryable as exc:
            if attempt >= policy.max_attempts:
                raise
            pause = policy.delay(attempt, rng)
            if on_retry is not None:
                on_retry(attempt, exc, pause)
            if pause > 0:
                sleep(pause)
            attempt += 1


__all__ = [
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY",
    "RetryPolicy",
    "call_with_retry",
]
