"""Neutral market-domain constants shared by every data backend.

These used to live in :mod:`repro.simulation.coins`, which made every
consumer of an exchange name or pairing symbol import the *simulator* —
even layers (serving, features, core) that are backend-agnostic and must
also run against recorded real-world dumps (:mod:`repro.sources`).  They
are plain domain facts, not simulation parameters, so they live here with
no dependency on any backend.

``repro.simulation.coins`` re-exports both names for backward
compatibility.
"""

from __future__ import annotations

# Names of the supported exchanges; index = exchange_id.  The first four
# mirror the paper's Table: Binance, Yobit, Hotbit, Kucoin.
EXCHANGE_NAMES = [
    "Binance", "Yobit", "Hotbit", "Kucoin", "Bittrex", "Gateio",
    "Okex", "Huobi", "Poloniex", "Bitmax", "Bilaxy", "Mexc",
    "Latoken", "Probit", "Coinex", "Bigone", "Whitebit", "Bitmart",
]

# The pairing majors (coin ids 0..2 in every universe); they are never
# pump candidates.
PAIR_SYMBOLS = ["BTC", "ETH", "USDT"]
