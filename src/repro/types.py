"""Backend-neutral data-plane types.

:class:`Message` is the unit every feed backend yields — the synthetic
Telegram generator, a recorded CSV/JSONL dump (:mod:`repro.sources`) or a
future live connector.  It used to be defined inside
``repro.simulation.messages``, which forced the streaming service to
import the simulator just to type its inputs; it now lives here, and the
simulation module re-exports it for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

# Message kinds; the first five are ground-truth "pump messages" (§3.2).
PUMP_KINDS = frozenset({"announcement", "countdown", "final_call", "release", "review"})
ALL_KINDS = PUMP_KINDS | {"vip_release", "topic", "sentiment", "invite", "generic"}

OCR_IMAGE_TEXT = "[OCR-proof image]"


@dataclass(frozen=True)
class Message:
    """A single Telegram message, whatever backend produced it."""

    message_id: int
    channel_id: int
    time: float          # fractional hours since the dataset epoch
    text: str
    kind: str            # one of ALL_KINDS
    event_id: int = -1   # owning pump event, if known (-1 for real data)

    @property
    def is_pump_message(self) -> bool:
        """Ground-truth pump-message label (§3.2's annotation)."""
        return self.kind in PUMP_KINDS
