"""Telegram message generation — the raw-text substrate of §3.

Produces the full message stream the data-collection pipeline consumes:

* per-event pump choreography: announcement → countdowns/rules → "next
  message will be the coin name" → coin release (occasionally an OCR-proof
  image) → post-pump review, in *every* coordinating channel;
* VIP pre-releases in private partner channels (hours before the pump);
* cluster-themed coin chatter (same-cluster coins co-occur — the semantic
  signal behind Figure 6 and the cold-start word embeddings);
* sentiment chatter whose polarity tracks the latent market mood (the §7
  forecasting signal);
* invitation adverts realizing the channel graph's edges (snowball food);
* keyword-free generic noise the §3.2 filter must discard.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.simulation.channels import ChannelPopulation
from repro.simulation.coins import CoinUniverse
from repro.simulation.events import PumpEvent
from repro.simulation.market import MarketSimulator
from repro.utils.config import ReproConfig
from repro.utils.timeutil import to_timestamp

# Message and its kind taxonomy are backend-neutral (a recorded dump or a
# live feed yields the same type) and live in repro.types; re-exported here
# for backward compatibility.
from repro.types import ALL_KINDS, OCR_IMAGE_TEXT, PUMP_KINDS, Message  # noqa: E402

__all__ = ["ALL_KINDS", "OCR_IMAGE_TEXT", "PUMP_KINDS", "Message",
           "MessageGenerator"]

_COUNTDOWN_OFFSETS = (36.0, 24.0, 12.0, 6.0, 3.0, 1.0, 0.5)

_GENERIC_BANK = (
    "gm everyone, wish you a wonderful day",
    "anyone watching the football game tonight?",
    "what wallet do you recommend for staking?",
    "the conference last week was interesting",
    "happy new year to this community",
    "did you read the whitepaper they published?",
    "my internet keeps dropping today, sorry if i miss replies",
    "welcome to all new members, say hi",
    "weather is crazy here, stuck inside all weekend",
    "who is going to the meetup in singapore?",
)

_POSITIVE_BANK = (
    "btc looking very bullish today, huge gains incoming",
    "bitcoin breakout soon, feeling extremely good about this rally",
    "massive green candles, btc to the moon, easy profit",
    "loving this bitcoin strength, buy the dip, gains everywhere",
    "btc recovery is strong, very confident, great opportunity",
)

_NEGATIVE_BANK = (
    "btc looking weak, fear everywhere, expecting a crash",
    "bitcoin dumping hard, terrible losses today",
    "this btc chart is bleeding, panic selling everywhere",
    "bearish on bitcoin, risky market, expecting lower lows",
    "btc collapse incoming, worried about my bags",
)

_TOPIC_TEMPLATES = (
    "{a} and {b} charts look similar, watching both closely",
    "accumulating {a}, also keeping an eye on {b} and {c}",
    "{a} volume rising, {b} might follow like last time",
    "anyone holding {a}? thinking of swapping some into {b}",
    "{a} {b} {c} all in the same sector, one of them will move",
)

# Pump-adjacent vocabulary in innocent contexts: these pass the keyword
# filter but are ground-truth non-pump, giving the Table 1 classifiers a
# realistic error surface instead of a trivially separable corpus.
_HARD_NEGATIVE_BANK = (
    "that pump yesterday was crazy, glad i stayed out of it",
    "be careful with pump groups, members always hold the bag",
    "stop asking when pump, nobody can time this market",
    "my portfolio could use a pump to be honest",
    "price target for btc this year? any predictions",
    "i never sell at a loss, i just hold until it is green again",
    "3 hours left until the binance maintenance window, be ready",
    "the volume on binance today is absolutely insane",
    "lost money following paid signals last month, never again",
    "they said buy fast and hold, classic recipe to get dumped on",
    "reminder that the exchange delists three pairs tomorrow",
    "only 10 minutes left in the trading competition, good luck",
    # Terse countdowns for maintenance windows / trading competitions: these
    # are *string-identical* to terse pump countdowns, so no text classifier
    # can resolve them — the irreducible error real annotators face.
    "36 hours left!",
    "24 hours left!",
    "12 hours left!",
    "6 hours left!",
    "3 hours left!",
    "1 hours left!",
    "30 minutes left!",
    "10 minutes left!",
)


class MessageGenerator:
    """Deterministic message-stream builder for a world."""

    def __init__(self, config: ReproConfig, universe: CoinUniverse,
                 channels: ChannelPopulation, market: MarketSimulator):
        self.config = config
        self.universe = universe
        self.channels = channels
        self.market = market
        self._rng = np.random.default_rng(config.seed * 92821 + 5)
        self._next_id = 0

    def _emit(self, out: list[Message], channel_id: int, time: float, text: str,
              kind: str, event_id: int = -1) -> None:
        out.append(Message(self._next_id, int(channel_id), float(time), text,
                           kind, event_id))
        self._next_id += 1

    # -- pump choreography ---------------------------------------------------

    def _announcement_text(self, event: PumpEvent) -> str:
        exchange = self.universe.exchange_name(event.exchange_id)
        when = to_timestamp(event.hour)
        return (
            f"BIG PUMP ANNOUNCEMENT! Next pump on {exchange} at {when} UTC. "
            f"Pair: {event.pair}. Transfer your {event.pair} in advance and be "
            f"ready to buy fast. Our next target will bring huge profit!"
        )

    def _countdown_text(self, hours_left: float, event: PumpEvent) -> str:
        exchange = self.universe.exchange_name(event.exchange_id)
        # A slice of countdowns is terse — low lexical overlap with the
        # announcement templates, which keeps detection from being trivial.
        if self._rng.random() < 0.15:
            if hours_left >= 1.0:
                return f"{int(hours_left)} hours left!"
            return f"{int(hours_left * 60)} minutes left!"
        if hours_left >= 1.0:
            lead = f"{int(hours_left)} hours left until the pump on {exchange}!"
        else:
            lead = f"Only {int(hours_left * 60)} minutes left! Stay tuned."
        return lead + " Pump rules: buy fast, hold, do not sell immediately."

    def _release_text(self, event: PumpEvent) -> str:
        if self._rng.random() < 0.06:
            return OCR_IMAGE_TEXT  # anti-OCR image release
        symbol = self.universe.symbols[event.coin_id]
        if self._rng.random() < 0.5:
            return symbol
        return f"Coin: {symbol}"

    def _review_text(self, event: PumpEvent) -> str:
        symbol = self.universe.symbols[event.coin_id]
        gain = int((np.exp(event.profile.peak_log) - 1.0) * 100)
        return (
            f"What a pump! {symbol} reached +{gain}% within minutes. "
            f"Congrats to everyone who followed the signal, huge profit!"
        )

    def generate_event_messages(self, events: Iterable[PumpEvent]) -> list[Message]:
        """Full pump choreography for every event and coordinating channel."""
        rng = self._rng
        out: list[Message] = []
        for event in events:
            for channel_id in event.channel_ids:
                announce_at = event.time - rng.uniform(48.0, 120.0)
                self._emit(out, channel_id, announce_at,
                           self._announcement_text(event), "announcement",
                           event.event_id)
                for offset in _COUNTDOWN_OFFSETS:
                    if rng.random() < 0.85:
                        self._emit(out, channel_id, event.time - offset,
                                   self._countdown_text(offset, event),
                                   "countdown", event.event_id)
                self._emit(out, channel_id, event.time - 2.0 / 60.0,
                           "The next message will be the coin name!",
                           "final_call", event.event_id)
                self._emit(out, channel_id, event.time,
                           self._release_text(event), "release", event.event_id)
                if rng.random() < 0.8:
                    self._emit(out, channel_id, event.time + rng.uniform(0.2, 2.0),
                               self._review_text(event), "review", event.event_id)
            # VIP pre-release in the organizer's private channel.
            organizer = self.channels.pump_by_id().get(event.channel_ids[0])
            if organizer is not None and organizer.vip_channel_id is not None:
                lead = rng.uniform(0.5, 6.0)
                symbol = self.universe.symbols[event.coin_id]
                self._emit(
                    out, organizer.vip_channel_id, event.time - lead,
                    f"VIP early call: {symbol}. Accumulate quietly before the "
                    f"public release.",
                    "vip_release", event.event_id,
                )
        return out

    # -- chatter -------------------------------------------------------------------

    def _cluster_symbols(self, cluster: int) -> list[str]:
        ids = np.flatnonzero(self.universe.cluster == cluster)
        ids = ids[ids >= 3]  # skip pairing majors
        return [self.universe.symbols[i] for i in ids]

    def _topic_text(self, cluster: int) -> str:
        rng = self._rng
        pool = self._cluster_symbols(cluster)
        if len(pool) < 3:
            return str(rng.choice(_GENERIC_BANK))
        picks = rng.choice(pool, size=3, replace=False)
        template = str(rng.choice(_TOPIC_TEMPLATES))
        return template.format(a=picks[0].lower(), b=picks[1].lower(),
                               c=picks[2].lower())

    def _sentiment_text(self, time: float) -> str:
        """BTC chatter whose polarity follows the latent market mood."""
        mood = float(self.market.market_mood(np.array([time]))[0])
        p_pos = 1.0 / (1.0 + np.exp(-(2.2 * mood + self._rng.normal(0, 0.5))))
        bank = _POSITIVE_BANK if self._rng.random() < p_pos else _NEGATIVE_BANK
        return str(self._rng.choice(bank))

    def generate_chatter(self) -> list[Message]:
        """Background traffic for every channel plus invitation adverts."""
        rng = self._rng
        config = self.config
        out: list[Message] = []
        horizon = float(config.horizon_hours)
        pump_by_id = self.channels.pump_by_id()

        def channel_chatter(channel_id: int, cluster: int, count: int) -> None:
            times = np.sort(rng.uniform(0, horizon, count))
            for t in times:
                roll = rng.random()
                if roll < 0.3:
                    self._emit(out, channel_id, t, self._topic_text(cluster), "topic")
                elif roll < 0.5:
                    self._emit(out, channel_id, t, self._sentiment_text(t), "sentiment")
                elif roll < 0.72:
                    self._emit(out, channel_id, t,
                               str(rng.choice(_HARD_NEGATIVE_BANK)), "generic")
                else:
                    self._emit(out, channel_id, t,
                               str(rng.choice(_GENERIC_BANK)), "generic")

        for channel in self.channels.pump_channels:
            if channel.deleted:
                continue
            cluster = channel.clusters[0]
            channel_chatter(channel.channel_id, cluster,
                            max(4, config.chatter_per_channel // 2))
        for channel in self.channels.noise_channels:
            channel_chatter(channel.channel_id, channel.cluster,
                            config.chatter_per_channel)

        # Invitation adverts realize the exploration graph's edges.
        for src, dst in self.channels.invitations.edges():
            for _ in range(int(rng.integers(1, 3))):
                t = rng.uniform(0, horizon)
                self._emit(
                    out, src, t,
                    f"Our partner channel posts the best signals, join "
                    f"t.me/joinchat/{dst} before the next big move!",
                    "invite",
                )
        return out

    # -- dense BTC stream for the forecasting task (§7) -----------------------------

    def generate_btc_stream(self, start_hour: int, end_hour: int,
                            per_hour: float = 4.0) -> list[Message]:
        """Dense BTC-related group chatter between two hours.

        Message volume varies by hour (Poisson) and polarity tracks the
        market mood, mirroring the trading groups of §7.
        """
        if end_hour <= start_hour:
            raise ValueError("end_hour must exceed start_hour")
        rng = self._rng
        out: list[Message] = []
        group_ids = [c.channel_id for c in self.channels.noise_channels[:8]] or [1]
        for hour in range(start_hour, end_hour):
            count = int(rng.poisson(per_hour))
            for _ in range(count):
                t = hour + rng.random()
                channel = int(rng.choice(group_ids))
                if rng.random() < 0.75:
                    self._emit(out, channel, t, self._sentiment_text(t), "sentiment")
                else:
                    self._emit(out, channel, t,
                               str(rng.choice(_GENERIC_BANK)), "generic")
        return out

    # -- facade ---------------------------------------------------------------------

    def generate_all(self, events: Sequence[PumpEvent]) -> list[Message]:
        """Event choreography + chatter, chronologically sorted."""
        messages = self.generate_event_messages(events) + self.generate_chatter()
        messages.sort(key=lambda m: m.time)
        return messages
