"""repro.simulation — the synthetic world substrate.

Replaces the paper's external data sources (Telegram, Binance klines,
CoinGecko, PumpOlymp) with a deterministic generative model; see DESIGN.md
§2 for the substitution rationale.
"""

from repro.simulation.coins import EXCHANGE_NAMES, PAIR_SYMBOLS, CoinUniverse
from repro.simulation.market import (
    MOOD_PRICE_LAG,
    MarketSimulator,
    PumpProfile,
)
from repro.simulation.channels import ChannelPopulation, NoiseChannel, PumpChannel
from repro.simulation.events import EventLog, EventScheduler, PumpEvent
from repro.simulation.messages import (
    ALL_KINDS,
    OCR_IMAGE_TEXT,
    PUMP_KINDS,
    Message,
    MessageGenerator,
)
from repro.simulation.phases import (
    PhaseProfile,
    generate_phase_world,
    phase_profiles_for,
)
from repro.simulation.world import SyntheticWorld

__all__ = [
    "PhaseProfile",
    "generate_phase_world",
    "phase_profiles_for",
    "CoinUniverse",
    "EXCHANGE_NAMES",
    "PAIR_SYMBOLS",
    "MarketSimulator",
    "PumpProfile",
    "MOOD_PRICE_LAG",
    "ChannelPopulation",
    "PumpChannel",
    "NoiseChannel",
    "EventScheduler",
    "EventLog",
    "PumpEvent",
    "MessageGenerator",
    "Message",
    "PUMP_KINDS",
    "ALL_KINDS",
    "OCR_IMAGE_TEXT",
    "SyntheticWorld",
]
