"""Accumulation/ignition phase generators for SyntheticWorld scenarios.

The base simulator already plants the paper's *statistical* pre-pump
anatomy (Figure 4 ramps).  Phase profiles plant the sharper
microstructure patterns the §5.1 window features do **not** capture —
the ground truth the :mod:`repro.signals` engine is built to hit:

* **accumulation** — an extra slow log-price run-up with buy-side
  turnover imbalance (volume concentrated in up-hours);
* **quiet squeeze** — idiosyncratic price noise damped in the final
  hours before ignition (volatility compression);
* **ignition** — a last-hours volume surge with the price still pinned
  (volume-price decoupling).

Every event's target coin gets a full-strength profile; a few decoy
coins get the same treatment at a fraction of the amplitude, so signals
separate targets by *degree*, not by mere presence of activity.

Phase parameters derive from event fields through the counter-based
hash (no stateful RNG stream is consumed), and the simulator applies
them only when :meth:`MarketSimulator.attach_phases` was called — a
world without phases stays bit-for-bit identical to before this module
existed (pinned by tests/simulation/test_phases.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.markets import PAIR_SYMBOLS
from repro.simulation.market import _PRICE_STREAM
from repro.utils.hashrng import hash_normal, hash_uniform

#: Hash stream tag for phase parameters (market streams use 1..7).
_PHASE_STREAM = 11

#: Phase window boundaries, hours relative to the pump.
ACCUMULATION_START = -60.0
IGNITION_START = -6.0
#: Idiosyncratic-noise damping window (the pre-ignition "quiet squeeze").
COMPRESSION_START = -18.0

#: Decoy coins per event, at this fraction of the target's amplitudes.
DECOYS_PER_EVENT = 2
DECOY_SCALE = 0.35


@dataclass(frozen=True)
class PhaseProfile:
    """One coin's accumulation/ignition treatment around one pump."""

    coin_id: int
    time: float                 # pump time in fractional hours
    runup_log: float            # extra log-price drift over accumulation
    accum_volume_log: float     # log-volume lift over accumulation
    ignition_volume_log: float  # log-volume surge over ignition
    imbalance_log: float        # up-hour vs down-hour log-volume skew
    noise_damp: float           # fraction of price noise removed pre-pump


def _profile(event, coin_id: int, seed: int, tag: int,
             scale: float) -> PhaseProfile:
    """Derive one coin's phase parameters from hashed event fields."""
    u = np.array([
        float(hash_uniform(seed, _PHASE_STREAM, event.event_id, tag, k))
        for k in range(4)
    ])
    return PhaseProfile(
        coin_id=int(coin_id),
        time=float(event.time),
        runup_log=scale * (0.05 + 0.04 * u[0]),
        accum_volume_log=scale * (0.45 + 0.30 * u[1]),
        ignition_volume_log=scale * (1.10 + 0.50 * u[2]),
        imbalance_log=scale * (0.30 + 0.20 * u[3]),
        noise_damp=min(scale * 0.75, 0.95),
    )


def phase_profiles_for(events: Iterable, n_coins: int,
                       seed: int) -> list[PhaseProfile]:
    """Target + decoy phase profiles for every pump event."""
    tradable = n_coins - len(PAIR_SYMBOLS)
    if tradable <= 0:
        raise ValueError("universe has no tradable coins for phases")
    profiles = []
    for event in events:
        profiles.append(_profile(event, event.coin_id, seed, 0, 1.0))
        for j in range(DECOYS_PER_EVENT):
            pick = int(hash_uniform(
                seed, _PHASE_STREAM, event.event_id, 100 + j
            ) * tradable)
            decoy = len(PAIR_SYMBOLS) + (pick % tradable)
            if decoy == event.coin_id:
                decoy = len(PAIR_SYMBOLS) + ((pick + 1) % tradable)
            profiles.append(_profile(event, decoy, seed, 100 + j,
                                     DECOY_SCALE))
    return profiles


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat gather indices for integer ranges (see market._concat_ranges)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within


def _smoothstep(x: np.ndarray) -> np.ndarray:
    x = np.clip(x, 0.0, 1.0)
    return x * x * (3.0 - 2.0 * x)


class PhaseIndex:
    """Flattened phase-profile table for vectorized overlay evaluation.

    Mirrors the market's ``_OverlayIndex`` pair-expansion so phase terms
    accumulate with ``np.add.at`` in registration order — deterministic
    regardless of query shape.
    """

    def __init__(self, n_coins: int, profiles: Iterable[PhaseProfile]):
        by_coin: dict[int, list[PhaseProfile]] = {}
        for profile in profiles:
            by_coin.setdefault(profile.coin_id, []).append(profile)
        self.count = np.zeros(n_coins, dtype=np.int64)
        self.start = np.zeros(n_coins, dtype=np.int64)
        rows: list[PhaseProfile] = []
        for coin in sorted(by_coin):
            plist = by_coin[coin]
            self.start[coin] = len(rows)
            self.count[coin] = len(plist)
            rows.extend(plist)
        self.time = np.array([p.time for p in rows], dtype=np.float64)
        self.runup = np.array([p.runup_log for p in rows], dtype=np.float64)
        self.avol = np.array([p.accum_volume_log for p in rows],
                             dtype=np.float64)
        self.ivol = np.array([p.ignition_volume_log for p in rows],
                             dtype=np.float64)
        self.imb = np.array([p.imbalance_log for p in rows], dtype=np.float64)
        self.damp = np.array([p.noise_damp for p in rows], dtype=np.float64)

    def _pairs(self, coin_ids: np.ndarray, hours: np.ndarray):
        counts = self.count[coin_ids]
        sel = np.flatnonzero(counts)
        if len(sel) == 0:
            return None
        c = counts[sel]
        rep = np.repeat(sel, c)
        prof = _concat_ranges(self.start[coin_ids[sel]], c)
        d = hours[rep] - self.time[prof]
        return sel, rep, prof, d

    def add_price_overlay(self, market, out: np.ndarray,
                          coin_ids: np.ndarray, hours: np.ndarray) -> None:
        """Accumulation run-up and pre-ignition noise damping (flat arrays)."""
        pairs = self._pairs(coin_ids, hours)
        if pairs is None:
            return
        sel, rep, prof, d = pairs
        span = -ACCUMULATION_START
        ramp = self.runup[prof] * _smoothstep((d - ACCUMULATION_START) / span)
        # Carry the accumulated premium through the pump, then fade it with
        # the dump so the post-event price path stays continuous-ish.
        term = np.where(d < 0, ramp,
                        self.runup[prof] * np.exp(-np.maximum(d, 0.0) / 6.0))
        # Quiet squeeze: remove a fraction of this hour's idiosyncratic
        # noise (recomputed from the same hash streams the base price
        # used) inside the compression window only, so the recent-window
        # return std drops below the 72 h baseline.
        squeeze = (d >= COMPRESSION_START) & (d < 0)
        if squeeze.any():
            q = np.flatnonzero(squeeze)
            qc = coin_ids[rep[q]]
            qh = hours[rep[q]]
            hour_idx = np.floor(qh).astype(np.int64)
            noise = market._sigma[qc] * hash_normal(
                market.seed, _PRICE_STREAM, qc, hour_idx
            ) + market._octave_noise(qc, qh)
            damped = np.zeros_like(d)
            damped[q] = -self.damp[prof[q]] * noise
            term = term + damped
        overlay = np.zeros_like(out)
        np.add.at(overlay, rep, term)
        out[sel] += overlay[sel]

    def add_volume_overlay(self, market, out: np.ndarray,
                           coin_ids: np.ndarray, hours: np.ndarray) -> None:
        """Accumulation lift, buy-side imbalance and ignition surge."""
        pairs = self._pairs(coin_ids, hours)
        if pairs is None:
            return
        sel, rep, prof, d = pairs
        accum = (d >= ACCUMULATION_START) & (d < IGNITION_START)
        span = IGNITION_START - ACCUMULATION_START
        lift = np.where(
            accum,
            self.avol[prof] * _smoothstep((d - ACCUMULATION_START) / span),
            0.0,
        )
        surge_frac = _smoothstep((d - IGNITION_START) / -IGNITION_START)
        surge = np.where(
            (d >= IGNITION_START) & (d < 0),
            self.ivol[prof] * surge_frac,
            np.where(d >= 0,
                     self.ivol[prof] * np.exp(-np.maximum(d, 0.0) / 12.0),
                     0.0),
        )
        # Buy-side turnover: skew volume toward up-hours during the whole
        # pre-pump window (the signed hourly return comes from the full
        # price path, phases included, of the affected coins only).
        window = (d >= ACCUMULATION_START) & (d < 0)
        imbalance = np.zeros_like(d)
        if window.any():
            q = np.flatnonzero(window)
            qc = coin_ids[rep[q]]
            qh = np.floor(hours[rep[q]])
            up = market.log_close(qc, qh) - market.log_close(qc, qh - 1.0) > 0
            imbalance[q] = np.where(up, self.imb[prof[q]],
                                    -0.5 * self.imb[prof[q]])
        overlay = np.zeros_like(out)
        np.add.at(overlay, rep, lift + surge + imbalance)
        out[sel] += overlay[sel]


def generate_phase_world(config):
    """A SyntheticWorld whose pump events exhibit explicit phases.

    Identical to :meth:`SyntheticWorld.generate` — same coins, channels,
    events and messages (no RNG stream is perturbed) — with phase
    overlays attached to the market afterwards.
    """
    from repro.simulation.world import SyntheticWorld

    world = SyntheticWorld.generate(config)
    world.market.attach_phases(phase_profiles_for(
        world.events.events, world.coins.n_coins, world.config.seed
    ))
    return world


__all__ = [
    "ACCUMULATION_START",
    "COMPRESSION_START",
    "DECOY_SCALE",
    "DECOYS_PER_EVENT",
    "IGNITION_START",
    "PhaseIndex",
    "PhaseProfile",
    "generate_phase_world",
    "phase_profiles_for",
]
