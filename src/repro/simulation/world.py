"""The SyntheticWorld facade — one call builds the entire substrate.

A world bundles the coin universe, channel population, scheduled P&D
events, the market simulator (with event overlays attached) and the full
Telegram message stream.  Everything is deterministic in ``config.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.simulation.channels import ChannelPopulation
from repro.simulation.coins import CoinUniverse
from repro.simulation.events import EventLog, EventScheduler
from repro.simulation.market import MarketSimulator
from repro.simulation.messages import Message, MessageGenerator
from repro.utils.config import ReproConfig


@dataclass
class SyntheticWorld:
    """A fully-materialized simulated ecosystem."""

    config: ReproConfig
    coins: CoinUniverse
    channels: ChannelPopulation
    events: EventLog
    market: MarketSimulator
    messages: list[Message]

    @classmethod
    def generate(cls, config: ReproConfig | None = None) -> "SyntheticWorld":
        """Build a world (config defaults to the fast ``small`` scale)."""
        config = config or ReproConfig.small()
        coins = CoinUniverse.generate(config)
        channels = ChannelPopulation.generate(config, coins)
        market = MarketSimulator(coins)
        events = EventScheduler(config, coins, channels).schedule()
        market.attach_events(events.events)
        messages = MessageGenerator(config, coins, channels, market).generate_all(
            events.events
        )
        return cls(
            config=config,
            coins=coins,
            channels=channels,
            events=events,
            market=market,
            messages=messages,
        )

    # -- convenience views -------------------------------------------------------

    @cached_property
    def messages_by_channel(self) -> dict[int, list[Message]]:
        """channel_id -> chronological messages."""
        table: dict[int, list[Message]] = {}
        for message in self.messages:
            table.setdefault(message.channel_id, []).append(message)
        for messages in table.values():
            messages.sort(key=lambda m: m.time)
        return table

    def telegram_corpus(self) -> list[str]:
        """All message texts (the word2vec pre-training corpus of §5.3)."""
        return [m.text for m in self.messages]

    def message_generator(self) -> MessageGenerator:
        """A fresh generator sharing this world's substrate (used by §7)."""
        return MessageGenerator(self.config, self.coins, self.channels, self.market)

    def summary(self) -> dict[str, int]:
        """Counts in the shape of the paper's Table 2."""
        events = self.events.events
        return {
            "samples": sum(e.n_channels for e in events),
            "events": len(events),
            "channels": len({cid for e in events for cid in e.channel_ids}),
            "coins": len({e.coin_id for e in events}),
            "exchanges": len({e.exchange_id for e in events}),
            "messages": len(self.messages),
        }
