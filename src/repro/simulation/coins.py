"""The coin universe — a CoinGecko substitute (§4.1 data source).

Generates ``n_coins`` ranked coins with mutually-correlated statistics:
market capitalization, Alexa rank (web popularity), Reddit subscribers and
Twitter followers, plus a latent *semantic cluster* (the coin's "theme":
defi, gaming, meme, ...) that drives which coins are discussed together on
Telegram and which coins a pump channel prefers.

Rank-statistics follow the heavy-tailed shapes visible in Figure 3: caps
decay as a power law of rank, social indices decay more slowly with large
idiosyncratic noise (so some mid-cap coins are socially loud — exactly the
coins organizers target).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.config import ReproConfig

# Exchange names and pairing majors are backend-neutral domain constants;
# they live in repro.markets and are re-exported here for compatibility.
from repro.markets import EXCHANGE_NAMES, PAIR_SYMBOLS  # noqa: F401

_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _generate_symbols(n: int, rng: np.random.Generator) -> list[str]:
    """Unique 3-5 letter ticker symbols; the majors get their real names."""
    majors = ["BTC", "ETH", "BNB", "XRP", "ADA", "SOL", "DOGE", "DOT"]
    symbols: list[str] = []
    seen = set()
    for sym in majors[: min(n, len(majors))]:
        symbols.append(sym)
        seen.add(sym)
    while len(symbols) < n:
        length = int(rng.integers(3, 6))
        sym = "".join(rng.choice(list(_ALPHABET), size=length))
        if sym not in seen:
            seen.add(sym)
            symbols.append(sym)
    return symbols


@dataclass
class CoinUniverse:
    """Arrays indexed by ``coin_id`` (0-based; rank = coin_id + 1).

    Attributes
    ----------
    market_cap:
        USD market capitalization three days before any reference time
        (treated as stable, as in §5.1).
    alexa_rank:
        Global web-popularity rank (lower = more popular).
    reddit_subscribers, twitter_followers:
        Social-media indices.
    cluster:
        Latent semantic theme id in ``[0, n_clusters)``.
    listing_hour:
        Per-exchange listing time matrix ``(n_exchanges, n_coins)``; a coin
        is tradable on exchange ``e`` from ``listing_hour[e, c]`` onward
        (``-1`` = never listed).
    """

    config: ReproConfig
    symbols: list[str] = field(default_factory=list)
    market_cap: np.ndarray = field(default_factory=lambda: np.empty(0))
    alexa_rank: np.ndarray = field(default_factory=lambda: np.empty(0))
    reddit_subscribers: np.ndarray = field(default_factory=lambda: np.empty(0))
    twitter_followers: np.ndarray = field(default_factory=lambda: np.empty(0))
    base_price: np.ndarray = field(default_factory=lambda: np.empty(0))
    cluster: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    listing_hour: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))
    n_clusters: int = 12

    @classmethod
    def generate(cls, config: ReproConfig) -> "CoinUniverse":
        """Build the universe deterministically from ``config.seed``."""
        rng = np.random.default_rng(config.seed * 7919 + 11)
        n = config.n_coins
        rank = np.arange(1, n + 1, dtype=float)

        # Market cap: power-law decay with lognormal noise; BTC ~ 1e12.
        cap = 1.0e12 * rank**-1.05 * np.exp(rng.normal(0.0, 0.35, n))
        # Alexa rank grows with coin rank, noisy, floor of 1.
        alexa = np.maximum(1.0, 15.0 * rank**0.85 * np.exp(rng.normal(0.0, 0.9, n)))
        # Social indices: decay slower than cap, with heavy idiosyncratic
        # noise so mid-cap coins can have top-1000-like footprints.
        reddit = 3.0e6 * rank**-0.75 * np.exp(rng.normal(0.0, 1.1, n))
        twitter = 8.0e6 * rank**-0.7 * np.exp(rng.normal(0.0, 1.0, n))
        # Price = cap / circulating supply; supply lognormal.
        supply = np.exp(rng.normal(18.0, 2.0, n))
        price = cap / supply

        universe = cls(
            config=config,
            symbols=_generate_symbols(n, rng),
            market_cap=cap,
            alexa_rank=alexa,
            reddit_subscribers=reddit,
            twitter_followers=twitter,
            base_price=price,
            cluster=rng.integers(0, cls.n_clusters, size=n),
            listing_hour=cls._listings(config, rng, n),
        )
        return universe

    @staticmethod
    def _listings(config: ReproConfig, rng: np.random.Generator, n: int) -> np.ndarray:
        """Listing-time matrix; bigger exchanges list more coins, earlier.

        A fraction of coins get listed *during* the horizon, which creates
        the varying negative-sample counts of Table 4 and the never-seen
        coins of the cold-start study.
        """
        n_ex = config.n_exchanges
        listing = np.full((n_ex, n), -1.0)
        rank = np.arange(1, n + 1, dtype=float)
        for e in range(n_ex):
            # Exchange 0 (Binance) always reaches deepest down the rank list.
            depth = n * (0.6 if e == 0 else 0.12 + 0.35 * rng.random())
            prob = np.clip(1.15 - rank / depth, 0.02, 0.98)
            listed = rng.random(n) < prob
            hours = np.where(
                rng.random(n) < 0.55,
                0.0,  # listed before the horizon starts
                rng.uniform(0, config.horizon_hours * 0.9, n),
            )
            listing[e] = np.where(listed, hours, -1.0)
        # The pairing majors are always listed everywhere from hour 0.
        listing[:, :3] = 0.0
        return listing

    # -- queries ---------------------------------------------------------------

    @property
    def n_coins(self) -> int:
        return len(self.symbols)

    def exchange_name(self, exchange_id: int) -> str:
        return EXCHANGE_NAMES[exchange_id % len(EXCHANGE_NAMES)]

    def listed_coins(self, exchange_id: int, hour: float) -> np.ndarray:
        """Coin ids tradable on an exchange at a simulated hour."""
        hours = self.listing_hour[exchange_id]
        return np.flatnonzero((hours >= 0) & (hours <= hour))

    def is_listed(self, coin_id: int, exchange_id: int, hour: float) -> bool:
        listed_at = self.listing_hour[exchange_id, coin_id]
        return bool(listed_at >= 0 and listed_at <= hour)

    def symbol_to_id(self) -> dict[str, int]:
        """Ticker symbol -> coin_id mapping."""
        return {s: i for i, s in enumerate(self.symbols)}

    def social_score(self) -> np.ndarray:
        """Residual social loudness vs. rank expectation, standardized.

        Positive = louder on Reddit/Twitter than its cap rank predicts;
        organizers preferentially target such coins (Figure 3 c-d).
        """
        rank = np.arange(1, self.n_coins + 1, dtype=float)
        expected_reddit = np.log(3.0e6 * rank**-0.75)
        expected_twitter = np.log(8.0e6 * rank**-0.7)
        residual = (np.log(self.reddit_subscribers) - expected_reddit) + (
            np.log(self.twitter_followers) - expected_twitter
        )
        return (residual - residual.mean()) / (residual.std() + 1e-12)
