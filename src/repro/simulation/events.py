"""P&D event scheduling — who pumps what, where and when.

The scheduler turns each channel's latent strategy into a chronological
stream of pump events with the paper's empirical regularities:

* exchange mix ≈ Binance 63% / Yobit 21% / Hotbit 9% / Kucoin 3% (§4.2);
* multi-channel coordination (≈2.25 channels per Binance event);
* mid-cap, socially-loud targets (Figure 3, A1);
* ~60% of pumped coins were pumped before (§4.1);
* per-channel re-pump periodicity — the skip-correlation SNN exploits;
* larger pump magnitudes on thin exchanges (Yobit) than on Binance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.channels import ChannelPopulation, PumpChannel
from repro.simulation.coins import PAIR_SYMBOLS, CoinUniverse
from repro.simulation.market import PumpProfile
from repro.utils.config import ReproConfig


@dataclass(frozen=True)
class PumpEvent:
    """One coordinated pump-and-dump.

    ``channel_ids[0]`` is the organizer; the rest joined the coordination.
    ``time`` is fractional hours since the world epoch.
    """

    event_id: int
    coin_id: int
    exchange_id: int
    pair: str
    time: float
    channel_ids: tuple[int, ...]
    profile: PumpProfile

    @property
    def hour(self) -> int:
        return int(np.floor(self.time))

    @property
    def n_channels(self) -> int:
        return len(self.channel_ids)


@dataclass
class EventLog:
    """All scheduled events plus per-channel chronological views."""

    events: list[PumpEvent] = field(default_factory=list)

    def by_channel(self) -> dict[int, list[PumpEvent]]:
        """channel_id -> its events, chronological (an event appears in
        every participating channel's history, as in the paper's Table 3)."""
        table: dict[int, list[PumpEvent]] = {}
        for event in self.events:
            for cid in event.channel_ids:
                table.setdefault(cid, []).append(event)
        for history in table.values():
            history.sort(key=lambda e: e.time)
        return table

    def samples(self) -> list[tuple[int, PumpEvent]]:
        """(channel_id, event) quintuple-equivalents — the paper's 'samples'."""
        out = []
        for event in self.events:
            for cid in event.channel_ids:
                out.append((cid, event))
        return out


class EventScheduler:
    """Generate the event log for a world."""

    def __init__(self, config: ReproConfig, universe: CoinUniverse,
                 channels: ChannelPopulation):
        self.config = config
        self.universe = universe
        self.channels = channels
        self._rng = np.random.default_rng(config.seed * 48611 + 29)

    # -- coin choice -------------------------------------------------------------

    def _candidate_weights(self, channel: PumpChannel, listed: np.ndarray,
                           pumped_before: set[int]) -> np.ndarray:
        """Selection weights over listed coins implementing A1 + A3."""
        universe = self.universe
        ranks = listed.astype(float) + 1.0
        log_center = np.log(channel.band_center)
        band = np.exp(
            -0.5 * ((np.log(ranks) - log_center) / channel.band_width) ** 2
        )
        cluster_boost = np.where(
            np.isin(universe.cluster[listed], channel.clusters), 4.0, 1.0
        )
        social = np.exp(0.45 * universe.social_score()[listed])
        seen_boost = np.array(
            [2.2 if int(c) in pumped_before else 1.0 for c in listed]
        )
        weights = band * cluster_boost * social * seen_boost
        # Pairing majors are never pump targets.
        weights[listed < len(PAIR_SYMBOLS)] = 0.0
        return weights

    _NO_REPEAT_RECENT = 2  # organizers never pump a coin twice in a row (§5.2)

    def _choose_coin(self, channel: PumpChannel, exchange_id: int, hour: float,
                     history: list[int], pumped_before: set[int]) -> int | None:
        rng = self._rng
        listed = self.universe.listed_coins(exchange_id, hour)
        if len(listed) <= len(PAIR_SYMBOLS):
            return None
        # Periodic re-pump: replay the coin selected `period` events ago.
        # (The paper: "a channel might pump a specific coin periodically but
        # never pump the coin continuously".)
        if (
            len(history) >= channel.period
            and rng.random() < channel.repump_prob
        ):
            replay = history[-channel.period]
            recent = set(history[-self._NO_REPEAT_RECENT:])
            if replay not in recent and self.universe.is_listed(
                replay, exchange_id, hour
            ):
                return int(replay)
        weights = self._candidate_weights(channel, listed, pumped_before)
        # Forbid immediate repeats: others would guess the coin otherwise.
        recent = history[-self._NO_REPEAT_RECENT:]
        for coin in recent:
            weights[listed == coin] = 0.0
        total = weights.sum()
        if total <= 0:
            return None
        return int(rng.choice(listed, p=weights / total))

    # -- scheduling ---------------------------------------------------------------

    def _pump_time(self, base_hour: float) -> float:
        """Snap to a 'scheduled' evening hour with a small minute offset."""
        rng = self._rng
        day = int(base_hour // 24)
        scheduled = int(rng.choice([15, 16, 17, 18, 19, 20], p=[0.1, 0.2, 0.35, 0.2, 0.1, 0.05]))
        minute_offset = float(rng.integers(0, 3)) / 60.0  # release lag 0-2 min
        return day * 24.0 + scheduled + minute_offset

    def _profile(self, exchange_id: int, time: float,
                 organizer: PumpChannel) -> PumpProfile:
        rng = self._rng
        # Thin exchanges pump harder (paper: Binance return ≈29% of Yobit's).
        if exchange_id == 0:
            peak = rng.uniform(np.log(1.35), np.log(2.4))
        elif exchange_id == 1:
            peak = rng.uniform(np.log(2.6), np.log(6.0))
        else:
            peak = rng.uniform(np.log(1.8), np.log(4.0))
        n_vip = int(rng.integers(1, 4))
        vip_times = tuple(float(t) for t in -rng.uniform(2.0, 40.0, n_vip))
        vip_sizes = tuple(float(s) for s in rng.uniform(0.008, 0.03, n_vip))
        return PumpProfile(
            time=time,
            accum_log=float(np.clip(rng.normal(0.095, 0.02), 0.04, 0.18)),
            peak_log=float(peak),
            settle_log=float(rng.normal(-0.02, 0.02)),
            dump_tau=float(rng.uniform(0.5, 3.0)),
            vip_times=vip_times,
            vip_sizes=vip_sizes,
            volume_peak_log=float(rng.uniform(2.6, 4.2)),
        )

    def _coordinators(self, organizer: PumpChannel,
                      hour: float) -> tuple[int, ...]:
        """Organizer plus 0-3 allied channels (cluster-mates join pumps)."""
        rng = self._rng
        allies: list[int] = []
        if rng.random() < 0.62:
            candidates = [
                c for c in self.channels.alive_pump_channels()
                if c.channel_id != organizer.channel_id
                and c.active_from <= hour
                and set(c.clusters) & set(organizer.clusters)
            ]
            if candidates:
                count = min(len(candidates), int(rng.integers(1, 4)))
                chosen = rng.choice(len(candidates), size=count, replace=False)
                allies = [candidates[int(i)].channel_id for i in chosen]
        return (organizer.channel_id, *allies)

    def schedule(self) -> EventLog:
        """Produce the full event log, chronologically sorted."""
        rng = self._rng
        config = self.config
        alive = self.channels.alive_pump_channels()
        if not alive:
            raise ValueError("no alive pump channels to schedule events for")
        # Organizer propensity grows with channel size.
        propensity = np.array([np.log1p(c.subscribers) for c in alive])
        propensity = propensity / propensity.sum()
        # Mild acceleration over time: later periods hold slightly more events.
        u = rng.random(config.n_events) ** 0.85
        base_hours = np.sort(u * (config.horizon_hours - 200.0) + 100.0)

        log = EventLog()
        per_channel_coins: dict[int, list[int]] = {c.channel_id: [] for c in alive}
        pumped_before: set[int] = set()
        event_id = 0
        for base_hour in base_hours:
            organizer = alive[int(rng.choice(len(alive), p=propensity))]
            if organizer.active_from > base_hour:
                continue
            exchange_id = int(
                rng.choice(config.n_exchanges, p=organizer.exchange_weights)
            )
            time = self._pump_time(base_hour)
            coin = self._choose_coin(
                organizer, exchange_id, time,
                per_channel_coins[organizer.channel_id], pumped_before,
            )
            if coin is None:
                continue
            pair = str(rng.choice(PAIR_SYMBOLS, p=[0.85, 0.1, 0.05]))
            channel_ids = self._coordinators(organizer, base_hour)
            event = PumpEvent(
                event_id=event_id,
                coin_id=coin,
                exchange_id=exchange_id,
                pair=pair,
                time=time,
                channel_ids=channel_ids,
                profile=self._profile(exchange_id, time, organizer),
            )
            log.events.append(event)
            event_id += 1
            pumped_before.add(coin)
            for cid in channel_ids:
                if cid in per_channel_coins:
                    per_channel_coins[cid].append(coin)
        log.events.sort(key=lambda e: e.time)
        return log
