"""Exchange market simulator — the Binance-klines substitute (§4.2 data).

Every coin has a deterministic hourly log-price process

    log p_c(h) = log base_c + seasonal_c(h) + sigma_c * eta(c, h) + overlay_c(h)

where ``seasonal`` is a small set of per-coin Fourier components (slow market
cycles), ``eta`` is counter-based hash noise (so any window can be evaluated
in O(window) with *consistent* overlapping answers), and ``overlay`` encodes
the paper's P&D anatomy (§2, Figure 4):

* **accumulation** — organizers buy from ~60h before the pump, ramping the
  price ≈ +9.5% by one hour before (Figure 4c peaks at x = 60);
* **pre-pump hikes** — VIP buy-ins create short price/volume spikes between
  48h and 1h before (Figure 4b/4d);
* **pump** — the price multiplies within ~2 minutes of the scheduled time;
* **dump** — exponential decay to at-or-below the pre-accumulation level.

Volume follows the same structure with a much larger pump spike and a
"frequent trading onset" ~57 hours before the pump (Figure 4b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.simulation.coins import CoinUniverse
from repro.utils.hashrng import hash_normal, hash_uniform

# Stream tags so the same (coin, hour) key yields independent noises.
_PRICE_STREAM = 1
_VOLUME_STREAM = 2
_RANGE_STREAM = 3
_MINUTE_STREAM = 4
_MOOD_STREAM = 5
_OCTAVE_STREAM = 6

# Brownian-like multi-scale noise: interpolated hashed noise at octave
# periods approximates a 1/f^2 spectrum, so an x-hour return carries
# ~sqrt(x)-scaled idiosyncratic noise — the reason pre-pump accumulation is
# a *statistical* signal (Figure 4c averages hundreds of events) rather
# than a giveaway on every single event.
_OCTAVE_PERIODS = (4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0)
_OCTAVE_SIGMA = 0.012

# Volume burst octaves: fixed-amplitude log-volume excursions at hour-to-
# day scales (news, listings, other groups' activity).
_VOLUME_BURST_PERIODS = (6.0, 24.0, 96.0)
_VOLUME_BURST_AMPLITUDE = 0.55
_VOLUME_BURST_STREAM = 7

PUMP_PEAK_MINUTES = 2  # price tops out ~2 minutes after the coin release

# Investor mood influences BTC with this delay (hours); §7 observes that
# sentiment intensity has a *delayed* impact on price movement.
MOOD_PRICE_LAG = 48
MOOD_PRICE_COEFF = 0.16


@dataclass(frozen=True)
class PumpProfile:
    """Per-event market-impact parameters (log-scale effects)."""

    time: float          # pump time in fractional hours
    accum_log: float     # accumulation lift reached 1h before the pump
    peak_log: float      # pump peak on top of accumulation
    settle_log: float    # post-dump level relative to pre-accumulation
    dump_tau: float      # hours for the pump spike to decay
    vip_times: tuple[float, ...]   # pre-pump hike offsets (negative hours)
    vip_sizes: tuple[float, ...]   # log-size of each pre-pump hike
    volume_peak_log: float         # pump-hour volume lift


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate integer ranges ``[start, start+count)`` into one index array.

    Equivalent to ``np.concatenate([np.arange(s, s + c) for s, c in ...])``
    without the Python loop; used to expand per-coin profile (and per-profile
    VIP) ranges into flat gather indices.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within


class _OverlayIndex:
    """Flattened pump-profile table for vectorized overlay evaluation.

    Profiles are stored per coin in registration order; VIP bumps per profile
    in declaration order.  Keeping those orders lets the vectorized path
    accumulate contributions with ``np.add.at`` in exactly the sequence the
    per-coin loop used, so results are bit-for-bit identical.
    """

    def __init__(self, n_coins: int, profiles: dict[int, list[PumpProfile]]):
        self.count = np.zeros(n_coins, dtype=np.int64)
        self.start = np.zeros(n_coins, dtype=np.int64)
        times, accum, peak, settle, tau, volpeak = [], [], [], [], [], []
        vip_start, vip_count, vip_time, vip_size = [], [], [], []
        pos = vpos = 0
        for coin in sorted(profiles):
            plist = profiles[coin]
            self.start[coin] = pos
            self.count[coin] = len(plist)
            pos += len(plist)
            for p in plist:
                times.append(p.time)
                accum.append(p.accum_log)
                peak.append(p.peak_log)
                settle.append(p.settle_log)
                tau.append(p.dump_tau)
                volpeak.append(p.volume_peak_log)
                vip_start.append(vpos)
                vip_count.append(len(p.vip_times))
                vip_time.extend(p.vip_times)
                vip_size.extend(p.vip_sizes)
                vpos += len(p.vip_times)
        self.time = np.asarray(times, dtype=np.float64)
        self.accum = np.asarray(accum, dtype=np.float64)
        self.peak = np.asarray(peak, dtype=np.float64)
        self.settle = np.asarray(settle, dtype=np.float64)
        self.tau = np.asarray(tau, dtype=np.float64)
        self.volpeak = np.asarray(volpeak, dtype=np.float64)
        self.vip_start = np.asarray(vip_start, dtype=np.int64)
        self.vip_count = np.asarray(vip_count, dtype=np.int64)
        self.vip_time = np.asarray(vip_time, dtype=np.float64)
        self.vip_size = np.asarray(vip_size, dtype=np.float64)

    def pairs(self, coin_ids: np.ndarray, hours: np.ndarray):
        """Expand query elements into (element, profile) pairs.

        Returns ``(sel, rep, prof, d)`` — the elements that have any profile,
        the element index of each pair, the flat profile index of each pair,
        and the hour offset from the pump — or ``None`` when no element's
        coin has registered events.
        """
        counts = self.count[coin_ids]
        sel = np.flatnonzero(counts)
        if len(sel) == 0:
            return None
        c = counts[sel]
        rep = np.repeat(sel, c)
        prof = _concat_ranges(self.start[coin_ids[sel]], c)
        d = hours[rep] - self.time[prof]
        return sel, rep, prof, d

    def vip_sum(self, prof: np.ndarray, d: np.ndarray,
                width: float, scale: float) -> np.ndarray:
        """Per-pair sum of pre-pump VIP bumps, accumulated in VIP order."""
        vip = np.zeros_like(d)
        vcount = self.vip_count[prof]
        vsel = np.flatnonzero(vcount)
        if len(vsel):
            vc = vcount[vsel]
            vrep = np.repeat(vsel, vc)
            vidx = _concat_ranges(self.vip_start[prof[vsel]], vc)
            dv = d[vrep]
            bump = np.where(
                dv < 0,
                self.vip_size[vidx] * scale
                * np.exp(-0.5 * ((dv - self.vip_time[vidx]) / width) ** 2),
                0.0,
            )
            np.add.at(vip, vrep, bump)
        return vip


class MarketSimulator:
    """Deterministic OHLCV oracle for every coin at hour/minute resolution."""

    def __init__(self, universe: CoinUniverse, seed: int | None = None):
        self.universe = universe
        self.seed = universe.config.seed if seed is None else seed
        n = universe.n_coins
        rng = np.random.default_rng(self.seed * 104729 + 3)
        # Per-coin seasonal components: two slow sinusoids.
        self._amp1 = rng.uniform(0.05, 0.35, n)
        self._period1 = rng.uniform(1500.0, 8000.0, n)
        self._phase1 = rng.uniform(0, 2 * np.pi, n)
        self._amp2 = rng.uniform(0.02, 0.15, n)
        self._period2 = rng.uniform(200.0, 900.0, n)
        self._phase2 = rng.uniform(0, 2 * np.pi, n)
        self._sigma = rng.uniform(0.002, 0.006, n)
        # Per-coin volatility multiplier for the octave (random-walk) noise.
        self._octave_scale = rng.uniform(0.7, 1.4, n)
        # Volume model parameters.  Hourly volumes of small caps are wildly
        # bursty; iid noise plus multi-scale bursts keep pre-pump elevation
        # from being a trivial giveaway.
        self._volume_base = 0.72 * np.log(universe.market_cap) - 6.0
        self._volume_sigma = rng.uniform(0.4, 0.8, n)
        self._profiles: dict[int, list[PumpProfile]] = {}
        self._overlay_index: _OverlayIndex | None = None
        # Accumulation/ignition phase overlays (repro.simulation.phases);
        # None for every world that never calls attach_phases, keeping the
        # base simulation bit-for-bit unchanged.
        self._phases = None

    # -- event registration -----------------------------------------------------

    def attach_events(self, events: Iterable) -> None:
        """Register pump events; each must expose ``coin_id`` and ``profile``."""
        for event in events:
            self._profiles.setdefault(int(event.coin_id), []).append(event.profile)
        self._overlay_index = None  # flattened table rebuilt lazily

    def attach_phases(self, profiles: Iterable) -> None:
        """Register accumulation/ignition phase profiles.

        ``profiles`` are :class:`repro.simulation.phases.PhaseProfile`
        rows; the import is lazy so the (phases → market) module edge
        stays acyclic at import time.
        """
        from repro.simulation.phases import PhaseIndex

        self._phases = PhaseIndex(self.universe.n_coins, profiles)

    @property
    def has_phases(self) -> bool:
        """True when phase overlays are attached (phase-aware worlds)."""
        return self._phases is not None

    def _overlays(self) -> _OverlayIndex:
        if self._overlay_index is None:
            self._overlay_index = _OverlayIndex(self.universe.n_coins, self._profiles)
        return self._overlay_index

    def profiles_for(self, coin_id: int) -> list[PumpProfile]:
        """Registered pump profiles of one coin (possibly empty)."""
        return self._profiles.get(int(coin_id), [])

    # -- price ---------------------------------------------------------------

    def _seasonal(self, coin_ids: np.ndarray, hours: np.ndarray) -> np.ndarray:
        c = coin_ids
        h = hours
        return self._amp1[c] * np.sin(2 * np.pi * h / self._period1[c] + self._phase1[c]) \
            + self._amp2[c] * np.sin(2 * np.pi * h / self._period2[c] + self._phase2[c])

    def _add_price_overlay(self, out: np.ndarray, coin_ids: np.ndarray,
                           hours: np.ndarray) -> None:
        """Add event overlays to flat log-prices, vectorized over all coins.

        Every (query element, pump profile) pair is expanded into flat
        arrays, evaluated with the same elementwise formulas as the original
        per-coin loop, and accumulated with ``np.add.at`` in registration
        order — bit-for-bit identical to looping coins and profiles.
        """
        pairs = self._overlays().pairs(coin_ids, hours)
        if pairs is None:
            return
        ix = self._overlays()
        sel, rep, prof, d = pairs
        # Pre-accumulation micro-premium: makes returns measured from
        # x=72 slightly smaller than from x=60, as in Figure 4(c).
        pre = np.where((d >= -76) & (d < -61), 0.012, 0.0)
        # Accumulation ramp over [-61, 0).
        ramp_frac = np.clip((d + 61.0) / 60.0, 0.0, 1.0)
        accum = np.where(d < 0, ix.accum[prof] * ramp_frac, 0.0)
        # VIP pre-pump hikes: short gaussian bumps.
        vip = ix.vip_sum(prof, d, width=0.8, scale=1.0)
        # Pump spike and dump decay.
        peak_at = PUMP_PEAK_MINUTES / 60.0
        rise = np.where(
            (d >= 0) & (d < peak_at),
            ix.accum[prof] + (ix.peak[prof] - ix.accum[prof]) * (d / peak_at),
            0.0,
        )
        decay = np.where(
            d >= peak_at,
            ix.settle[prof]
            + (ix.peak[prof] - ix.settle[prof])
            * np.exp(-np.maximum(d - peak_at, 0.0) / ix.tau[prof]),
            0.0,
        )
        overlay = np.zeros_like(out)
        np.add.at(overlay, rep, pre + accum + vip + rise + decay)
        out[sel] += overlay[sel]

    def _octave_noise(self, coin_ids: np.ndarray, hours: np.ndarray) -> np.ndarray:
        """Brownian-like idiosyncratic price noise, O(octaves) per query.

        Each octave interpolates hashed per-block normals with a smoothstep,
        giving a continuous path whose x-hour increments have standard
        deviation roughly ``_OCTAVE_SIGMA * sqrt(x)``.
        """
        out = np.zeros(np.broadcast(coin_ids, hours).shape)
        for j, period in enumerate(_OCTAVE_PERIODS):
            block = np.floor(hours / period).astype(np.int64)
            frac = hours / period - block
            w = frac * frac * (3.0 - 2.0 * frac)  # smoothstep
            left = hash_normal(self.seed, _OCTAVE_STREAM, coin_ids, j, block)
            right = hash_normal(self.seed, _OCTAVE_STREAM, coin_ids, j, block + 1)
            amplitude = _OCTAVE_SIGMA * np.sqrt(period)
            out = out + amplitude * ((1.0 - w) * left + w * right)
        return out * self._octave_scale[coin_ids]

    def market_mood(self, hours) -> np.ndarray:
        """Latent investor-mood process in roughly [-2, 2].

        Piecewise-linear interpolation of daily hash noise — continuous,
        stochastic and O(1) per query.  Telegram sentiment chatter tracks
        this process, and BTC's price responds to it ``MOOD_PRICE_LAG``
        hours later, which is what makes sentiment features informative for
        the §7 forecasting task.
        """
        hours = np.asarray(hours, dtype=float)
        block = np.floor(hours / 24.0).astype(np.int64)
        frac = (hours / 24.0) - block
        left = hash_normal(self.seed, _MOOD_STREAM, block)
        right = hash_normal(self.seed, _MOOD_STREAM, block + 1)
        return (1.0 - frac) * left + frac * right

    def log_close(self, coin_ids, hours) -> np.ndarray:
        """Log close price; ``coin_ids`` and ``hours`` broadcast together."""
        coin_ids = np.asarray(coin_ids, dtype=np.int64)
        hours = np.asarray(hours, dtype=float)
        coin_ids, hours = np.broadcast_arrays(coin_ids, hours)
        hour_idx = np.floor(hours).astype(np.int64)
        noise = self._sigma[coin_ids] * hash_normal(
            self.seed, _PRICE_STREAM, coin_ids, hour_idx
        )
        base = np.log(self.universe.base_price[coin_ids])
        out = (
            base + self._seasonal(coin_ids, hours) + noise
            + self._octave_noise(coin_ids, hours)
        )
        # Delayed mood impact on BTC (coin 0) for the forecasting task.
        btc_mask = coin_ids == 0
        if btc_mask.any():
            out = out + np.where(
                btc_mask,
                MOOD_PRICE_COEFF * self.market_mood(hours - MOOD_PRICE_LAG),
                0.0,
            )
        # Apply event overlays only for coins that have any.
        if self._profiles:
            flat_out = np.ascontiguousarray(out).reshape(-1)
            self._add_price_overlay(flat_out, coin_ids.reshape(-1),
                                    hours.reshape(-1))
            out = flat_out.reshape(out.shape)
        if self._phases is not None:
            flat_out = np.ascontiguousarray(out).reshape(-1)
            self._phases.add_price_overlay(self, flat_out,
                                           coin_ids.reshape(-1),
                                           hours.reshape(-1))
            out = flat_out.reshape(out.shape)
        return out

    def close_price(self, coin_ids, hours) -> np.ndarray:
        """Close price in pairing-coin units."""
        return np.exp(self.log_close(coin_ids, hours))

    def window_return(self, coin_ids, pump_hour: float, x: int) -> np.ndarray:
        """Return over the paper's window ``(x+1, 1]`` hours before ``pump_hour``.

        ``return = p(t-1) / p(t-x-1) - 1`` — the Figure 4(c) statistic and
        the §5.1 market-movement feature.
        """
        coin_ids = np.asarray(coin_ids, dtype=np.int64)
        p_end = self.log_close(coin_ids, np.full(coin_ids.shape, pump_hour - 1.0))
        p_start = self.log_close(coin_ids, np.full(coin_ids.shape, pump_hour - x - 1.0))
        return np.exp(p_end - p_start) - 1.0

    # -- volume ---------------------------------------------------------------

    def _add_volume_overlay(self, out: np.ndarray, coin_ids: np.ndarray,
                            hours: np.ndarray) -> None:
        """Add event overlays to flat log-volumes (see ``_add_price_overlay``)."""
        pairs = self._overlays().pairs(coin_ids, hours)
        if pairs is None:
            return
        ix = self._overlays()
        sel, rep, prof, d = pairs
        # Frequent-trading onset ~57h before the pump (Figure 4b).
        ramp = np.where(
            (d >= -57) & (d < 0), 0.55 * np.clip((d + 57.0) / 57.0, 0, 1), 0.0
        )
        vip = ix.vip_sum(prof, d, width=0.6, scale=28.0)
        spike = np.where(
            d >= 0,
            ix.volpeak[prof] * np.exp(-np.maximum(d, 0) / 0.45),
            0.0,
        )
        aftermath = np.where(d >= 0, 0.8 * np.exp(-np.maximum(d, 0) / 24.0), 0.0)
        overlay = np.zeros_like(out)
        np.add.at(overlay, rep, ramp + vip + spike + aftermath)
        out[sel] += overlay[sel]

    def hourly_volume(self, coin_ids, hours) -> np.ndarray:
        """Traded volume (pairing-coin units) during the hour ending at ``h``."""
        coin_ids = np.asarray(coin_ids, dtype=np.int64)
        hours = np.asarray(hours, dtype=float)
        coin_ids, hours = np.broadcast_arrays(coin_ids, hours)
        hour_idx = np.floor(hours).astype(np.int64)
        noise = self._volume_sigma[coin_ids] * hash_normal(
            self.seed, _VOLUME_STREAM, coin_ids, hour_idx
        )
        bursts = np.zeros(np.broadcast(coin_ids, hours).shape)
        for j, period in enumerate(_VOLUME_BURST_PERIODS):
            block = np.floor(hours / period).astype(np.int64)
            frac = hours / period - block
            w = frac * frac * (3.0 - 2.0 * frac)
            left = hash_normal(self.seed, _VOLUME_BURST_STREAM, coin_ids, j, block)
            right = hash_normal(self.seed, _VOLUME_BURST_STREAM, coin_ids, j, block + 1)
            bursts = bursts + _VOLUME_BURST_AMPLITUDE * ((1 - w) * left + w * right)
        # Mild time-of-day seasonality (UTC evening is busier).
        tod = 0.25 * np.sin(2 * np.pi * (hours % 24) / 24.0 - 1.2)
        log_volume = self._volume_base[coin_ids] + tod + noise + bursts
        if self._profiles:
            flat = np.ascontiguousarray(log_volume).reshape(-1)
            self._add_volume_overlay(flat, coin_ids.reshape(-1),
                                     hours.reshape(-1))
            log_volume = flat.reshape(log_volume.shape)
        if self._phases is not None:
            flat = np.ascontiguousarray(log_volume).reshape(-1)
            self._phases.add_volume_overlay(self, flat,
                                            coin_ids.reshape(-1),
                                            hours.reshape(-1))
            log_volume = flat.reshape(log_volume.shape)
        return np.exp(log_volume)

    def window_volume(self, coin_ids, pump_hour: float, x: int) -> np.ndarray:
        """Average hourly volume over the window ``(x+1, 1]`` before the pump."""
        return self.window_volume_profile(coin_ids, pump_hour, x).mean(axis=1)

    def window_volume_profile(self, coin_ids, pump_hour: float,
                              max_hours: int) -> np.ndarray:
        """Hourly volumes at offsets ``1..max_hours`` before the pump.

        Returns ``(len(coin_ids), max_hours)``; the mean of the first ``x``
        columns equals ``window_volume(coin_ids, pump_hour, x)`` exactly, so
        one query serves every window span a feature matrix needs.
        """
        coin_ids = np.asarray(coin_ids, dtype=np.int64)
        offsets = np.arange(1, max_hours + 1, dtype=float)  # hours before pump
        grid_hours = pump_hour - offsets  # (max_hours,)
        return self.hourly_volume(
            coin_ids[:, None],
            np.broadcast_to(grid_hours, (len(coin_ids), max_hours)),
        )

    def typical_trade_size(self, coin_ids) -> np.ndarray:
        """Per-coin typical trade size used by the trade-count proxy."""
        return np.exp(self._volume_base[np.asarray(coin_ids, dtype=np.int64)]) / 180.0

    def trade_count_from_volume(self, volume: np.ndarray,
                                coin_ids) -> np.ndarray:
        """Proxy trade count for already-known volumes (single source of
        truth for the formula, shared with the feature layer)."""
        return volume / np.maximum(self.typical_trade_size(coin_ids), 1e-12)

    def window_trade_count(self, coin_ids, pump_hour: float, x: int) -> np.ndarray:
        """Proxy trade count: volume divided by a per-coin typical trade size."""
        volume = self.window_volume(coin_ids, pump_hour, x)
        return self.trade_count_from_volume(volume, coin_ids)

    # -- OHLCV bars -------------------------------------------------------------

    def ohlcv_hourly(self, coin_id: int, start_hour: int, n_hours: int) -> np.ndarray:
        """Hourly bars ``(n_hours, 5)``: open, high, low, close, volume.

        Open of bar ``h`` equals close of ``h-1``; the high/low extend the
        open-close range by non-negative hash-noise wicks, so the OHLC
        invariant ``low <= min(open, close) <= max(open, close) <= high``
        holds by construction.
        """
        if n_hours < 1:
            raise ValueError("n_hours must be positive")
        hours = np.arange(start_hour - 1, start_hour + n_hours, dtype=float)
        closes = self.close_price(np.full(len(hours), coin_id), hours)
        opens = closes[:-1]
        close = closes[1:]
        hour_idx = hours[1:].astype(np.int64)
        wick = np.abs(
            hash_normal(self.seed, _RANGE_STREAM, coin_id, hour_idx)
        ) * 0.004 + 1e-6
        high = np.maximum(opens, close) * np.exp(wick)
        low = np.minimum(opens, close) * np.exp(-wick)
        volume = self.hourly_volume(np.full(n_hours, coin_id), hours[1:])
        return np.stack([opens, high, low, close, volume], axis=1)

    # -- minute-level series (Figure 4 a, b, d) ----------------------------------

    def minute_close(self, coin_id: int, around_hour: float,
                     minute_offsets: Sequence[int]) -> np.ndarray:
        """Close price at minute resolution around a reference hour."""
        offsets = np.asarray(minute_offsets, dtype=float)
        hours = around_hour + offsets / 60.0
        base = self.log_close(np.full(len(offsets), coin_id), hours)
        minute_idx = np.floor(around_hour * 60 + offsets).astype(np.int64)
        micro = 0.0012 * hash_normal(self.seed, _MINUTE_STREAM, coin_id, minute_idx)
        return np.exp(base + micro)

    def minute_volume(self, coin_id: int, around_hour: float,
                      minute_offsets: Sequence[int]) -> np.ndarray:
        """Per-minute traded volume around a reference hour."""
        offsets = np.asarray(minute_offsets, dtype=float)
        hours = around_hour + offsets / 60.0
        hourly = self.hourly_volume(np.full(len(offsets), coin_id), hours)
        minute_idx = np.floor(around_hour * 60 + offsets).astype(np.int64)
        jitter = np.exp(
            0.35 * hash_normal(self.seed, _MINUTE_STREAM + 7, coin_id, minute_idx)
        )
        return hourly / 60.0 * jitter
