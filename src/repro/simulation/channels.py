"""Telegram channel population — pump channels, noise channels, VIP tiers.

Reproduces the structure §2-§3 describe: public pump channels with
subscriber counts, private VIP partner channels, ordinary crypto-chat
channels, and an invitation-link graph (organizers advertise across
channels) that the snowball exploration of §3.1 walks.

Each pump channel owns a **coin-selection strategy** — a market-cap band, a
couple of semantic clusters and a re-pump period.  That strategy is what
creates the paper's central observation (A3): intra-channel homogeneity and
inter-channel heterogeneity of pumped coins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.coins import CoinUniverse
from repro.utils.config import ReproConfig


def _empty_digraph():
    """Build the invitation graph lazily so importing the simulator's
    channel *types* never forces networkx into the process."""
    try:
        import networkx as nx
    except ImportError as exc:
        raise ImportError(
            "repro.simulation.channels requires networkx for the "
            "invitation graph; install networkx to generate worlds"
        ) from exc
    return nx.DiGraph()

# Global exchange mix matching the paper's event distribution (§4.2):
# Binance 62.8%, Yobit 20.6%, Hotbit 8.7%, Kucoin 3.0%, long tail 4.9%.
EXCHANGE_MIX = np.array([0.628, 0.206, 0.087, 0.030])


@dataclass(frozen=True)
class PumpChannel:
    """A public pump channel and its latent coin-selection strategy."""

    channel_id: int             # Telegram-style numeric id
    index: int                  # dense index within the pump population
    subscribers: int
    band_center: float          # preferred coin rank (log-uniform mid-cap)
    band_width: float           # log-rank band width
    clusters: tuple[int, ...]   # preferred semantic themes
    exchange_weights: np.ndarray
    period: int                 # re-pump periodicity (events)
    repump_prob: float          # chance of replaying the coin `period` ago
    vip_channel_id: int | None  # private VIP partner, if any
    active_from: float
    active_to: float
    is_seed: bool               # appears in the PumpOlymp-style seed list
    deleted: bool               # deleted/inactive (seed-list attrition)


@dataclass(frozen=True)
class NoiseChannel:
    """An ordinary crypto-discussion channel (non-pump)."""

    channel_id: int
    cluster: int
    messages_per_week: float


@dataclass
class ChannelPopulation:
    """All channels plus the invitation graph used by snowball exploration."""

    pump_channels: list[PumpChannel] = field(default_factory=list)
    noise_channels: list[NoiseChannel] = field(default_factory=list)
    invitations: "nx.DiGraph" = field(default_factory=_empty_digraph)

    @classmethod
    def generate(cls, config: ReproConfig, universe: CoinUniverse) -> "ChannelPopulation":
        rng = np.random.default_rng(config.seed * 31337 + 17)
        population = cls()
        used_ids: set[int] = set()

        def fresh_id() -> int:
            while True:
                cid = int(rng.integers(1_000_000_000, 2_000_000_000))
                if cid not in used_ids:
                    used_ids.add(cid)
                    return cid

        n_ex = config.n_exchanges
        mix = np.zeros(n_ex)
        mix[: len(EXCHANGE_MIX)] = EXCHANGE_MIX[:n_ex]
        if n_ex > len(EXCHANGE_MIX):
            mix[len(EXCHANGE_MIX):] = (1.0 - mix.sum()) / (n_ex - len(EXCHANGE_MIX))
        mix = mix / mix.sum()

        max_rank = universe.n_coins
        for i in range(config.n_pump_channels):
            subscribers = int(np.exp(rng.normal(9.2, 1.3)))
            # Bigger channels target bigger caps (lower rank): the paper's
            # Figure 5 heterogeneity mechanism.
            size_factor = np.clip(
                (np.log(subscribers) - 6.0) / 6.0, 0.05, 1.0
            )
            # Wide inter-channel spread of preferred bands (Figure 5): the
            # exponent range pushes centers from the top few dozen ranks
            # down to deep mid-caps, correlated with channel size.
            center = np.exp(
                np.log(max_rank * 0.85) - size_factor * rng.uniform(0.5, 2.8)
            )
            center = float(np.clip(center, 25, max_rank * 0.9))
            n_clusters_pref = int(rng.integers(1, 3))
            clusters = tuple(
                int(c) for c in rng.choice(
                    universe.n_clusters, size=n_clusters_pref, replace=False
                )
            )
            exchange_weights = rng.dirichlet(mix * 25.0 + 1e-3)
            vip = fresh_id() if rng.random() < 0.4 else None
            is_seed = i < config.n_seed_channels
            deleted = bool(is_seed and rng.random() < 0.3)
            start = float(rng.uniform(0, config.horizon_hours * 0.25))
            population.pump_channels.append(
                PumpChannel(
                    channel_id=fresh_id(),
                    index=i,
                    subscribers=subscribers,
                    band_center=center,
                    band_width=float(rng.uniform(0.25, 0.5)),
                    clusters=clusters,
                    exchange_weights=exchange_weights,
                    period=int(rng.integers(3, 6)),
                    repump_prob=float(rng.uniform(0.5, 0.7)),
                    vip_channel_id=vip,
                    active_from=start,
                    active_to=float(config.horizon_hours),
                    is_seed=is_seed,
                    deleted=deleted,
                )
            )

        for _ in range(config.n_noise_channels):
            population.noise_channels.append(
                NoiseChannel(
                    channel_id=fresh_id(),
                    cluster=int(rng.integers(0, universe.n_clusters)),
                    messages_per_week=float(rng.uniform(3, 40)),
                )
            )

        population._build_invitation_graph(rng)
        return population

    def _build_invitation_graph(self, rng: np.random.Generator) -> None:
        """Invitation links: who advertises whom.

        Seeds advertise 1-hop channels, which advertise 2-hop channels; a
        small tail of pump channels is only reachable deeper than 2 hops, so
        bounded snowball exploration finds *most but not all* channels —
        matching the paper's experience.
        """
        graph = self.invitations
        for channel in self.pump_channels:
            graph.add_node(channel.channel_id, kind="pump")
        for channel in self.noise_channels:
            graph.add_node(channel.channel_id, kind="noise")

        alive = [c for c in self.pump_channels if not c.deleted]
        seeds = [c for c in alive if c.is_seed]
        non_seeds = [c for c in alive if not c.is_seed]
        rng.shuffle(non_seeds)
        n1 = max(1, int(len(non_seeds) * 0.5))
        n2 = max(1, int(len(non_seeds) * 0.3))
        hop1, hop2, hop3 = (
            non_seeds[:n1],
            non_seeds[n1: n1 + n2],
            non_seeds[n1 + n2:],
        )
        if seeds:
            for target in hop1:
                for src in rng.choice(seeds, size=min(2, len(seeds)), replace=False):
                    graph.add_edge(src.channel_id, target.channel_id)
            for target in hop2:
                pool = hop1 or seeds
                for src in rng.choice(pool, size=min(2, len(pool)), replace=False):
                    graph.add_edge(src.channel_id, target.channel_id)
            for target in hop3:
                pool = hop2 or hop1 or seeds
                src = rng.choice(pool)
                graph.add_edge(src.channel_id, target.channel_id)
        # Noise channels also host pump-channel adverts occasionally.
        for noise in self.noise_channels:
            if rng.random() < 0.2 and alive:
                target = alive[int(rng.integers(len(alive)))]
                graph.add_edge(noise.channel_id, target.channel_id)

    # -- lookups ---------------------------------------------------------------

    def seed_channel_ids(self, include_deleted: bool = True) -> list[int]:
        """The PumpOlymp-style verified seed list (may contain dead channels)."""
        return [
            c.channel_id
            for c in self.pump_channels
            if c.is_seed and (include_deleted or not c.deleted)
        ]

    def pump_by_id(self) -> dict[int, PumpChannel]:
        return {c.channel_id: c for c in self.pump_channels}

    def dead_channel_ids(self) -> set[int]:
        """Channels a liveness probe would report deleted/inaccessible."""
        return {c.channel_id for c in self.pump_channels if c.deleted}

    def subscriber_counts(self) -> dict[int, int]:
        """channel_id -> subscribers, for channels whose size is known.

        Only pump channels carry subscriber counts in the simulation;
        feature code falls back to a default for anything absent here.
        """
        return {c.channel_id: c.subscribers for c in self.pump_channels}

    def alive_pump_channels(self) -> list[PumpChannel]:
        return [c for c in self.pump_channels if not c.deleted]

    def all_channel_ids(self) -> list[int]:
        return [c.channel_id for c in self.pump_channels] + [
            c.channel_id for c in self.noise_channels
        ]
