"""repro.forecasting — §7 generalizability task: BTC price forecasting."""

from repro.forecasting.dataset import (
    BTCForecastDataset,
    ForecastSplit,
    HourlySentiment,
    SENTIMENT_FEATURE_NAMES,
    SEQUENCE_FEATURE_NAMES,
    aggregate_hourly_sentiment,
)
from repro.forecasting.models import (
    FORECAST_MODEL_NAMES,
    SNNForecaster,
    SequenceRegressor,
    make_forecaster,
)
from repro.forecasting.train import (
    ForecastExperiment,
    ForecastRunResult,
    run_forecasting_experiment,
    train_forecaster,
)

__all__ = [
    "BTCForecastDataset",
    "ForecastSplit",
    "HourlySentiment",
    "aggregate_hourly_sentiment",
    "SENTIMENT_FEATURE_NAMES",
    "SEQUENCE_FEATURE_NAMES",
    "SNNForecaster",
    "SequenceRegressor",
    "make_forecaster",
    "FORECAST_MODEL_NAMES",
    "train_forecaster",
    "run_forecasting_experiment",
    "ForecastExperiment",
    "ForecastRunResult",
]
