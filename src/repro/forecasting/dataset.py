"""Sentiment-enhanced BTC price forecasting dataset (§7, Table 7).

Pipeline: collect a dense BTC chat stream, score each message with the
sentiment analyser, aggregate statistics per hour (avg_score,
neg_avg_score, neg_num, pos_avg_score, pos_num, message_num), align with
hourly BTC prices, and emit 200-hour sequences labelled with the average
price over the next 48 or 96 hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.world import SyntheticWorld
from repro.text import SentimentAnalyzer

SENTIMENT_FEATURE_NAMES = (
    "avg_score", "neg_num", "pos_num", "message_num",
    "neg_avg_score", "pos_avg_score",
)
# Feature layout per hour: price first (paper's F1 = hour_price).
SEQUENCE_FEATURE_NAMES = ("hour_price",) + SENTIMENT_FEATURE_NAMES


@dataclass
class HourlySentiment:
    """Per-hour aggregated sentiment statistics + corpus counts."""

    features: np.ndarray       # (hours, 6) in SENTIMENT_FEATURE_NAMES order
    n_messages: int
    n_btc_messages: int
    n_positive: int
    n_negative: int


def aggregate_hourly_sentiment(world: SyntheticWorld, n_hours: int,
                               per_hour: float = 4.0) -> HourlySentiment:
    """Generate the BTC chat stream and aggregate per-hour features."""
    stream = world.message_generator().generate_btc_stream(0, n_hours,
                                                           per_hour=per_hour)
    analyzer = SentimentAnalyzer()
    features = np.zeros((n_hours, len(SENTIMENT_FEATURE_NAMES)))
    sums = np.zeros((n_hours, 3))  # total score, pos score, neg score
    counts = np.zeros((n_hours, 3), dtype=int)  # messages, pos, neg
    n_btc = 0
    for message in stream:
        hour = int(message.time)
        if hour >= n_hours:
            continue
        text_lower = message.text.lower()
        is_btc = "btc" in text_lower or "bitcoin" in text_lower
        if is_btc:
            n_btc += 1
        scores = analyzer.score(message.text)
        counts[hour, 0] += 1
        sums[hour, 0] += scores.compound
        if scores.compound > 0.05:
            counts[hour, 1] += 1
            sums[hour, 1] += scores.compound
        elif scores.compound < -0.05:
            counts[hour, 2] += 1
            sums[hour, 2] += scores.compound
    nonzero = np.maximum(counts[:, 0], 1)
    features[:, 0] = sums[:, 0] / nonzero                           # avg_score
    features[:, 1] = counts[:, 2]                                   # neg_num
    features[:, 2] = counts[:, 1]                                   # pos_num
    features[:, 3] = counts[:, 0]                                   # message_num
    features[:, 4] = sums[:, 2] / np.maximum(counts[:, 2], 1)       # neg_avg
    features[:, 5] = sums[:, 1] / np.maximum(counts[:, 1], 1)       # pos_avg
    return HourlySentiment(
        features=features,
        n_messages=len(stream),
        n_btc_messages=n_btc,
        n_positive=int(counts[:, 1].sum()),
        n_negative=int(counts[:, 2].sum()),
    )


@dataclass
class ForecastSplit:
    """Sliding-window samples of one split."""

    sequences: np.ndarray   # (B, seq_len, K) — standardized features
    labels: np.ndarray      # (B,) — normalized future average price
    base_price: np.ndarray  # (B,) — price at prediction time (for de-norm)

    def __len__(self) -> int:
        return len(self.labels)


@dataclass
class BTCForecastDataset:
    """Train/test splits for one prediction span (48h or 96h)."""

    train: ForecastSplit
    test: ForecastSplit
    span: int
    seq_len: int
    sentiment: HourlySentiment
    price_scale: float       # mean BTC price, used to report MAE in price units

    @classmethod
    def build(cls, world: SyntheticWorld, span: int = 48,
              seq_len: int | None = None, n_hours: int | None = None,
              train_fraction: float = 0.8, stride: int = 2,
              sentiment: HourlySentiment | None = None) -> "BTCForecastDataset":
        """Assemble sequences; ``span`` is the label horizon in hours.

        The label is BTC's *average* price over the next ``span`` hours
        ("predicting the price in the future 1 hour is considered too easy"),
        normalized as a relative change versus the current price.
        """
        if span < 1:
            raise ValueError("span must be positive")
        config = world.config
        seq_len = seq_len or config.forecast_seq_len
        n_hours = n_hours or config.forecast_hours
        if sentiment is None:
            sentiment = aggregate_hourly_sentiment(world, n_hours)
        hours = np.arange(n_hours, dtype=float)
        price = world.market.close_price(np.zeros(n_hours, dtype=int), hours)
        # Future average via cumulative sums: label[t] = mean(price[t+1..t+span]).
        csum = np.concatenate([[0.0], np.cumsum(price)])
        anchors = np.arange(seq_len - 1, n_hours - span, stride)
        future_avg = (csum[anchors + span + 1] - csum[anchors + 1]) / span
        base = price[anchors]
        labels = future_avg / base - 1.0

        # Per-hour feature matrix: relative log price + sentiment stats.
        log_rel_price = np.log(price / price.mean())
        matrix = np.column_stack([log_rel_price, sentiment.features])

        # Standardize feature columns with train statistics.
        n_train = int(train_fraction * len(anchors))
        train_hours_end = anchors[n_train - 1] + 1 if n_train else seq_len
        mean = matrix[:train_hours_end].mean(axis=0)
        std = matrix[:train_hours_end].std(axis=0)
        std[std == 0] = 1.0
        matrix = (matrix - mean) / std

        windows = np.lib.stride_tricks.sliding_window_view(
            matrix, (seq_len, matrix.shape[1])
        )[:, 0]
        sequences = windows[anchors - (seq_len - 1)]
        # Newest-last inside the window; flip so position 0 is newest (P1),
        # consistent with the target-coin task's convention.
        sequences = sequences[:, ::-1, :].copy()

        def split(sl: slice) -> ForecastSplit:
            return ForecastSplit(
                sequences=sequences[sl],
                labels=labels[sl],
                base_price=base[sl],
            )

        return cls(
            train=split(slice(0, n_train)),
            test=split(slice(n_train, len(anchors))),
            span=span,
            seq_len=seq_len,
            sentiment=sentiment,
            price_scale=float(price.mean()),
        )

    def table7(self) -> dict[str, int]:
        """Corpus statistics in the shape of the paper's Table 7."""
        return {
            "messages": self.sentiment.n_messages,
            "btc_messages": self.sentiment.n_btc_messages,
            "positive_messages": self.sentiment.n_positive,
            "negative_messages": self.sentiment.n_negative,
            "train_samples": len(self.train),
            "test_samples": len(self.test),
        }
