"""Forecasting models (§7.1): SNN and the sequential competitors.

In this task SNN "solely takes the sequence features as input": positional
attention over the 200-hour window with per-feature channel counts (16 for
``hour_price``, 2 for each sentiment feature), then an MLP regression head.
Competitors swap the attention for LSTM/BiLSTM/GRU/BiGRU encoders (hidden
32) or a TCN (depth 5, kernel 8 — enough receptive field for 200 steps).
"""

from __future__ import annotations

import numpy as np

from repro.nn import MLP, TCN, Module, PositionalAttention, Tensor, make_rnn

FORECAST_MODEL_NAMES = ("lstm", "bilstm", "gru", "bigru", "tcn", "snn")

PRICE_CHANNELS = 16    # paper: "the channel number to 16 for hour_price"
OTHER_CHANNELS = 2     # "for other features, the channel numbers are set to 2"
RNN_HIDDEN = 32
TCN_DEPTH = 5
TCN_KERNEL = 8
TCN_CHANNELS = 16


class SNNForecaster(Module):
    """Positional-attention regressor over ``(B, T, K)`` sequences."""

    def __init__(self, seq_len: int, n_features: int, rng: np.random.Generator):
        super().__init__()
        channels = [PRICE_CHANNELS] + [OTHER_CHANNELS] * (n_features - 1)
        self.attention = PositionalAttention(seq_len, n_features,
                                             channels=channels, rng=rng)
        self.head = MLP([self.attention.output_dim, 64, 1], rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.attention(x)).reshape(len(x))

    def attention_heatmap(self) -> np.ndarray:
        """(total_heads, T) attention weights for Figure 10(b)/(c)."""
        return self.attention.attention_weights()


class SequenceRegressor(Module):
    """RNN/TCN encoder + regression head."""

    def __init__(self, encoder: Module, rng: np.random.Generator):
        super().__init__()
        self.encoder = encoder
        self.head = MLP([encoder.output_dim, 64, 1], rng)

    def forward(self, x: Tensor) -> Tensor:
        # Sequences are stored newest-first; read oldest-first so the final
        # state corresponds to the most recent hour.
        return self.head(self.encoder(x.flip(axis=1))).reshape(len(x))


def make_forecaster(name: str, seq_len: int, n_features: int,
                    seed: int = 0) -> Module:
    """Factory for the Table 8 competitors."""
    rng = np.random.default_rng(seed)
    name = name.lower()
    if name == "snn":
        return SNNForecaster(seq_len, n_features, rng)
    if name in ("lstm", "bilstm", "gru", "bigru"):
        return SequenceRegressor(make_rnn(name, n_features, RNN_HIDDEN, rng), rng)
    if name == "tcn":
        return SequenceRegressor(
            TCN(n_features, channels=TCN_CHANNELS, depth=TCN_DEPTH,
                kernel_size=TCN_KERNEL, rng=rng),
            rng,
        )
    raise ValueError(f"unknown forecaster {name!r}; choose from {FORECAST_MODEL_NAMES}")
