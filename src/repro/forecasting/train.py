"""Training and the Table 8 experiment for BTC price forecasting."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.forecasting.dataset import BTCForecastDataset, ForecastSplit
from repro.forecasting.models import FORECAST_MODEL_NAMES, make_forecaster
from repro.nn import Adam, Module, Tensor, mae_loss, no_grad
from repro.simulation.world import SyntheticWorld


@dataclass
class ForecastRunResult:
    """MAE in price units plus training cost (per 50 batches, as Table 8)."""

    mae: float
    seconds_per_50_batches: float
    losses: list[float] = field(default_factory=list)


def _subset(split: ForecastSplit, price_only: bool) -> np.ndarray:
    """Select the P (price only) or P+T (price + telegram) feature set."""
    if price_only:
        return split.sequences[:, :, :1]
    return split.sequences


def train_forecaster(model: Module, dataset: BTCForecastDataset,
                     price_only: bool = False, epochs: int = 5,
                     batch_size: int = 128, lr: float = 2e-3,
                     seed: int = 0) -> ForecastRunResult:
    """Fit with MAE loss (eq. 9) and report test MAE in price units."""
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    train_x = _subset(dataset.train, price_only)
    # Standardize labels for optimization (relative price changes are tiny
    # compared to a fresh network's output scale); predictions are mapped
    # back before computing price-unit MAE.
    label_mean = float(dataset.train.labels.mean())
    label_std = float(dataset.train.labels.std()) or 1.0
    train_y = (dataset.train.labels - label_mean) / label_std
    losses: list[float] = []
    batch_times: list[float] = []
    for _ in range(epochs):
        model.train()
        order = rng.permutation(len(train_y))
        for start in range(0, len(order), batch_size):
            rows = order[start: start + batch_size]
            t0 = time.perf_counter()
            optimizer.zero_grad()
            pred = model(Tensor(train_x[rows]))
            loss = mae_loss(pred, train_y[rows])
            loss.backward()
            optimizer.step()
            batch_times.append(time.perf_counter() - t0)
            losses.append(loss.item())
    model.eval()
    test_x = _subset(dataset.test, price_only)
    with no_grad():
        pred = model(Tensor(test_x)).numpy() * label_std + label_mean
    predicted_price = dataset.test.base_price * (1.0 + pred)
    actual_price = dataset.test.base_price * (1.0 + dataset.test.labels)
    mae = float(np.abs(predicted_price - actual_price).mean())
    return ForecastRunResult(
        mae=mae,
        seconds_per_50_batches=float(np.mean(batch_times) * 50.0),
        losses=losses,
    )


# Per-model epoch multipliers: every competitor gets a comparable
# wall-clock training budget.  SNN's per-batch cost is ~10-50x below the
# RNNs' (Table 8's Cost row), so equal-epoch training would leave it
# heavily undertrained relative to the compute the paper affords it.
EPOCH_MULTIPLIER = {"snn": 5}


@dataclass
class ForecastExperiment:
    """Table 8: per-model MAE(P), MAE(P+T), improvement and cost."""

    span: int
    mae_price: dict[str, float] = field(default_factory=dict)
    mae_price_telegram: dict[str, float] = field(default_factory=dict)
    cost: dict[str, float] = field(default_factory=dict)
    models: dict[str, Module] = field(default_factory=dict)

    def improvement(self, name: str) -> float:
        return self.mae_price[name] - self.mae_price_telegram[name]


def run_forecasting_experiment(
    world: SyntheticWorld, span: int = 48,
    model_names: tuple[str, ...] = FORECAST_MODEL_NAMES,
    epochs: int = 5, seed: int = 0,
    dataset: BTCForecastDataset | None = None,
) -> ForecastExperiment:
    """Train every competitor with and without sentiment features."""
    dataset = dataset or BTCForecastDataset.build(world, span=span)
    n_features = dataset.train.sequences.shape[2]
    experiment = ForecastExperiment(span=span)
    for name in model_names:
        model_epochs = epochs * EPOCH_MULTIPLIER.get(name, 1)
        for price_only in (True, False):
            feats = 1 if price_only else n_features
            model = make_forecaster(name, dataset.seq_len, feats, seed=seed)
            result = train_forecaster(model, dataset, price_only=price_only,
                                      epochs=model_epochs, seed=seed)
            if price_only:
                experiment.mae_price[name] = result.mae
            else:
                experiment.mae_price_telegram[name] = result.mae
                experiment.cost[name] = result.seconds_per_50_batches
                experiment.models[name] = model
    return experiment
