"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``world``     — generate a synthetic world and print its summary.
``collect``   — run the §3 data-collection pipeline (Tables 1-4 summaries).
``analyze``   — run the §4 observational studies (Figures 3-6 numbers).
``train``     — train a ranker and report HR@k; optionally save weights.
``serve``     — train, then replay the test period through the streaming
                prediction service (``repro.serving``), emitting ranked
                alerts and service metrics.
``forecast``  — run the §7 BTC forecasting comparison (Table 8-lite).

All commands accept ``--scale {tiny,small,paper}`` and ``--seed N``.
"""

from __future__ import annotations

import argparse
import sys

from repro.utils import ReproConfig, format_table


# The deep rankers make_model() can build (classic lr/rf go through
# ClassicRanker and cannot drive the predictor's Batch interface).
DEEP_MODEL_CHOICES = ("dnn", "lstm", "bilstm", "gru", "bigru", "tcn", "snn")


def _config(args) -> ReproConfig:
    builders = {
        "tiny": ReproConfig.tiny,
        "small": ReproConfig.small,
        "paper": ReproConfig.paper,
    }
    return builders[args.scale](seed=args.seed)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=("tiny", "small", "paper"),
                        default="tiny", help="world size preset")
    parser.add_argument("--seed", type=int, default=7)


def cmd_world(args) -> int:
    from repro.simulation import SyntheticWorld

    world = SyntheticWorld.generate(_config(args))
    summary = world.summary()
    print(format_table(["quantity", "value"], list(summary.items()),
                       title="synthetic world"))
    return 0


def cmd_collect(args) -> int:
    from repro.data import collect
    from repro.simulation import SyntheticWorld

    world = SyntheticWorld.generate(_config(args))
    result = collect(world)
    print("exploration:", result.exploration.summary())
    for name, report in result.detection.reports.items():
        print(f"detector {name}: auc={report.auc:.3f} f1={report.f1:.3f}")
    print("table2:", result.table2())
    table4 = result.dataset.table4()
    print(format_table(
        ["split", "positives", "total"],
        [[s, table4[s]["positives"], table4[s]["total"]] for s in table4],
        title="table 4",
    ))
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import (
        channel_level_study,
        coin_level_study,
        event_study,
        semantic_study,
        volume_onset_hour,
    )
    from repro.data import collect
    from repro.simulation import SyntheticWorld

    world = SyntheticWorld.generate(_config(args))
    samples = collect(world).samples
    coins = coin_level_study(world, samples)
    print(f"repump rate: {coins.repump_rate:.3f}")
    print(f"cap cohort closest to pumped: {coins.closest_cohort('market_cap')}")
    events = event_study(world, max_events=60)
    print(f"peak return window: x={events.peak_window()} "
          f"({events.window_returns_pumped[events.peak_window()]:.3f})")
    print(f"volume onset: ~{volume_onset_hour(events):.0f}h before pump")
    channels = channel_level_study(world, samples, min_history=3)
    for feature, scatter in channels.scatters.items():
        print(f"homogeneity[{feature}]: {scatter.homogeneity_ratio:.3f}")
    semantics = semantic_study(world, samples, n_pairs=300)
    for strategy in ("same_channel", "pumped_set", "all_coins"):
        print(f"semantic sim[{strategy}]: {semantics.mean(strategy):.3f}")
    return 0


def cmd_train(args) -> int:
    from repro.core import (
        Trainer,
        evaluate_scores,
        make_model,
        predict_scores,
        snn_config_for,
    )
    from repro.data import collect
    from repro.features import FeatureAssembler
    from repro.simulation import SyntheticWorld

    world = SyntheticWorld.generate(_config(args))
    assembled = FeatureAssembler(world, collect(world).dataset).assemble()
    model = make_model(args.model, snn_config_for(assembled), seed=args.seed)
    trainer = Trainer(epochs=args.epochs, seed=args.seed)
    trainer.fit(model, assembled.train, assembled.validation)
    hr = evaluate_scores(assembled.test, predict_scores(model, assembled.test))
    print(format_table(
        ["metric", "value"], [[f"HR@{k}", f"{v:.3f}"] for k, v in hr.items()],
        title=f"{args.model} on the test split",
    ))
    if args.save:
        from repro.nn.serialize import save_module

        save_module(model, args.save)
        print(f"weights saved to {args.save}")
    return 0


def cmd_serve(args) -> int:
    if args.max_batch < 1:
        print("repro serve: --max-batch must be >= 1", file=sys.stderr)
        return 2
    from repro.core import train_predictor
    from repro.data import collect
    from repro.serving import ConsoleAlertSink, JsonLinesAlertSink, replay_test_period
    from repro.simulation import SyntheticWorld

    world = SyntheticWorld.generate(_config(args))
    collection = collect(world)
    predictor = train_predictor(world, collection, model=args.model,
                                epochs=args.epochs, seed=args.seed)

    sinks = [ConsoleAlertSink(top_k=args.top_k)]
    if args.jsonl:
        sinks.append(JsonLinesAlertSink(args.jsonl, top_k=args.top_k))
    try:
        result = replay_test_period(
            world, collection, predictor, sinks=tuple(sinks),
            bucket_hours=args.bucket_hours,
            cache_entries=0 if args.no_cache else 512,
            max_batch=args.max_batch,
        )
    finally:
        for sink in sinks:
            sink.close()

    print(format_table(
        ["metric", "value"],
        list(result.stats.summary().items()),
        title="serving metrics",
    ))
    hits = [a for a in result.alerts if 0 < a.announced_rank <= args.top_k]
    if result.alerts:
        print(f"alerts: {len(result.alerts)}; released coin in "
              f"top-{args.top_k}: {len(hits) / len(result.alerts):.0%}")
    if args.jsonl:
        print(f"alert records appended to {args.jsonl}")
    return 0


def cmd_forecast(args) -> int:
    from repro.forecasting import BTCForecastDataset, run_forecasting_experiment
    from repro.simulation import SyntheticWorld

    world = SyntheticWorld.generate(_config(args))
    dataset = BTCForecastDataset.build(world, span=args.span)
    experiment = run_forecasting_experiment(
        world, span=args.span, model_names=tuple(args.models.split(",")),
        epochs=args.epochs, dataset=dataset,
    )
    rows = [
        [name, round(experiment.mae_price[name], 2),
         round(experiment.mae_price_telegram[name], 2),
         round(experiment.improvement(name), 2),
         round(experiment.cost[name], 3)]
        for name in experiment.mae_price
    ]
    print(format_table(["model", "MAE(P)", "MAE(P+T)", "impr", "cost"], rows,
                       title=f"BTC forecasting, span={args.span}h"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_world = sub.add_parser("world", help="generate and summarize a world")
    _add_common(p_world)
    p_world.set_defaults(fn=cmd_world)

    p_collect = sub.add_parser("collect", help="run the data pipeline")
    _add_common(p_collect)
    p_collect.set_defaults(fn=cmd_collect)

    p_analyze = sub.add_parser("analyze", help="run the §4 studies")
    _add_common(p_analyze)
    p_analyze.set_defaults(fn=cmd_analyze)

    p_train = sub.add_parser("train", help="train a target-coin ranker")
    _add_common(p_train)
    p_train.add_argument("--model", default="snn", choices=DEEP_MODEL_CHOICES)
    p_train.add_argument("--epochs", type=int, default=8)
    p_train.add_argument("--save", default="", help="path to save weights (.npz)")
    p_train.set_defaults(fn=cmd_train)

    p_serve = sub.add_parser(
        "serve", help="replay the test period through the streaming service"
    )
    _add_common(p_serve)
    p_serve.add_argument("--model", default="snn", choices=DEEP_MODEL_CHOICES)
    p_serve.add_argument("--epochs", type=int, default=8)
    p_serve.add_argument("--top-k", type=int, default=3,
                         help="coins shown per alert")
    p_serve.add_argument("--jsonl", default="",
                         help="also append alerts to this JSON-lines file")
    p_serve.add_argument("--bucket-hours", type=float, default=1.0,
                         help="feature-cache time bucket (0 = exact times)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable feature memoization")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="max concurrent announcements per forward pass")
    p_serve.set_defaults(fn=cmd_serve)

    p_forecast = sub.add_parser("forecast", help="run the §7 comparison")
    _add_common(p_forecast)
    p_forecast.add_argument("--span", type=int, default=48, choices=(12, 24, 48, 96))
    p_forecast.add_argument("--models", default="gru,snn")
    p_forecast.add_argument("--epochs", type=int, default=5)
    p_forecast.set_defaults(fn=cmd_forecast)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
