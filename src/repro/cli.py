"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``world``     — generate a synthetic world and print its summary.
``collect``   — run the §3 data-collection pipeline (Tables 1-4 summaries).
``analyze``   — run the §4 observational studies (Figures 3-6 numbers).
``train``     — train a ranker, report HR@k; ``--save`` writes a full
                servable artifact (``repro.registry``) and ``--register``
                publishes it into the model registry.
``serve``     — replay the test period through the streaming prediction
                service (``repro.serving``); ``--load`` boots from a saved
                artifact (path or ``name[@version]``) without retraining;
                ``--gateway URL`` replays against a remote gateway instead.
``gateway``   — serve the versioned HTTP/JSON prediction API
                (``repro.gateway``): rank/observe/models/reload/healthz/
                stats endpoints over a hot-swappable registry artifact.
                ``--store DB`` makes the stream durable (``repro.store``)
                and rehydrates it on boot; ``--max-inflight`` /
                ``--deadline-ms`` bound load and latency.
``history``   — backtest-style queries over a ``--store`` event log:
                ``summary``, ``alerts`` (channel/window filters), ``hr``
                (hit rate @ k over the logged alerts).
``telemetry`` — scrape a running gateway: ``metrics`` fetches + validates
                the Prometheus exposition (``--require`` gates CI on a
                series being live), ``traces`` pretty-prints recent span
                trees.
``ingest``    — build a canonical file dump (``repro.sources``): either
                export a synthetic replay or normalize raw CSV/JSONL files.
``models``    — list / inspect / validate registry contents.
``forecast``  — run the §7 BTC forecasting comparison (Table 8-lite).
``lint``      — run the project's static-analysis rules (``repro.lint``):
                layering, dependency policy, lock discipline,
                determinism, wire-contract drift.  ``--strict`` is the
                CI gate; ``--write-baseline`` grandfathers existing
                findings.

``train`` and ``serve`` accept ``--source synthetic`` (default) or
``--source file:<dump-dir>`` — the data plane is pluggable end to end, so
a model trained on one backend can be served from another through the
registry.  All world-building commands accept ``--scale
{tiny,small,paper}`` and ``--seed N``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.utils import ReproConfig, format_table


# The deep rankers make_model() can build (classic lr/rf go through
# ClassicRanker and cannot drive the predictor's Batch interface).
DEEP_MODEL_CHOICES = ("dnn", "lstm", "bilstm", "gru", "bigru", "tcn", "snn")

DEFAULT_REGISTRY = "models"


def _fail(command: str, message: str) -> int:
    """Uniform operational-error exit: message to stderr, code 2."""
    print(f"repro {command}: {message}", file=sys.stderr)
    return 2


def _resolve_artifact_path(ref: str, registry_root: str, command: str):
    """Resolve ``--load`` (a path or ``name[@version]``) to an artifact dir.

    A ref containing a path separator is always a filesystem path; a bare
    ref resolves against the registry first, falling back to a local
    directory of that name — so a stray ``./snn`` directory in the cwd
    cannot silently shadow the registered model ``snn``.

    Returns ``(path, error_code)``; exactly one is ``None``.
    """
    from repro.registry import ModelRegistry, RegistryError, parse_ref

    candidate = Path(ref)
    if "/" in ref or os.sep in ref:
        if candidate.exists():
            return candidate, None
        return None, _fail(
            command, f"cannot load {ref!r}: no such artifact directory"
        )
    name, version = parse_ref(ref)
    registry = ModelRegistry(registry_root)
    try:
        return registry.resolve(name, version), None
    except RegistryError as exc:
        # Fall back to a local directory only when the registry has no
        # model of this name at all — a registered-but-broken entry (or a
        # typo'd version) must surface its real error, not be silently
        # shadowed by a same-named cwd directory.
        try:
            known = bool(registry.versions(name))
        except RegistryError:
            known = False
        if known:
            return None, _fail(command, f"cannot load {ref!r}: {exc}")
    if candidate.exists():
        return candidate, None
    return None, _fail(
        command,
        f"cannot load {ref!r}: not a registered model under "
        f"{registry_root!r}, and not an artifact directory",
    )


def _build_source(args, command: str):
    """Resolve ``--source`` into a data backend.

    Returns ``(source, error_code)``; exactly one is ``None``.  The
    synthetic backend is generated from ``--scale``/``--seed``; a file
    backend ignores both (the dump fixes its own universe).
    """
    from repro.sources import SourceDataError, parse_source_spec

    try:
        return parse_source_spec(
            getattr(args, "source", "synthetic"), config=_config(args)
        ), None
    except SourceDataError as exc:
        return None, _fail(command, str(exc))


def _open_store(args, command: str):
    """Open ``--store`` as a durable event log, if one was requested.

    Returns ``(store_or_None, error_code)``; at most one is non-None.
    """
    path = getattr(args, "store", "")
    if not path:
        return None, None
    from repro.store import SQLiteEventStore, StoreError

    try:
        return SQLiteEventStore(path), None
    except StoreError as exc:
        return None, _fail(command, str(exc))


def _config(args) -> ReproConfig:
    builders = {
        "tiny": ReproConfig.tiny,
        "small": ReproConfig.small,
        "paper": ReproConfig.paper,
    }
    return builders[args.scale](seed=args.seed)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=("tiny", "small", "paper"),
                        default="tiny", help="world size preset")
    parser.add_argument("--seed", type=int, default=7)


def cmd_world(args) -> int:
    from repro.simulation import SyntheticWorld

    world = SyntheticWorld.generate(_config(args))
    summary = world.summary()
    print(format_table(["quantity", "value"], list(summary.items()),
                       title="synthetic world"))
    return 0


def cmd_collect(args) -> int:
    from repro.data import collect
    from repro.simulation import SyntheticWorld

    world = SyntheticWorld.generate(_config(args))
    result = collect(world)
    print("exploration:", result.exploration.summary())
    for name, report in result.detection.reports.items():
        print(f"detector {name}: auc={report.auc:.3f} f1={report.f1:.3f}")
    print("table2:", result.table2())
    table4 = result.dataset.table4()
    print(format_table(
        ["split", "positives", "total"],
        [[s, table4[s]["positives"], table4[s]["total"]] for s in table4],
        title="table 4",
    ))
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import (
        channel_level_study,
        coin_level_study,
        event_study,
        semantic_study,
        volume_onset_hour,
    )
    from repro.data import collect
    from repro.simulation import SyntheticWorld

    world = SyntheticWorld.generate(_config(args))
    samples = collect(world).samples
    coins = coin_level_study(world, samples)
    print(f"repump rate: {coins.repump_rate:.3f}")
    print(f"cap cohort closest to pumped: {coins.closest_cohort('market_cap')}")
    events = event_study(world, max_events=60)
    print(f"peak return window: x={events.peak_window()} "
          f"({events.window_returns_pumped[events.peak_window()]:.3f})")
    print(f"volume onset: ~{volume_onset_hour(events):.0f}h before pump")
    channels = channel_level_study(world, samples, min_history=3)
    for feature, scatter in channels.scatters.items():
        print(f"homogeneity[{feature}]: {scatter.homogeneity_ratio:.3f}")
    semantics = semantic_study(world, samples, n_pairs=300)
    for strategy in ("same_channel", "pumped_set", "all_coins"):
        print(f"semantic sim[{strategy}]: {semantics.mean(strategy):.3f}")
    return 0


def cmd_train(args) -> int:
    from repro.core import (
        TargetCoinPredictor,
        Trainer,
        evaluate_scores,
        make_model,
        predict_scores,
        snn_config_for,
    )
    from repro.data import collect
    from repro.features import FeatureAssembler
    from repro.registry import ModelRegistry, RegistryError

    # Fail fast on unusable save/register targets: don't spend the
    # training run to find out.
    if args.register:
        try:
            ModelRegistry.check_name(args.register)
        except RegistryError as exc:
            return _fail("train", str(exc))
        if Path(args.registry).is_file():
            return _fail(
                "train",
                f"--registry target {args.registry!r} is an existing file, "
                "not a directory",
            )
    if args.save:
        from repro.registry import check_save_target

        problem = check_save_target(args.save)
        if problem is not None:
            return _fail("train", f"--save: {problem}")

    from repro.sources import SourceDataError

    source, error = _build_source(args, "train")
    if error is not None:
        return error
    try:
        # A file dump with gaps surfaces here (collection, assembly or
        # scaler fitting query the candle grid) — diagnostic, not traceback.
        dataset = collect(source).dataset
        signal_engine = None
        if getattr(args, "signals", False):
            from repro.signals import SignalEngine

            signal_engine = SignalEngine.from_source(source)
        assembler = FeatureAssembler(source, dataset,
                                     signal_engine=signal_engine)
        assembled = assembler.assemble()
    except SourceDataError as exc:
        return _fail("train", str(exc))
    model = make_model(args.model, snn_config_for(assembled), seed=args.seed)
    trainer = Trainer(epochs=args.epochs, seed=args.seed)
    trainer.fit(model, assembled.train, assembled.validation)
    hr = evaluate_scores(assembled.test, predict_scores(model, assembled.test))
    print(format_table(
        ["metric", "value"], [[f"HR@{k}", f"{v:.3f}"] for k, v in hr.items()],
        title=f"{args.model} on the test split",
    ))
    if args.save or args.register:
        from repro.registry import ArtifactError, save_artifact

        try:
            predictor = TargetCoinPredictor(source, dataset, model, assembler)
        except SourceDataError as exc:
            return _fail("train", str(exc))
        provenance = {
            "model": args.model, "epochs": args.epochs, "seed": args.seed,
            "data_source": source.descriptor(),
            "signal_channels": list(signal_engine.feature_names)
            if signal_engine is not None else [],
            "hr": {str(k): round(v, 4) for k, v in hr.items()},
        }
        if source.kind == "synthetic":
            # --scale only shapes the synthetic backend; recording it for a
            # file dump would claim a world size that never applied.
            provenance["scale"] = args.scale
        step = "save artifact"
        try:
            if args.save:
                path = save_artifact(predictor, args.save,
                                     provenance=provenance)
                print(f"artifact saved to {path} "
                      f"(serve it with: repro serve --load {path})")
            if args.register:
                step = "register artifact"
                registry = ModelRegistry(args.registry)
                if args.save:
                    # Reuse the bundle just written: one snapshot, and the
                    # registered copy is byte-identical to the saved one.
                    entry = registry.import_artifact(path, args.register)
                else:
                    entry = registry.publish(predictor, args.register,
                                             provenance=provenance)
                print(f"registered {entry.name}@{entry.version} "
                      f"under {args.registry} (latest)")
        except (ArtifactError, RegistryError, OSError) as exc:
            # A failed registration does not undo a successful --save —
            # the step name keeps the diagnostic truthful either way.
            return _fail("train", f"cannot {step}: {exc}")
    return 0


def _print_replay_outcome(result, args) -> None:
    """Shared epilogue of a local or remote test-period replay."""
    print(format_table(
        ["metric", "value"],
        list(result.stats.summary().items()),
        title="serving metrics",
    ))
    hits = [a for a in result.alerts if 0 < a.announced_rank <= args.top_k]
    if result.alerts:
        print(f"alerts: {len(result.alerts)}; released coin in "
              f"top-{args.top_k}: {len(hits) / len(result.alerts):.0%}")
    if args.jsonl:
        print(f"alert records appended to {args.jsonl}")


def _serve_remote(args) -> int:
    """``repro serve --gateway URL``: replay against a remote gateway."""
    from repro.data import collect
    from repro.gateway import (
        GatewayClient,
        GatewayClientError,
        GatewayConnectionError,
        replay_against_gateway,
    )
    from repro.serving import ConsoleAlertSink, JsonLinesAlertSink
    from repro.sources import SourceDataError

    if args.load or args.model is not None or args.epochs is not None:
        print("repro serve: --load/--model/--epochs are ignored with "
              "--gateway (the remote gateway owns the model)",
              file=sys.stderr)
    try:
        client = GatewayClient(args.gateway)
    except ValueError as exc:
        return _fail("serve", f"bad --gateway URL: {exc}")
    try:
        health = client.healthz()
    except GatewayClientError as exc:
        return _fail("serve", str(exc))
    model = health.model or {}
    print(f"replaying against gateway {client.base_url} "
          f"(model {model.get('ref') or model.get('arch') or '?'})")
    source, error = _build_source(args, "serve")
    if error is not None:
        return error
    sinks = [ConsoleAlertSink(top_k=args.top_k)]
    if args.jsonl:
        sinks.append(JsonLinesAlertSink(args.jsonl, top_k=args.top_k))
    try:
        collection = collect(source)
        result = replay_against_gateway(
            source, collection, client, sinks=tuple(sinks),
            max_batch=args.max_batch,
        )
    except SourceDataError as exc:
        return _fail("serve", str(exc))
    except GatewayClientError as exc:
        return _fail("serve", str(exc))
    finally:
        for sink in sinks:
            sink.close()
    _print_replay_outcome(result, args)
    return 0


def cmd_serve(args) -> int:
    if args.max_batch < 1:
        return _fail("serve", "--max-batch must be >= 1")
    if args.top_k < 1:
        return _fail("serve", "--top-k must be >= 1")
    if args.gateway:
        return _serve_remote(args)
    from repro.core import train_predictor
    from repro.data import collect
    from repro.registry import ArtifactError, load_predictor
    from repro.serving import ConsoleAlertSink, JsonLinesAlertSink, replay_test_period

    artifact_path = None
    if args.load:
        if args.model is not None or args.epochs is not None:
            print("repro serve: --model/--epochs are ignored with --load "
                  "(the artifact fixes the architecture and weights)",
                  file=sys.stderr)
        artifact_path, error = _resolve_artifact_path(
            args.load, args.registry, "serve"
        )
        if error is not None:
            return error

    from repro.sources import SourceDataError

    source, error = _build_source(args, "serve")
    if error is not None:
        return error
    try:
        collection = collect(source)
        if artifact_path is not None:
            try:
                predictor = load_predictor(artifact_path, source,
                                           collection.dataset)
            except ArtifactError as exc:
                return _fail("serve", f"cannot load {artifact_path}: {exc}")
            print(f"serving from artifact {artifact_path} (no training)")
        else:
            predictor = train_predictor(
                source, collection,
                model=args.model if args.model is not None else "snn",
                epochs=args.epochs if args.epochs is not None else 8,
                seed=args.seed,
            )
    except SourceDataError as exc:
        return _fail("serve", str(exc))

    store, error = _open_store(args, "serve")
    if error is not None:
        return error
    sinks = [ConsoleAlertSink(top_k=args.top_k)]
    if args.jsonl:
        sinks.append(JsonLinesAlertSink(args.jsonl, top_k=args.top_k))
    try:
        result = replay_test_period(
            source, collection, predictor, sinks=tuple(sinks),
            bucket_hours=args.bucket_hours,
            cache_entries=0 if args.no_cache else 512,
            max_batch=args.max_batch, store=store,
        )
        if store is not None:
            store.append_stats(result.stats.summary())
    except SourceDataError as exc:
        return _fail("serve", str(exc))
    finally:
        for sink in sinks:
            sink.close()
        if store is not None:
            store.flush()
            store.close()

    _print_replay_outcome(result, args)
    if store is not None:
        print(f"event log appended to {args.store} "
              f"(inspect with: repro history summary --store {args.store})")
    return 0


def _run_gateway_pool(args, artifact_path, source) -> int:
    """``repro gateway --workers N``: pre-fork pool + supervisor.

    The parent binds the listening sockets, prepares everything forks
    share copy-on-write (market source, collection, model descriptor)
    and supervises; each forked worker builds its *own* service, store
    connection and app (``_build`` runs post-fork — SQLite connections
    must not cross a fork).
    """
    import tempfile

    from repro.data import collect
    from repro.gateway import GatewayApp, describe_model
    from repro.gateway.pool import bind_pool_sockets, run_pool, worker_serve
    from repro.registry import (
        ArtifactError,
        ModelRegistry,
        parse_ref,
        read_manifest,
    )
    from repro.serving import PredictionService
    from repro.sources import SourceDataError
    from repro.telemetry import TelemetryHub

    try:
        collection = collect(source)
        manifest = read_manifest(artifact_path)
    except (SourceDataError, ArtifactError) as exc:
        return _fail("gateway", str(exc))

    name = None
    if "/" not in args.load and os.sep not in args.load:
        name, _version = parse_ref(args.load)
    descriptor = describe_model(
        args.load, artifact_path, manifest,
        name=name, version=artifact_path.name if name else None,
    )

    try:
        sockets, port = bind_pool_sockets(args.host, args.port,
                                          args.workers)
    except OSError as exc:
        return _fail("gateway",
                     f"cannot bind {args.host}:{args.port}: {exc}")
    metrics_dir = tempfile.mkdtemp(prefix="repro-gateway-metrics-")

    def _build(worker_id: int):
        store = None
        if args.store:
            from repro.store import (
                SQLiteEventStore,
                StoreError,
                rehydrate_service,
            )

            try:
                store = SQLiteEventStore(args.store)
            except StoreError as exc:
                raise SystemExit(_fail("gateway", str(exc))) from None
        service_options = {
            "bucket_hours": args.bucket_hours,
            "cache_entries": 0 if args.no_cache else 512,
        }
        if store is not None:
            service_options["store"] = store
        service = PredictionService.from_artifact(
            artifact_path, source, collection.dataset, **service_options,
        )
        if store is not None:
            recovered = rehydrate_service(service, store)
            # The store doubles as the pool's replication bus: every
            # worker folds the others' observations in seq order, so
            # histories (and rankings) match a single process.
            service.enable_store_following()
            if recovered["observations"] or recovered["alerts"]:
                print(f"rehydrated from {args.store}: "
                      f"{recovered['observations']} observations, "
                      f"{recovered['alerts']} alerts, stats snapshot "
                      f"{'restored' if recovered['stats_snapshot'] else 'absent'}",
                      flush=True)
        app = GatewayApp(
            service, registry=ModelRegistry(args.registry),
            model=dict(descriptor), max_batch=args.max_batch,
            service_options=service_options,
            telemetry=TelemetryHub(slow_ms=args.slow_ms),
            batch_window_ms=args.batch_window_ms,
        )
        return app, store

    def _child_main(worker_id, listen_socket):
        return worker_serve(
            worker_id, listen_socket, _build,
            verbose=args.verbose, max_inflight=args.max_inflight,
            deadline_ms=args.deadline_ms, snapshot_s=args.snapshot_s,
            drain_s=args.drain_s, metrics_dir=metrics_dir,
        )

    print(f"gateway listening on http://{args.host}:{port} "
          f"(model {args.load}, registry {args.registry}, "
          f"{args.workers} workers)", flush=True)
    if args.store:
        print(f"event log: {args.store} "
              f"(snapshot every {args.snapshot_s:g}s)", flush=True)
    return run_pool(sockets, args.workers, _child_main,
                    drain_s=args.drain_s)


def cmd_gateway(args) -> int:
    if args.max_batch < 1:
        return _fail("gateway", "--max-batch must be >= 1")
    if not 0 <= args.port <= 65535:
        return _fail("gateway", "--port must be in [0, 65535]")
    if args.max_inflight is not None and args.max_inflight < 1:
        return _fail("gateway", "--max-inflight must be >= 1")
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        return _fail("gateway", "--deadline-ms must be > 0")
    if args.snapshot_s <= 0:
        return _fail("gateway", "--snapshot-s must be > 0")
    if args.drain_s <= 0:
        return _fail("gateway", "--drain-s must be > 0")
    if args.workers < 1:
        return _fail("gateway", "--workers must be >= 1")
    if args.batch_window_ms < 0:
        return _fail("gateway", "--batch-window-ms must be >= 0")
    if args.slow_ms < 0:
        return _fail("gateway", "--slow-ms must be >= 0")

    artifact_path, error = _resolve_artifact_path(
        args.load, args.registry, "gateway"
    )
    if error is not None:
        return error
    source, error = _build_source(args, "gateway")
    if error is not None:
        return error
    if args.workers > 1:
        return _run_gateway_pool(args, artifact_path, source)
    store, error = _open_store(args, "gateway")
    if error is not None:
        return error

    from repro.data import collect
    from repro.gateway import GatewayApp, describe_model, make_server
    from repro.registry import (
        ArtifactError,
        ModelRegistry,
        parse_ref,
        read_manifest,
    )
    from repro.serving import PredictionService
    from repro.sources import SourceDataError

    service_options = {
        "bucket_hours": args.bucket_hours,
        "cache_entries": 0 if args.no_cache else 512,
    }
    if store is not None:
        service_options["store"] = store
    try:
        collection = collect(source)
        try:
            manifest = read_manifest(artifact_path)
            service = PredictionService.from_artifact(
                artifact_path, source, collection.dataset, **service_options,
            )
        except ArtifactError as exc:
            return _fail("gateway", f"cannot load {artifact_path}: {exc}")
    except SourceDataError as exc:
        return _fail("gateway", str(exc))

    if store is not None:
        from repro.store import rehydrate_service

        recovered = rehydrate_service(service, store)
        if recovered["observations"] or recovered["alerts"]:
            print(f"rehydrated from {args.store}: "
                  f"{recovered['observations']} observations, "
                  f"{recovered['alerts']} alerts, stats snapshot "
                  f"{'restored' if recovered['stats_snapshot'] else 'absent'}")

    # A bare/registry ref keeps its name; a path ref records only the path.
    name = None
    if "/" not in args.load and os.sep not in args.load:
        name, _version = parse_ref(args.load)
    descriptor = describe_model(
        args.load, artifact_path, manifest,
        name=name, version=artifact_path.name if name else None,
    )
    from repro.telemetry import TelemetryHub

    app = GatewayApp(
        service, registry=ModelRegistry(args.registry), model=descriptor,
        max_batch=args.max_batch, service_options=service_options,
        telemetry=TelemetryHub(slow_ms=args.slow_ms),
        batch_window_ms=args.batch_window_ms,
    )
    try:
        server = make_server(app, args.host, args.port, verbose=args.verbose,
                             max_inflight=args.max_inflight,
                             deadline_ms=args.deadline_ms)
    except OSError as exc:
        return _fail("gateway",
                     f"cannot bind {args.host}:{args.port}: {exc}")
    host, port = server.server_address[:2]
    print(f"gateway listening on http://{host}:{port} "
          f"(model {args.load}, registry {args.registry})")
    print("endpoints: POST /v1/rank  POST /v1/rank/batch  POST /v1/observe")
    print("           GET /v1/models  POST /v1/models/reload  "
          "GET /v1/healthz  GET /v1/stats")
    print("           GET /v1/metrics  GET /v1/trace/recent")
    if store is not None:
        print(f"event log: {args.store} (snapshot every {args.snapshot_s:g}s)")

    import signal
    import threading

    def _on_sigterm(signum, frame):
        # serve_forever() runs in this (main) thread, so shutdown() must
        # happen from another one — calling it here would deadlock.
        print("gateway: SIGTERM received, draining", flush=True)
        server.begin_drain()
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)

    stop_snapshots = threading.Event()
    if store is not None:
        def _snapshot_loop():
            while not stop_snapshots.wait(args.snapshot_s):
                app.snapshot_stats()

        threading.Thread(target=_snapshot_loop, name="repro-store-snapshot",
                         daemon=True).start()

    try:
        server.serve_forever()
        # Reached via SIGTERM-triggered shutdown(): finish in-flight work.
        if not server.wait_drained(args.drain_s):
            print("gateway: drain timed out with requests still in flight",
                  file=sys.stderr)
    except KeyboardInterrupt:
        print("gateway: shutting down")
        server.begin_drain()
        server.wait_drained(args.drain_s)
    finally:
        stop_snapshots.set()
        signal.signal(signal.SIGTERM, previous_handler)
        if store is not None:
            app.snapshot_stats()
            store.flush()
            store.close()
        server.server_close()
    print("gateway: drained, event log flushed" if store is not None
          else "gateway: stopped")
    return 0


def cmd_history(args) -> int:
    """Backtest-style queries against a durable event log (repro.store)."""
    from repro.store import SQLiteEventStore, StoreError

    path = Path(args.store)
    if not path.exists():
        return _fail("history", f"no event log at {args.store}")
    try:
        store = SQLiteEventStore(path)
    except StoreError as exc:
        return _fail("history", f"cannot open {args.store}: {exc}")

    try:
        if args.history_command == "summary":
            counts = store.counts()
            span = store.time_span()
            rows = [(table, str(count)) for table, count in counts.items()]
            rows.append(("scored_rows", str(store.scored_rows())))
            if span is not None:
                rows.append(("alert_time_span",
                             f"{span[0]:.3f} .. {span[1]:.3f} h"))
            print(format_table(["table", "rows"], rows,
                               title=f"event log @ {args.store}"))
            snapshot = store.latest_stats()
            if snapshot is not None:
                print("latest stats snapshot:")
                for key in sorted(snapshot):
                    print(f"  {key} = {snapshot[key]}")
            return 0

        if args.history_command == "alerts":
            alerts = store.alerts(
                channel_id=args.channel, since=args.since,
                until=args.until, limit=args.limit,
            )
            if args.json:
                for alert in alerts:
                    print(json.dumps(alert.to_payload(), sort_keys=True))
                return 0
            if not alerts:
                print("no alerts match")
                return 0
            rows = []
            for alert in alerts:
                top = ", ".join(
                    f"{score.symbol}:{score.probability:.4f}"
                    for score in alert.ranking.scores[:args.top_k]
                )
                rank = alert.announced_rank
                rows.append((
                    f"{alert.announcement.time:.3f}",
                    str(alert.announcement.channel_id),
                    str(rank) if rank else "-",
                    top,
                ))
            print(format_table(
                ["time(h)", "channel", "hit@rank", f"top-{args.top_k}"],
                rows, title=f"{len(alerts)} alerts @ {args.store}"))
            return 0

        # hr — hit rate over a window of the log
        since, until = args.since, args.until
        if args.last_hours is not None:
            span = store.time_span()
            if span is None:
                return _fail("history", "event log holds no alerts")
            since, until = span[1] - args.last_hours, span[1]
        hits, total = store.hit_rate(args.k, since=since, until=until)
        window = ""
        if since is not None or until is not None:
            lo = f"{since:.3f}" if since is not None else "start"
            hi = f"{until:.3f}" if until is not None else "end"
            window = f" in [{lo}, {hi}] h"
        if total == 0:
            print(f"HR@{args.k}: no labeled alerts{window}")
            return 0
        print(f"HR@{args.k} = {hits / total:.4f} "
              f"({hits}/{total} labeled alerts{window})")
        return 0
    except StoreError as exc:
        return _fail("history", f"query failed: {exc}")
    finally:
        store.close()


def _print_span_tree(node: dict, depth: int = 0) -> None:
    pad = "  " * depth
    duration = node.get("duration_ms")
    timing = f"{duration:.3f}ms" if isinstance(duration, (int, float)) else "?"
    attributes = node.get("attributes") or {}
    detail = " ".join(f"{k}={v}" for k, v in attributes.items())
    line = f"{pad}{node.get('name', '?')}  {timing}"
    if detail:
        line += f"  [{detail}]"
    print(line)
    for child in node.get("children") or []:
        _print_span_tree(child, depth + 1)


def cmd_telemetry(args) -> int:
    """Scrape and pretty-print a running gateway's telemetry."""
    from repro.gateway import GatewayClient, GatewayClientError
    from repro.telemetry import ExpositionError, parse_text

    client = GatewayClient(args.url)
    if args.telemetry_command == "metrics":
        try:
            text = client.metrics_text()
        except GatewayClientError as exc:
            return _fail("telemetry", str(exc))
        try:
            samples = parse_text(text)
        except ExpositionError as exc:
            return _fail("telemetry",
                         f"invalid exposition from {args.url}: {exc}")
        if args.raw:
            sys.stdout.write(text)
        else:
            rows = [
                (
                    sample.name,
                    "{%s}" % ",".join(f'{k}="{v}"' for k, v in sample.labels)
                    if sample.labels else "",
                    f"{sample.value:g}",
                )
                for sample in samples
            ]
            print(format_table(["series", "labels", "value"], rows,
                               title=f"metrics @ {args.url}"))
        # --require SERIES: CI gate — the series must exist with a nonzero
        # sample somewhere (counters that never fired render as absent or
        # all-zero; both mean the instrumentation is broken).
        failed = []
        for series in args.require or ():
            hits = [s for s in samples if s.name == series]
            if not hits or all(s.value == 0 for s in hits):
                failed.append(series)
        if failed:
            return _fail(
                "telemetry",
                "required series absent or all-zero: " + ", ".join(failed),
            )
        return 0

    # traces
    try:
        traces = client.recent_traces(args.limit)
    except GatewayClientError as exc:
        return _fail("telemetry", str(exc))
    if args.json:
        print(json.dumps(traces, indent=2))
        return 0
    if not traces:
        print("no traces recorded yet")
        return 0
    for i, root in enumerate(traces):
        if i:
            print()
        print(f"trace {root.get('trace_id', '?')}")
        _print_span_tree(root)
    return 0


def cmd_models(args) -> int:
    from repro.registry import (
        ArtifactError,
        ModelRegistry,
        RegistryError,
        parse_ref,
    )

    registry = ModelRegistry(args.registry)

    if args.models_command == "list":
        if not Path(args.registry).is_dir():
            # Same contract as `validate`: a typo'd root must not read as
            # an empty-but-healthy registry.
            return _fail("models",
                         f"registry {args.registry!r} does not exist")
        if args.json:
            import json

            from repro.registry import registry_payload

            # The exact document GET /v1/models serves (sans "current"):
            # one serializer, so the CLI and HTTP views cannot drift.
            print(json.dumps(registry_payload(registry), indent=2,
                             sort_keys=True))
            return 0
        rows = []
        broken = 0
        for name in registry.models():
            versions = registry.versions(name)
            if not versions:
                continue
            latest = registry.latest(name)
            for version in versions:
                mark = "*" if version == latest else ""
                try:
                    entry = registry.entry(name, version)
                    provenance = entry.provenance
                    hr = provenance.get("hr")
                    rows.append([
                        name, version, mark,
                        entry.model_name, entry.n_parameters,
                        provenance.get("scale", "?"),
                        hr.get("10", "") if isinstance(hr, dict) else "",
                    ])
                except (ArtifactError, RegistryError, TypeError,
                        ValueError, AttributeError):
                    # One corrupt bundle (bad manifest, malformed fields,
                    # missing files, …) must not take down the listing —
                    # `models validate` prints the full diagnostic.
                    broken += 1
                    rows.append([name, version, mark, "(unreadable)", "", "", ""])
        if not rows:
            print(f"no models registered under {args.registry!r}")
            return 0
        print(format_table(
            ["model", "version", "latest", "arch", "params", "scale", "HR@10"],
            rows, title=f"registry {args.registry}",
        ))
        if broken:
            print(f"{broken} artifact(s) unreadable — run "
                  f"`repro models --registry {args.registry} validate` "
                  "for diagnostics", file=sys.stderr)
        return 0

    if args.models_command == "inspect":
        from repro.registry import read_manifest, verify_files

        path, error = _resolve_artifact_path(args.ref, args.registry, "models")
        if error is not None:
            return error
        try:
            # Manifest-only: same integrity guarantee as a full load, but
            # no decompression of the parameter arrays.
            manifest = read_manifest(path)
            verify_files(path, manifest)
            if args.json:
                import json

                from repro.registry import manifest_payload

                print(json.dumps(manifest_payload(path, manifest), indent=2,
                                 sort_keys=True))
                return 0
            rows = [
                ["path", str(path)],
                ["schema_version", manifest["schema_version"]],
                ["model", manifest["model"]["name"]],
                ["n_parameters", manifest["model"]["n_parameters"]],
                ["n_channels", manifest["features"]["n_channels"]],
                ["n_coin_ids",
                 manifest["model"]["config"].get("n_coin_ids", "?")],
                ["sequence_length", manifest["features"]["sequence_length"]],
                ["signal_channels",
                 ",".join(manifest["features"]["signal_channels"]) or "-"],
            ]
            provenance = manifest.get("provenance")
            if isinstance(provenance, dict):
                # One level of nesting is flattened so structured entries
                # (e.g. the data-source descriptor) stay grep-able rows.
                for key, value in sorted(provenance.items()):
                    if isinstance(value, dict):
                        rows += [[f"provenance.{key}.{sub}", nested]
                                 for sub, nested in sorted(value.items())]
                    else:
                        rows.append([f"provenance.{key}", value])
        except (ArtifactError, KeyError, TypeError, AttributeError) as exc:
            return _fail("models", f"cannot inspect {path}: {exc!r}")
        print(format_table(["field", "value"], rows, title="artifact"))
        return 0

    if args.models_command == "validate":
        if not Path(args.registry).is_dir():
            # A green check against a typo'd root would be worse than an
            # error — there is nothing there to validate.
            return _fail("models",
                         f"registry {args.registry!r} does not exist")
        try:
            if args.ref:
                name, version = parse_ref(args.ref)
                problems = registry.validate(name, version)
                checked = len([version] if version
                              else registry.versions(name))
            else:
                problems = registry.validate()
                checked = sum(len(registry.versions(n))
                              for n in registry.models())
        except RegistryError as exc:
            return _fail("models", str(exc))
        if problems:
            for problem in problems:
                print(f"INVALID  {problem}", file=sys.stderr)
            return 1
        if not checked:
            print(f"no models registered under {args.registry!r}")
            return 0
        print(f"registry {args.registry!r}: {checked} artifact(s) verified, "
              "no problems")
        return 0

    raise AssertionError(f"unhandled models subcommand {args.models_command}")


def cmd_ingest(args) -> int:
    from repro.sources import SourceDataError, export_synthetic_dump, ingest_raw

    raw_inputs = args.messages or args.candles or args.coins
    if args.from_synthetic and raw_inputs:
        return _fail("ingest", "--from-synthetic and raw --messages/--candles/"
                               "--coins inputs are mutually exclusive")
    if not args.from_synthetic and not raw_inputs:
        return _fail("ingest", "nothing to ingest: pass --from-synthetic or "
                               "raw --messages/--candles/--coins files")
    try:
        if args.from_synthetic:
            from repro.simulation import SyntheticWorld

            config = _config(args)
            if args.horizon is not None:
                if args.horizon < 1:
                    return _fail("ingest", "--horizon must be >= 1")
                config = config.with_(horizon_hours=args.horizon)
            if args.phases:
                from repro.simulation import generate_phase_world

                world = generate_phase_world(config)
            else:
                world = SyntheticWorld.generate(config)
            source = export_synthetic_dump(
                world, args.out, hours=args.hours, compress=args.compress,
            )
        else:
            missing = [name for name, value in
                       (("--messages", args.messages),
                        ("--candles", args.candles),
                        ("--coins", args.coins)) if not value]
            if missing:
                return _fail("ingest",
                             f"raw ingestion needs {', '.join(missing)}")
            source = ingest_raw(
                args.out,
                messages=args.messages, candles=args.candles,
                coins=args.coins, channels=args.channels or None,
                listings=args.listings or None,
                seed=args.seed, sequence_length=args.sequence_length,
                max_negatives_per_event=args.max_negatives,
                compress=args.compress,
            )
    except SourceDataError as exc:
        return _fail("ingest", str(exc))
    descriptor = source.descriptor()
    print(format_table(
        ["field", "value"], sorted(descriptor.items()),
        title=f"dump written to {args.out}",
    ))
    print(f"train from it with: repro train --source file:{args.out}")
    return 0


def cmd_forecast(args) -> int:
    from repro.forecasting import BTCForecastDataset, run_forecasting_experiment
    from repro.simulation import SyntheticWorld

    world = SyntheticWorld.generate(_config(args))
    dataset = BTCForecastDataset.build(world, span=args.span)
    experiment = run_forecasting_experiment(
        world, span=args.span, model_names=tuple(args.models.split(",")),
        epochs=args.epochs, dataset=dataset,
    )
    rows = [
        [name, round(experiment.mae_price[name], 2),
         round(experiment.mae_price_telegram[name], 2),
         round(experiment.improvement(name), 2),
         round(experiment.cost[name], 3)]
        for name in experiment.mae_price
    ]
    print(format_table(["model", "MAE(P)", "MAE(P+T)", "impr", "cost"], rows,
                       title=f"BTC forecasting, span={args.span}h"))
    return 0


def cmd_signals(args) -> int:
    from repro.data import collect
    from repro.signals import SignalEngine, SignalError, SignalRanker
    from repro.signals.scorer import DEFAULT_INTERACTIONS
    from repro.sources import SourceDataError

    source, error = _build_source(args, "signals")
    if error is not None:
        return error
    try:
        # A recorded dump with candle holes fails here, up front, with the
        # uncovered window named — never with NaN scores downstream.
        engine = SignalEngine.from_source(source)
        collection = collect(source)
        ranker = SignalRanker(source, engine=engine)
        heuristic_hr = ranker.evaluate(collection.dataset)
    except (SourceDataError, SignalError) as exc:
        return _fail("signals", str(exc))

    scorer = engine.scorer
    print(format_table(
        ["signal", "weight", "scale"],
        [[s.name, scorer.weight_of(s.name), scorer.scale_of(s.name)]
         for s in engine.signals],
        title=f"signal battery ({source.fingerprint()})",
    ))
    print(format_table(
        ["interaction", "threshold", "bonus"],
        [[f"{i.first} & {i.second}", i.threshold, i.bonus]
         for i in DEFAULT_INTERACTIONS],
        title="composite interaction bonuses",
    ))
    print(format_table(
        ["metric", "value"],
        [[f"HR@{k}", f"{v:.3f}"] for k, v in heuristic_hr.items()],
        title="heuristic SignalRanker on the test split",
    ))

    if not (args.lift or args.require_lift is not None):
        return 0

    # Head-to-head: the same ranker architecture trained message-only vs
    # with the signal channels appended — the ISSUE's HR@k lift measure.
    from repro.core import (
        Trainer,
        evaluate_scores,
        make_model,
        predict_scores,
        snn_config_for,
    )
    from repro.features import FeatureAssembler

    results: dict[str, dict[int, float]] = {}
    for label, eng in (("message-only", None), ("message+signal", engine)):
        assembler = FeatureAssembler(source, collection.dataset,
                                     signal_engine=eng)
        assembled = assembler.assemble()
        model = make_model(args.model, snn_config_for(assembled),
                           seed=args.seed)
        Trainer(epochs=args.epochs, seed=args.seed).fit(
            model, assembled.train, assembled.validation
        )
        results[label] = evaluate_scores(
            assembled.test, predict_scores(model, assembled.test)
        )
    base, aware = results["message-only"], results["message+signal"]
    print(format_table(
        ["k", "message-only", "message+signal", "lift"],
        [[k, f"{base[k]:.3f}", f"{aware[k]:.3f}", f"{aware[k] - base[k]:+.3f}"]
         for k in base],
        title=f"{args.model} trained with vs without signal channels",
    ))
    if args.require_lift is not None:
        k = args.require_lift
        if k not in base:
            return _fail("signals",
                         f"--require-lift {k}: no HR@{k} in {sorted(base)}")
        if aware[k] < base[k]:
            return _fail(
                "signals",
                f"HR@{k} regression: message+signal {aware[k]:.3f} < "
                f"message-only {base[k]:.3f}",
            )
        print(f"lift check passed: HR@{k} message+signal {aware[k]:.3f} >= "
              f"message-only {base[k]:.3f}")
    return 0


def cmd_lint(args) -> int:
    from repro.lint import cli as lint_cli

    return lint_cli.run(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_world = sub.add_parser("world", help="generate and summarize a world")
    _add_common(p_world)
    p_world.set_defaults(fn=cmd_world)

    p_collect = sub.add_parser("collect", help="run the data pipeline")
    _add_common(p_collect)
    p_collect.set_defaults(fn=cmd_collect)

    p_analyze = sub.add_parser("analyze", help="run the §4 studies")
    _add_common(p_analyze)
    p_analyze.set_defaults(fn=cmd_analyze)

    p_train = sub.add_parser("train", help="train a target-coin ranker")
    _add_common(p_train)
    p_train.add_argument("--source", default="synthetic", metavar="SPEC",
                         help="data backend: 'synthetic' (generated from "
                              "--scale/--seed) or 'file:<dump-dir>'")
    p_train.add_argument("--model", default="snn", choices=DEEP_MODEL_CHOICES)
    p_train.add_argument("--epochs", type=int, default=8)
    p_train.add_argument("--signals", action="store_true",
                         help="append the repro.signals microstructure "
                              "channels to the numeric features (recorded "
                              "in the artifact manifest)")
    p_train.add_argument("--save", default="",
                         help="directory to save a full servable artifact "
                              "(weights + scalers + vocab + provenance)")
    p_train.add_argument("--register", default="", metavar="NAME",
                         help="publish the artifact into the model registry "
                              "under this name")
    p_train.add_argument("--registry", default=DEFAULT_REGISTRY,
                         help="model registry root directory")
    p_train.set_defaults(fn=cmd_train)

    p_serve = sub.add_parser(
        "serve", help="replay the test period through the streaming service"
    )
    _add_common(p_serve)
    p_serve.add_argument("--source", default="synthetic", metavar="SPEC",
                         help="data backend: 'synthetic' (generated from "
                              "--scale/--seed) or 'file:<dump-dir>'")
    # Defaults are applied in cmd_serve (snn / 8 epochs) so an explicit
    # --model/--epochs combined with --load can be flagged as ignored.
    p_serve.add_argument("--model", default=None, choices=DEEP_MODEL_CHOICES)
    p_serve.add_argument("--epochs", type=int, default=None)
    p_serve.add_argument("--top-k", type=int, default=3,
                         help="coins shown per alert")
    p_serve.add_argument("--jsonl", default="",
                         help="also append alerts to this JSON-lines file")
    p_serve.add_argument("--store", default="", metavar="DB",
                         help="append every streamed event to this durable "
                              "SQLite event log (repro.store)")
    p_serve.add_argument("--bucket-hours", type=float, default=1.0,
                         help="feature-cache time bucket (0 = exact times)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable feature memoization")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="max concurrent announcements per forward pass")
    p_serve.add_argument("--load", default="", metavar="REF",
                         help="boot from a saved artifact instead of "
                              "training: a directory path or a registry "
                              "name[@version]")
    p_serve.add_argument("--registry", default=DEFAULT_REGISTRY,
                         help="model registry root used to resolve --load")
    p_serve.add_argument("--gateway", default="", metavar="URL",
                         help="replay against a remote repro gateway "
                              "instead of an in-process model (detection "
                              "and sessionization stay local; every "
                              "ranking goes over HTTP)")
    p_serve.set_defaults(fn=cmd_serve)

    p_gateway = sub.add_parser(
        "gateway", help="serve the HTTP/JSON prediction API (repro.gateway)"
    )
    _add_common(p_gateway)
    p_gateway.add_argument("--source", default="synthetic", metavar="SPEC",
                           help="data backend: 'synthetic' (generated from "
                                "--scale/--seed) or 'file:<dump-dir>'")
    p_gateway.add_argument("--load", required=True, metavar="REF",
                           help="artifact to serve: a directory path or a "
                                "registry name[@version]")
    p_gateway.add_argument("--registry", default=DEFAULT_REGISTRY,
                           help="model registry root (resolves --load and "
                                "backs GET /v1/models + /v1/models/reload)")
    p_gateway.add_argument("--host", default="127.0.0.1",
                           help="bind address")
    p_gateway.add_argument("--port", type=int, default=8787,
                           help="bind port (0 picks a free one)")
    p_gateway.add_argument("--max-batch", type=int, default=256,
                           help="largest accepted /v1/rank/batch request")
    p_gateway.add_argument("--bucket-hours", type=float, default=1.0,
                           help="feature-cache time bucket (0 = exact times)")
    p_gateway.add_argument("--no-cache", action="store_true",
                           help="disable feature memoization")
    p_gateway.add_argument("--verbose", action="store_true",
                           help="log one structured JSON line per HTTP "
                                "request to stderr")
    p_gateway.add_argument("--slow-ms", type=float, default=500.0,
                           help="requests at or above this duration dump "
                                "their span tree to the structured log")
    p_gateway.add_argument("--store", default="", metavar="DB",
                           help="durable SQLite event log: every streamed "
                                "event is appended as it flows, and on boot "
                                "the service rehydrates history + stats "
                                "from it (crash-safe restarts)")
    p_gateway.add_argument("--max-inflight", type=int, default=None,
                           metavar="N",
                           help="load-shed (429 overloaded) once more than "
                                "N scoring requests are in flight")
    p_gateway.add_argument("--deadline-ms", type=float, default=None,
                           metavar="MS",
                           help="default per-request deadline budget; "
                                "clients override via the "
                                "X-Repro-Deadline-Ms header")
    p_gateway.add_argument("--snapshot-s", type=float, default=30.0,
                           metavar="S",
                           help="seconds between periodic stats snapshots "
                                "appended to --store")
    p_gateway.add_argument("--drain-s", type=float, default=10.0,
                           metavar="S",
                           help="max seconds to wait for in-flight requests "
                                "on SIGTERM/Ctrl-C before exiting")
    p_gateway.add_argument("--workers", type=int, default=1, metavar="N",
                           help="worker processes accepting on one port "
                                "(SO_REUSEPORT where available); a "
                                "supervisor restarts crashed workers and "
                                "fans SIGTERM out for graceful drain")
    p_gateway.add_argument("--batch-window-ms", type=float, default=2.0,
                           metavar="MS",
                           help="coalesce concurrent /v1/rank requests "
                                "arriving within this window into one "
                                "forward pass (0 disables; lone requests "
                                "never wait)")
    p_gateway.set_defaults(fn=cmd_gateway)

    p_history = sub.add_parser(
        "history",
        help="query a durable event log written by serve/gateway --store",
    )
    history_sub = p_history.add_subparsers(dest="history_command",
                                           required=True)
    p_hsummary = history_sub.add_parser(
        "summary", help="row counts, latest stats snapshot, time span"
    )
    p_hsummary.add_argument("--store", required=True, metavar="DB",
                            help="event log path")
    p_hsummary.set_defaults(fn=cmd_history)
    p_halerts = history_sub.add_parser(
        "alerts", help="list persisted alerts (backtest-style filters)"
    )
    p_halerts.add_argument("--store", required=True, metavar="DB",
                           help="event log path")
    p_halerts.add_argument("--channel", type=int, default=None,
                           help="only alerts for this channel id")
    p_halerts.add_argument("--since", type=float, default=None,
                           metavar="HOURS", help="window start (hours)")
    p_halerts.add_argument("--until", type=float, default=None,
                           metavar="HOURS", help="window end (hours)")
    p_halerts.add_argument("--limit", type=int, default=None,
                           help="most recent N alerts only")
    p_halerts.add_argument("--top-k", type=int, default=3,
                           help="coins shown per alert")
    p_halerts.add_argument("--json", action="store_true",
                           help="print raw alert payloads, one per line")
    p_halerts.set_defaults(fn=cmd_history)
    p_hr = history_sub.add_parser(
        "hr", help="hit rate @ k over the logged alerts"
    )
    p_hr.add_argument("--store", required=True, metavar="DB",
                      help="event log path")
    p_hr.add_argument("--k", type=int, default=3,
                      help="count a hit when the pumped coin ranks <= k")
    p_hr.add_argument("--since", type=float, default=None, metavar="HOURS",
                      help="window start (hours)")
    p_hr.add_argument("--until", type=float, default=None, metavar="HOURS",
                      help="window end (hours)")
    p_hr.add_argument("--last-hours", type=float, default=None,
                      metavar="HOURS",
                      help="window = the trailing HOURS before the newest "
                           "logged alert (overrides --since/--until)")
    p_hr.set_defaults(fn=cmd_history)

    p_telemetry = sub.add_parser(
        "telemetry", help="scrape a running gateway's metrics and traces"
    )
    telemetry_sub = p_telemetry.add_subparsers(dest="telemetry_command",
                                               required=True)
    p_metrics = telemetry_sub.add_parser(
        "metrics", help="fetch + validate GET /v1/metrics"
    )
    p_metrics.add_argument("--url", default="http://127.0.0.1:8787",
                           help="gateway base URL")
    p_metrics.add_argument("--raw", action="store_true",
                           help="print the exposition verbatim instead of "
                                "a table")
    p_metrics.add_argument("--require", action="append", metavar="SERIES",
                           help="fail (exit 1) unless this series exists "
                                "with a nonzero sample; repeatable")
    p_metrics.set_defaults(fn=cmd_telemetry)
    p_traces = telemetry_sub.add_parser(
        "traces", help="fetch + pretty-print GET /v1/trace/recent"
    )
    p_traces.add_argument("--url", default="http://127.0.0.1:8787",
                          help="gateway base URL")
    p_traces.add_argument("--limit", type=int, default=None,
                          help="most recent N traces only")
    p_traces.add_argument("--json", action="store_true",
                          help="print raw JSON span trees")
    p_traces.set_defaults(fn=cmd_telemetry)

    p_models = sub.add_parser(
        "models", help="list / inspect / validate saved predictor artifacts"
    )
    p_models.add_argument("--registry", default=DEFAULT_REGISTRY,
                          help="model registry root directory")
    models_sub = p_models.add_subparsers(dest="models_command", required=True)
    p_list = models_sub.add_parser(
        "list", help="list registered models and versions"
    )
    p_list.add_argument("--json", action="store_true",
                        help="machine-readable output (the GET /v1/models "
                             "document)")
    p_inspect = models_sub.add_parser(
        "inspect", help="show one artifact's manifest summary"
    )
    p_inspect.add_argument("ref", help="artifact directory or name[@version]")
    p_inspect.add_argument("--json", action="store_true",
                           help="machine-readable manifest summary")
    p_validate = models_sub.add_parser(
        "validate", help="integrity-check artifacts (schema + checksums)"
    )
    p_validate.add_argument("ref", nargs="?", default="",
                            help="name[@version]; omit to check everything")
    p_models.set_defaults(fn=cmd_models)

    p_ingest = sub.add_parser(
        "ingest", help="build a canonical file dump for --source file:..."
    )
    _add_common(p_ingest)
    p_ingest.add_argument("--out", required=True,
                          help="output dump directory")
    p_ingest.add_argument("--from-synthetic", action="store_true",
                          help="export a synthetic replay (world built from "
                               "--scale/--seed) as a file dump")
    p_ingest.add_argument("--horizon", type=int, default=None,
                          help="override the synthetic world's horizon "
                               "hours (smaller = smaller dump)")
    p_ingest.add_argument("--phases", action="store_true",
                          help="attach accumulation/ignition phase overlays "
                               "to the synthetic world before export (see "
                               "repro.simulation.phases)")
    p_ingest.add_argument("--hours", choices=("needed", "all"),
                          default="needed",
                          help="candle hours to export: only those the "
                               "extracted samples query, or the full grid")
    p_ingest.add_argument("--messages", default="",
                          help="raw messages JSONL to normalize")
    p_ingest.add_argument("--candles", default="",
                          help="raw hourly-candles CSV to normalize")
    p_ingest.add_argument("--coins", default="",
                          help="raw coin-catalog CSV to normalize")
    p_ingest.add_argument("--channels", default="",
                          help="optional raw channels CSV")
    p_ingest.add_argument("--listings", default="",
                          help="optional raw listings CSV")
    p_ingest.add_argument("--sequence-length", type=int, default=20,
                          help="pump-history length recorded in meta.json")
    p_ingest.add_argument("--max-negatives", type=int, default=80,
                          help="negative-sampling cap recorded in meta.json")
    p_ingest.add_argument("--compress", action="store_true",
                          help="gzip the candle/message files")
    p_ingest.set_defaults(fn=cmd_ingest)

    p_lint = sub.add_parser(
        "lint", help="run the project's static-analysis rules (repro.lint)"
    )
    # The lint CLI owns its flags so `repro lint` and
    # `python -m repro.lint.cli` cannot drift apart.
    from repro.lint.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(p_lint)
    p_lint.set_defaults(fn=cmd_lint)

    p_signals = sub.add_parser(
        "signals",
        help="market-microstructure signal battery: heuristic HR@k and "
             "trained-ranker lift (repro.signals)",
    )
    _add_common(p_signals)
    p_signals.add_argument("--source", default="synthetic+phases",
                           metavar="SPEC",
                           help="data backend: 'synthetic', "
                                "'synthetic+phases' (default — pumps with "
                                "accumulation/ignition anatomy) or "
                                "'file:<dump-dir>'")
    p_signals.add_argument("--model", default="snn",
                           choices=DEEP_MODEL_CHOICES,
                           help="ranker architecture for the --lift "
                                "head-to-head")
    p_signals.add_argument("--epochs", type=int, default=8)
    p_signals.add_argument("--lift", action="store_true",
                           help="also train message-only vs message+signal "
                                "rankers and print the HR@k lift table")
    p_signals.add_argument("--require-lift", type=int, default=None,
                           metavar="K",
                           help="exit non-zero unless the message+signal "
                                "ranker's HR@K is >= the message-only "
                                "baseline's (implies --lift)")
    p_signals.set_defaults(fn=cmd_signals)

    p_forecast = sub.add_parser("forecast", help="run the §7 comparison")
    _add_common(p_forecast)
    p_forecast.add_argument("--span", type=int, default=48, choices=(12, 24, 48, 96))
    p_forecast.add_argument("--models", default="gru,snn")
    p_forecast.add_argument("--epochs", type=int, default=5)
    p_forecast.set_defaults(fn=cmd_forecast)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-print (`repro history
        # ... | head`).  Point stdout at devnull so the interpreter's
        # shutdown flush does not raise a second time, and exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
