"""Machine-readable registry/artifact summaries.

One serializer feeds every surface that lists models — ``repro models
list --json``, ``repro models inspect --json`` and the gateway's
``GET /v1/models`` — so a field added here shows up everywhere at once
and the CLI and HTTP views can never drift apart.

Like the human-readable ``repro models list``, the JSON view is resilient:
one corrupt bundle yields an entry with an ``"error"`` field instead of
taking down the whole listing (``repro models validate`` prints the full
diagnostic).
"""

from __future__ import annotations

from pathlib import Path

from repro.registry.artifact import ArtifactError, read_manifest
from repro.registry.registry import ModelRegistry, RegistryError


def entry_payload(name: str, version: str, *, latest: str | None,
                  manifest: dict) -> dict:
    """JSON-safe summary of one registered (name, version) bundle."""
    model = manifest.get("model")
    model = model if isinstance(model, dict) else {}
    features = manifest.get("features")
    features = features if isinstance(features, dict) else {}
    provenance = manifest.get("provenance")
    return {
        "name": name,
        "version": version,
        "latest": version == latest,
        "model": model.get("name"),
        "n_parameters": model.get("n_parameters"),
        "n_channels": features.get("n_channels"),
        "sequence_length": features.get("sequence_length"),
        "artifact_schema_version": manifest.get("schema_version"),
        "provenance": provenance if isinstance(provenance, dict) else {},
    }


def broken_entry_payload(name: str, version: str, *, latest: str | None,
                         error: Exception) -> dict:
    """Listing entry for a bundle that would not even summarize."""
    return {
        "name": name,
        "version": version,
        "latest": version == latest,
        "error": f"{type(error).__name__}: {error}",
    }


def registry_payload(registry: ModelRegistry) -> dict:
    """Every model/version in a registry as one JSON-safe document."""
    models: list[dict] = []
    for name in registry.models():
        versions = registry.versions(name)
        if not versions:
            continue
        try:
            latest = registry.latest(name)
        except RegistryError:
            latest = None
        for version in versions:
            try:
                entry = registry.entry(name, version)
                models.append(entry_payload(
                    name, version, latest=latest, manifest=entry.manifest,
                ))
            except (ArtifactError, RegistryError, TypeError, ValueError,
                    AttributeError, KeyError) as exc:
                models.append(broken_entry_payload(
                    name, version, latest=latest, error=exc,
                ))
    return {"root": str(registry.root), "models": models}


def manifest_payload(path: str | Path, manifest: dict | None = None) -> dict:
    """JSON-safe summary of one artifact directory (``inspect --json``).

    Unlike the table view, nested provenance (e.g. the data-source
    descriptor) is passed through structurally instead of being flattened
    into dotted rows — it is already JSON.
    """
    path = Path(path)
    if manifest is None:
        manifest = read_manifest(path)
    model = manifest.get("model")
    model = model if isinstance(model, dict) else {}
    features = manifest.get("features")
    features = features if isinstance(features, dict) else {}
    config = model.get("config")
    config = config if isinstance(config, dict) else {}
    provenance = manifest.get("provenance")
    return {
        "path": str(path),
        "artifact_schema_version": manifest.get("schema_version"),
        "model": model.get("name"),
        "n_parameters": model.get("n_parameters"),
        "n_channels": features.get("n_channels"),
        "n_coin_ids": config.get("n_coin_ids"),
        "sequence_length": features.get("sequence_length"),
        "provenance": provenance if isinstance(provenance, dict) else {},
    }
