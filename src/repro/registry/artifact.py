"""PredictorArtifact — the schema-versioned train/serve contract.

A trained :class:`~repro.core.predictor.TargetCoinPredictor` is more than
its ranker weights: scoring a live announcement also needs the fitted
feature scalers, the channel vocabulary the embeddings were built over,
the per-channel subscriber counts that feed the channel feature, and the
architecture hyper-parameters to rebuild the network at all.  Persisting
only ``state_dict`` weights (the legacy ``nn.serialize`` path) therefore
produces archives that *cannot be served* — every consumer silently
retrained from scratch.

An artifact is a directory bundling everything needed to reconstruct a
working predictor::

    <artifact>/
        manifest.json   # schema version, model name + config, vocab
                        # metadata, training provenance, file checksums
        weights.npz     # ranker parameters (via nn.serialize.save_module)
        state.npz       # fitted scaler statistics (exact float64)

Loading re-verifies integrity (sha256 per file) and schema compatibility
before any array is trusted, rebuilds the ranker via
:func:`~repro.core.baselines.make_model`, loads the weights strictly
(name/shape mismatches fail loudly), restores the scalers bit-for-bit
from ``state.npz``, and re-verifies the compiled no-grad inference plan
against an eager forward (:func:`repro.nn.compile.prewarm`) so a loaded
model never serves through an unverified fast path.

Schema version policy
---------------------
``SCHEMA_VERSION`` is a single integer, bumped on **any** change to the
manifest layout, the file set, or the meaning of a persisted field.
Loading an artifact whose ``schema_version`` differs from the library's
raises :class:`ArtifactSchemaError` — there is no silent best-effort
migration: a version mismatch means the train/serve contract changed and
the artifact must be regenerated (or explicitly migrated) rather than
reinterpreted.  Weights tampering, truncation, or a missing file raise
:class:`ArtifactIntegrityError` before any score is produced.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
import zipfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.baselines import DEEP_MODEL_NAMES, make_model
from repro.core.snn import SNNConfig
from repro.ml.scaling import StandardScaler
from repro.nn.compile import prewarm
from repro.nn.module import Module
from repro.nn.serialize import read_state_dict, save_state_dict
from repro.telemetry import default_registry, span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.predictor import TargetCoinPredictor
    from repro.data.dataset import TargetCoinDataset

# v2: the manifest's ``features`` section records ``signal_channels`` —
# the microstructure signal columns (see repro.signals) appended to the
# numeric block, empty for message-only models.  A v1 artifact cannot
# express whether its scalers were fitted over signal columns, so it is
# not silently loadable.
SCHEMA_VERSION = 2
ARTIFACT_KIND = "repro/predictor-artifact"

MANIFEST_NAME = "manifest.json"
WEIGHTS_NAME = "weights.npz"
STATE_NAME = "state.npz"

# state.npz keys holding the fitted scaler statistics.
_STATE_KEYS = ("numeric_mean", "numeric_std", "seq_mean", "seq_std")


def _record_load(started: float, outcome: str) -> None:
    """Count one artifact load attempt in the process-wide registry.

    Instruments are (re-)resolved per call — registration is idempotent
    and this keeps working when tests swap the default registry.
    """
    registry = default_registry()
    registry.counter(
        "artifact_loads_total", "Predictor-artifact load attempts by outcome.",
        ("outcome",),
    ).labels(outcome=outcome).inc()
    registry.histogram(
        "artifact_load_seconds",
        "Wall time to load and verify a predictor artifact.",
    ).observe(time.perf_counter() - started)


class ArtifactError(RuntimeError):
    """Base error: the path is not a loadable predictor artifact."""


class ArtifactSchemaError(ArtifactError):
    """The artifact was written under an incompatible schema version."""


class ArtifactIntegrityError(ArtifactError):
    """A bundled file is missing, truncated, or fails its checksum."""


def check_save_target(path: str | Path) -> str | None:
    """Why ``path`` cannot receive an artifact, or ``None`` if it can.

    The single source of the overwrite-safety policy: an existing file is
    never replaceable; an existing directory only if it is empty or holds
    a previous artifact.  ``PredictorArtifact.save`` enforces it; the CLI
    uses it as a pre-training fail-fast.
    """
    path = Path(path)
    if path.is_file():
        return (f"{path} is an existing file; artifacts are directories "
                "(a legacy weights .npz cannot be overwritten in place)")
    if path.is_dir() and any(path.iterdir()) and not is_artifact_dir(path):
        return (f"refusing to overwrite {path}: it exists and is not a "
                "predictor artifact — pick a fresh directory")
    return None


def is_artifact_dir(path: str | Path) -> bool:
    """True when ``path`` holds a repro predictor-artifact manifest.

    Checks the manifest's ``kind`` marker, not just the filename —
    ``manifest.json`` is a common name (browser extensions, web apps) and
    a foreign one must never make a directory look replaceable.
    """
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.is_file():
        return False
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, OSError, UnicodeDecodeError):
        return False
    return isinstance(manifest, dict) and manifest.get("kind") == ARTIFACT_KIND


def _guarded_read(path: Path, reader):
    """Run an npz reader, keeping parse failures inside the taxonomy.

    A checksum-consistent but unparseable archive (e.g. hand-edited
    alongside its recorded sha256) must surface as an integrity
    diagnostic, not a raw ``BadZipFile``/``OSError`` traceback.
    """
    try:
        return reader()
    except ArtifactIntegrityError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, KeyError) as exc:
        raise ArtifactIntegrityError(
            f"{path} cannot be read ({exc!r}) — the artifact is corrupt "
            "or was tampered with"
        ) from exc


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _model_name(model: Module) -> str:
    """The ``make_model`` name that rebuilds this ranker's architecture."""
    name = getattr(model, "model_name", None)
    if name is None:
        # Models constructed directly (not via make_model) fall back to
        # class-based detection; RNNRanker records its cell kind itself.
        from repro.core.baselines import DNNRanker, RNNRanker, TCNRanker
        from repro.core.snn import SNN

        if isinstance(model, SNN):
            name = "snn"
        elif isinstance(model, DNNRanker):
            name = "dnn"
        elif isinstance(model, TCNRanker):
            name = "tcn"
        elif isinstance(model, RNNRanker):
            name = getattr(model, "kind", None)
    if name not in DEEP_MODEL_NAMES:
        raise ArtifactError(
            f"cannot determine a servable architecture for {type(model).__name__}; "
            f"artifacts support the deep rankers {DEEP_MODEL_NAMES}"
        )
    return name


def _scaler_state(scaler: StandardScaler) -> tuple[np.ndarray, np.ndarray]:
    if scaler.mean_ is None or scaler.std_ is None:
        raise ArtifactError("predictor scalers are not fitted")
    return scaler.mean_, scaler.std_


def _restore_scaler(mean: np.ndarray, std: np.ndarray) -> StandardScaler:
    scaler = StandardScaler()
    scaler.mean_ = np.asarray(mean, dtype=float)
    scaler.std_ = np.asarray(std, dtype=float)
    return scaler


def _snapshot_scaler(scaler: StandardScaler) -> StandardScaler:
    """An independent copy of a fitted scaler's statistics."""
    mean, std = _scaler_state(scaler)
    return _restore_scaler(mean.copy(), std.copy())


@dataclass
class PredictorArtifact:
    """Everything needed to reconstruct a servable predictor.

    In memory the weights live as a plain ``state_dict``; :meth:`save`
    persists the bundle, :meth:`load` restores it with schema + integrity
    verification, and :meth:`to_predictor` rebinds it to a world/dataset.
    """

    model_name: str
    config: SNNConfig
    state: dict[str, np.ndarray]
    numeric_scaler: StandardScaler
    seq_scaler: StandardScaler
    channel_index: dict[int, int]
    subscribers: dict[int, int]
    sequence_length: int
    signal_channels: tuple[str, ...] = ()
    provenance: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -- construction --------------------------------------------------------

    @classmethod
    def from_predictor(cls, predictor: "TargetCoinPredictor",
                       provenance: dict | None = None) -> "PredictorArtifact":
        """Snapshot a trained predictor into an artifact bundle."""
        merged = dict(getattr(predictor, "provenance", None) or {})
        merged.update(provenance or {})
        return cls(
            model_name=_model_name(predictor.model),
            config=predictor.model.config,
            state=predictor.model.state_dict(),
            # Snapshots, like the weights above: later mutation of the
            # live predictor must not change what this artifact persists.
            numeric_scaler=_snapshot_scaler(predictor._numeric_scaler),
            seq_scaler=_snapshot_scaler(predictor._seq_scaler),
            channel_index=dict(predictor._channel_index),
            subscribers=dict(predictor._subscribers),
            sequence_length=predictor.assembler.sequence_length,
            signal_channels=tuple(
                predictor.assembler.signal_engine.feature_names
            ) if predictor.assembler.signal_engine is not None else (),
            provenance=merged,
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the bundle to directory ``path`` (created if needed).

        The bundle is staged in a sibling temp directory and renamed into
        place, so a crash mid-save never leaves a torn artifact — and
        re-saving over an existing artifact replaces it whole instead of
        corrupting it file by file.  Caveat: replacing an existing
        artifact is two renames (POSIX offers no atomic directory swap);
        a hard kill in that window leaves the path briefly absent with
        the old bundle recoverable from a sibling ``.<name>.old-*``
        directory.  Registry publishes never replace (versions are
        immutable), so this only affects deliberate in-place re-saves.
        """
        path = Path(path)
        problem = check_save_target(path)
        if problem is not None:
            raise ArtifactError(problem)
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = path.parent / (
            f".{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        staging.mkdir()
        try:
            self._write_bundle(staging)
            if path.exists():
                displaced = path.parent / (
                    f".{path.name}.old-{uuid.uuid4().hex[:8]}"
                )
                path.rename(displaced)
                try:
                    staging.rename(path)
                except BaseException:
                    # Put the original bundle back before propagating —
                    # a failed replace must not leave the path empty.
                    try:
                        displaced.rename(path)
                    except OSError:
                        pass  # a concurrent writer re-created the path
                    raise
                shutil.rmtree(displaced, ignore_errors=True)
            else:
                staging.rename(path)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return path

    def _write_bundle(self, path: Path) -> None:
        save_state_dict(self.state, path / WEIGHTS_NAME,
                        container=ARTIFACT_KIND)
        numeric = _scaler_state(self.numeric_scaler)
        seq = _scaler_state(self.seq_scaler)
        np.savez_compressed(
            path / STATE_NAME,
            numeric_mean=numeric[0], numeric_std=numeric[1],
            seq_mean=seq[0], seq_std=seq[1],
        )
        manifest = {
            "kind": ARTIFACT_KIND,
            "schema_version": self.schema_version,
            "created_unix": int(time.time()),
            "model": {
                "name": self.model_name,
                "config": asdict(self.config),
                "n_parameters": int(sum(a.size for a in self.state.values())),
            },
            "features": {
                "sequence_length": int(self.sequence_length),
                "n_channels": len(self.channel_index),
                "channel_index": {str(k): int(v)
                                  for k, v in self.channel_index.items()},
                "subscribers": {str(k): int(v)
                                for k, v in self.subscribers.items()},
                "signal_channels": [str(s) for s in self.signal_channels],
            },
            "provenance": self.provenance,
            "files": {
                name: {"sha256": _sha256(path / name)}
                for name in (WEIGHTS_NAME, STATE_NAME)
            },
        }
        (path / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "PredictorArtifact":
        """Load and verify a saved bundle (schema, then checksums)."""
        started = time.perf_counter()
        try:
            with span("artifact.load", path=str(path)):
                artifact = cls._load(path)
        except ArtifactSchemaError:
            _record_load(started, "schema_error")
            raise
        except ArtifactIntegrityError:
            _record_load(started, "integrity_error")
            raise
        except ArtifactError:
            _record_load(started, "error")
            raise
        _record_load(started, "ok")
        return artifact

    @classmethod
    def _load(cls, path: str | Path) -> "PredictorArtifact":
        path = Path(path)
        manifest = read_manifest(path)
        verify_files(path, manifest)

        def read_scalers():
            with np.load(path / STATE_NAME) as archive:
                missing = [key for key in _STATE_KEYS if key not in archive]
                if missing:
                    raise ArtifactIntegrityError(
                        f"{path / STATE_NAME} is missing scaler arrays: "
                        f"{missing}"
                    )
                return {key: archive[key] for key in _STATE_KEYS}

        state_arrays = _guarded_read(path / STATE_NAME, read_scalers)
        weights = _guarded_read(
            path / WEIGHTS_NAME,
            lambda: read_state_dict(path / WEIGHTS_NAME),
        )
        # The manifest itself carries no checksum, so its *content* can be
        # hand-edited into shapes the structural check can't anticipate
        # (wrong config keys, non-dict vocab, …) — keep every failure
        # inside the ArtifactError taxonomy rather than a raw traceback.
        try:
            features = manifest["features"]
            config = SNNConfig(**{
                **manifest["model"]["config"],
                "hidden_dims":
                    tuple(manifest["model"]["config"]["hidden_dims"]),
            })
            return cls(
                model_name=manifest["model"]["name"],
                config=config,
                state=weights,
                numeric_scaler=_restore_scaler(
                    state_arrays["numeric_mean"], state_arrays["numeric_std"]
                ),
                seq_scaler=_restore_scaler(
                    state_arrays["seq_mean"], state_arrays["seq_std"]
                ),
                channel_index={int(k): int(v)
                               for k, v in features["channel_index"].items()},
                subscribers={int(k): int(v)
                             for k, v in features["subscribers"].items()},
                sequence_length=int(features["sequence_length"]),
                signal_channels=tuple(
                    str(s) for s in features["signal_channels"]
                ),
                provenance=dict(manifest.get("provenance", {})),
                schema_version=int(manifest["schema_version"]),
            )
        except ArtifactError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ArtifactIntegrityError(
                f"{path / MANIFEST_NAME} has malformed content "
                f"({exc!r}) — the artifact is corrupt or was tampered with"
            ) from exc

    # -- reconstruction ------------------------------------------------------

    def build_model(self) -> Module:
        """Rebuild the ranker and re-verify its compiled inference plan.

        ``load_state_dict`` is strict: a weights archive that doesn't match
        the manifest's architecture (names or shapes) fails loudly here.
        """
        model = make_model(self.model_name, self.config)
        try:
            model.load_state_dict(self.state)
        except (KeyError, ValueError) as exc:
            raise ArtifactIntegrityError(
                f"weights do not match the manifest's "
                f"{self.model_name!r} architecture: {exc}"
            ) from exc
        model.eval()
        # Trace + verify the no-grad plan against an eager forward now, so
        # a reloaded model never serves through an unverified fast path
        # (and the first real announcement pays no tracing cost).
        prewarm(model)
        return model

    def to_predictor(self, source,
                     dataset: "TargetCoinDataset") -> "TargetCoinPredictor":
        """Bind the artifact to a data source/dataset — no training, no
        refitting.

        ``source`` is any :class:`repro.sources.DataSource` backend (or a
        bare synthetic world, coerced) — it need *not* be the backend the
        model was trained on; a model trained against the simulator can
        serve a recorded file dump and vice versa, as long as both
        describe the same channel/coin universe.  The dataset must
        describe the same channel universe the model was trained on (its
        embedding rows are positional); a vocabulary mismatch fails loudly
        instead of silently scoring with shuffled channel embeddings.
        """
        from repro.core.predictor import TargetCoinPredictor
        from repro.features.assembler import FeatureAssembler

        signal_engine = None
        if self.signal_channels:
            # Lazy: repro.signals sits above the serving stack in the
            # layer graph; only artifact rebinding reaches down into it.
            from repro.signals import SignalEngine

            signal_engine = SignalEngine.from_source(source)
            if tuple(signal_engine.feature_names) != \
                    tuple(self.signal_channels):
                raise ArtifactError(
                    "artifact/library signal drift: the artifact was "
                    f"trained with signal channels {list(self.signal_channels)} "
                    f"but this library's engine computes "
                    f"{list(signal_engine.feature_names)}; the scalers "
                    "would be applied to the wrong columns — regenerate "
                    "the artifact"
                )
        assembler = FeatureAssembler(source, dataset,
                                     signal_engine=signal_engine)
        if assembler.channel_index != self.channel_index:
            raise ArtifactError(
                "artifact/source vocabulary drift: the dataset's channel "
                f"index ({len(assembler.channel_index)} channels) does not "
                f"match the artifact's ({len(self.channel_index)} channels); "
                "was this artifact trained on a different dataset or scale?"
            )
        if assembler.sequence_length != self.sequence_length:
            raise ArtifactError(
                f"artifact sequence_length={self.sequence_length} but the "
                f"data source uses {assembler.sequence_length}"
            )
        # The manifest carries no checksum, so its subscriber counts must
        # agree with the source's ground truth — they feed the channel
        # feature directly, and silent drift would mean silently different
        # scores, not a diagnostic.
        if {int(k): int(v) for k, v in assembler.subscribers.items()} != \
                self.subscribers:
            raise ArtifactError(
                "artifact/source vocabulary drift: the artifact's recorded "
                "subscriber counts do not match the data source's; the "
                "manifest is stale or was tampered with"
            )
        predictor = TargetCoinPredictor(
            source, dataset, self.build_model(), assembler,
            scalers=(_snapshot_scaler(self.numeric_scaler),
                     _snapshot_scaler(self.seq_scaler)),
        )
        predictor.provenance = dict(self.provenance)
        return predictor

    def summary(self) -> dict:
        """Flat inspection view of a loaded artifact.

        ``repro models inspect`` prints the same fields but reads them
        manifest-only (no array decompression); keep the two in step.
        """
        out = {
            "schema_version": self.schema_version,
            "model": self.model_name,
            "n_parameters": int(sum(a.size for a in self.state.values())),
            "n_channels": len(self.channel_index),
            "n_coin_ids": self.config.n_coin_ids,
            "sequence_length": self.sequence_length,
            "signal_channels": list(self.signal_channels),
        }
        for key, value in sorted(self.provenance.items()):
            out[f"provenance.{key}"] = value
        return out


# -- manifest / verification helpers ----------------------------------------


def read_manifest(path: str | Path) -> dict:
    """Read and schema-check an artifact directory's manifest."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if path.is_file():
        raise ArtifactError(
            f"{path} is a file, not an artifact directory; bare-weights "
            ".npz archives hold no scaler/vocab state and cannot be "
            "served — retrain with `repro train --save <dir>` to produce "
            "a full artifact"
        )
    if not manifest_path.is_file():
        raise ArtifactError(f"{path} is not a predictor artifact "
                            f"(missing {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactIntegrityError(
            f"{manifest_path} is not valid JSON: {exc}"
        ) from exc
    if manifest.get("kind") != ARTIFACT_KIND:
        raise ArtifactError(
            f"{manifest_path} is not a {ARTIFACT_KIND} manifest"
        )
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactSchemaError(
            f"artifact schema v{version} is not loadable by this library "
            f"(supports v{SCHEMA_VERSION}); regenerate the artifact with "
            "`repro train --save`"
        )
    # Structural validation: a right-versioned manifest must still carry
    # every section the loaders index, and checksums for the canonical
    # file set — a partial write or hand edit degrades to a diagnostic,
    # not a KeyError (or worse, silently skipped checksum protection).
    problems = []
    for section, keys in (("model", ("name", "config", "n_parameters")),
                          ("features", ("sequence_length", "n_channels",
                                        "channel_index", "subscribers",
                                        "signal_channels"))):
        body = manifest.get(section)
        if not isinstance(body, dict):
            problems.append(f"section {section!r}")
        else:
            problems += [f"{section}.{key}" for key in keys
                         if key not in body]
    model = manifest.get("model")
    if isinstance(model, dict):
        if "name" in model and model["name"] not in DEEP_MODEL_NAMES:
            problems.append(
                f"model.name {model['name']!r} (not one of {DEEP_MODEL_NAMES})"
            )
        if "config" in model and not isinstance(model["config"], dict):
            problems.append("model.config (not a mapping)")
    files = manifest.get("files")
    if not isinstance(files, dict):
        problems.append("section 'files'")
    else:
        problems += [
            f"files[{name!r}].sha256" for name in (WEIGHTS_NAME, STATE_NAME)
            if not isinstance(files.get(name), dict)
            or "sha256" not in files[name]
        ]
    if problems:
        raise ArtifactIntegrityError(
            f"{manifest_path} is structurally invalid (bad or missing "
            f"{', '.join(problems)}) — the artifact is corrupt or was "
            "tampered with"
        )
    return manifest


def verify_files(path: str | Path, manifest: dict | None = None) -> None:
    """Check every bundled file exists and matches its recorded sha256.

    ``read_manifest`` guarantees checksums exist for the canonical file
    set (weights + state), so an emptied ``files`` section cannot
    silently disable tamper protection.
    """
    started = time.perf_counter()
    path = Path(path)
    if manifest is None:
        manifest = read_manifest(path)
    _verify_files_inner(path, manifest)
    default_registry().histogram(
        "artifact_verify_seconds",
        "Wall time to checksum-verify an artifact's bundled files.",
    ).observe(time.perf_counter() - started)


def _verify_files_inner(path: Path, manifest: dict) -> None:
    for name, meta in manifest["files"].items():
        if not isinstance(meta, dict):
            raise ArtifactIntegrityError(
                f"manifest files entry {name!r} is malformed (expected a "
                "mapping with a sha256) — the artifact is corrupt or was "
                "tampered with"
            )
        if Path(name).name != name or name in (".", ".."):
            # Artifacts are untrusted input: a crafted entry must not
            # point the checksum walk outside the artifact directory
            # (hash/existence oracle on arbitrary readable files).
            raise ArtifactIntegrityError(
                f"manifest files entry {name!r} is not a plain file name "
                "— the artifact is corrupt or was tampered with"
            )
        file_path = path / name
        if not file_path.is_file():
            raise ArtifactIntegrityError(f"artifact file missing: {file_path}")
        digest = _sha256(file_path)
        if digest != meta.get("sha256"):
            raise ArtifactIntegrityError(
                f"checksum mismatch for {file_path}: manifest records "
                f"{meta.get('sha256', '?')[:12]}…, file hashes "
                f"{digest[:12]}… — the artifact is corrupt or was "
                "tampered with"
            )


# -- module-level convenience API --------------------------------------------


def save_artifact(predictor: "TargetCoinPredictor", path: str | Path,
                  provenance: dict | None = None) -> Path:
    """Persist ``predictor`` as a full artifact directory at ``path``."""
    return PredictorArtifact.from_predictor(
        predictor, provenance=provenance
    ).save(path)


def load_artifact(path: str | Path) -> PredictorArtifact:
    """Load (and verify) an artifact bundle from disk."""
    return PredictorArtifact.load(path)


def load_predictor(path: str | Path, source,
                   dataset: "TargetCoinDataset") -> "TargetCoinPredictor":
    """One-call boot: artifact directory → servable predictor.

    ``source`` is any :class:`repro.sources.DataSource` backend (or a
    bare synthetic world).
    """
    return PredictorArtifact.load(path).to_predictor(source, dataset)
