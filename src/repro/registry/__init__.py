"""repro.registry — versioned predictor artifacts: train once, serve anywhere.

The model-lifecycle layer between training and serving:

``artifact``
    :class:`PredictorArtifact` — a schema-versioned bundle (architecture
    config + weights + fitted scalers + vocabulary metadata + training
    provenance) that reconstructs a fully working
    :class:`~repro.core.predictor.TargetCoinPredictor` without retraining;
    sha256 integrity and schema checks fail loudly instead of mis-scoring.
``registry``
    :class:`ModelRegistry` — named, versioned artifacts on disk with an
    atomically updated ``LATEST`` pointer and bulk validation, backing the
    ``repro models`` CLI and ``repro serve --load``.
``describe``
    JSON-safe registry/artifact summaries shared by ``repro models
    list/inspect --json`` and the gateway's ``GET /v1/models``.
"""

from repro.registry.artifact import (
    ARTIFACT_KIND,
    MANIFEST_NAME,
    SCHEMA_VERSION,
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactSchemaError,
    PredictorArtifact,
    check_save_target,
    is_artifact_dir,
    load_artifact,
    load_predictor,
    read_manifest,
    save_artifact,
    verify_files,
)
from repro.registry.describe import (
    entry_payload,
    manifest_payload,
    registry_payload,
)
from repro.registry.registry import (
    ModelRegistry,
    RegistryEntry,
    RegistryError,
    parse_ref,
)

__all__ = [
    "SCHEMA_VERSION", "ARTIFACT_KIND", "MANIFEST_NAME",
    "PredictorArtifact", "save_artifact", "load_artifact", "load_predictor",
    "read_manifest", "verify_files", "is_artifact_dir", "check_save_target",
    "ArtifactError", "ArtifactSchemaError", "ArtifactIntegrityError",
    "ModelRegistry", "RegistryEntry", "RegistryError", "parse_ref",
    "entry_payload", "manifest_payload", "registry_payload",
]
