"""ModelRegistry — named, versioned predictor artifacts on disk.

A registry is a plain directory tree; no daemon, no database::

    <root>/
        <name>/
            v0001/          # one PredictorArtifact directory per version
            v0002/
            LATEST          # text file naming the current version

Versions are immutable once published — ``publish`` always allocates the
next ``vNNNN`` and atomically repoints ``LATEST`` afterwards, so a serving
fleet resolving ``name@latest`` either sees the old complete version or
the new complete version, never a half-written one.  ``validate`` walks
every bundle's manifest + checksums so drift (manual edits, partial
copies, schema bumps) is caught by ``repro models validate`` instead of
by a wrong ranking in production.
"""

from __future__ import annotations

import errno
import os
import re
import shutil
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.registry.artifact import (
    ArtifactError,
    MANIFEST_NAME,
    PredictorArtifact,
    read_manifest,
    save_artifact,
    verify_files,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.predictor import TargetCoinPredictor

LATEST_NAME = "LATEST"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v\d{4,}$")


class RegistryError(RuntimeError):
    """A registry lookup or publish failed."""


@dataclass(frozen=True)
class RegistryEntry:
    """One (name, version) artifact plus its parsed manifest."""

    name: str
    version: str
    path: Path
    manifest: dict

    @property
    def model_name(self) -> str:
        return self.manifest["model"]["name"]

    @property
    def n_parameters(self) -> int:
        return int(self.manifest["model"]["n_parameters"])

    @property
    def provenance(self) -> dict:
        recorded = self.manifest.get("provenance")
        return dict(recorded) if isinstance(recorded, dict) else {}


def parse_ref(ref: str) -> tuple[str, str | None]:
    """Split ``name`` / ``name@version`` / ``name@latest`` references."""
    name, sep, version = ref.partition("@")
    if not sep or version == "latest":
        version = None
    return name, version or None


class ModelRegistry:
    """Filesystem registry of versioned predictor artifacts."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- naming --------------------------------------------------------------

    @staticmethod
    def check_name(name: str) -> str:
        """Validate a model name (raises :class:`RegistryError`).

        Public so callers can fail fast — e.g. ``repro train --register``
        rejects a bad name *before* spending the training run.
        """
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"invalid model name {name!r}: use letters, digits, "
                "'.', '_' or '-'"
            )
        return name

    def _model_dir(self, name: str) -> Path:
        return self.root / self.check_name(name)

    # -- publishing ----------------------------------------------------------

    def publish(self, predictor: "TargetCoinPredictor", name: str,
                provenance: dict | None = None) -> RegistryEntry:
        """Save ``predictor`` as the next version of ``name``."""
        version = self._next_version(name)
        staging = self._stage(name, version)
        try:
            save_artifact(predictor, staging, provenance=provenance)
        except BaseException:
            self._discard_stage(name, staging)
            raise
        return self._commit(name, version, staging)

    def import_artifact(self, artifact_dir: str | Path,
                        name: str) -> RegistryEntry:
        """Copy an existing artifact directory in as the next version.

        The source is fully verified (schema + checksums) first: a
        corrupt bundle must not become ``LATEST`` and break every serving
        process resolving it.
        """
        artifact_dir = Path(artifact_dir)
        verify_files(artifact_dir, read_manifest(artifact_dir))
        version = self._next_version(name)
        staging = self._stage(name, version)
        try:
            shutil.copytree(artifact_dir, staging)
        except BaseException:
            self._discard_stage(name, staging)
            raise
        return self._commit(name, version, staging)

    def _stage(self, name: str, version: str) -> Path:
        """A fresh staging path (not yet created) for one publish attempt.

        Artifacts are written here and renamed into their final ``vNNNN``
        directory only when complete: a crash mid-publish leaves a
        ``.staging-*`` directory that no reader (``versions``, ``latest``,
        ``validate``) ever matches, not a half-written version.  The name
        is unique per attempt (pid + random), so concurrent publishers of
        the same model never write into each other's staging area.
        """
        staging = self._model_dir(name) / (
            f".staging-{version}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        staging.parent.mkdir(parents=True, exist_ok=True)
        return staging

    def _discard_stage(self, name: str, staging: Path) -> None:
        """Drop a failed publish attempt; remove the model dir if empty."""
        shutil.rmtree(staging, ignore_errors=True)
        try:
            self._model_dir(name).rmdir()
        except OSError:
            pass  # not empty (has published versions) — keep it

    def _commit(self, name: str, version: str, staging: Path) -> RegistryEntry:
        final = self._model_dir(name) / version
        try:
            if final.exists():
                raise FileExistsError(errno.EEXIST, "version exists",
                                      str(final))
            # rename() still races a concurrent winner between the check
            # and here; on POSIX it then fails ENOTEMPTY/EEXIST, which is
            # handled identically to the fast-path check.
            staging.rename(final)
        except OSError as exc:
            if exc.errno not in (errno.EEXIST, errno.ENOTEMPTY):
                # A genuine I/O failure (disk full, permissions, …): keep
                # the staged bundle — it is the only copy of the trained
                # artifact — and surface the real error.
                raise
            # A concurrent publisher won the version: discard our staging
            # rather than overwrite the (immutable) committed bundle.
            shutil.rmtree(staging, ignore_errors=True)
            raise RegistryError(
                f"{name}@{version} already exists (concurrent publish?); "
                "published versions are immutable — retry to get the next "
                "version number"
            ) from None
        self._advance_latest(name, version)
        return self.entry(name, version)

    def _advance_latest(self, name: str, version: str) -> None:
        """Publish-path pointer update: never moves LATEST backwards.

        A publisher that stalls between committing its version and writing
        the pointer must not later overwrite a newer publisher's pointer;
        explicit rollback stays available via :meth:`set_latest`.  The
        read-compare-write runs under an advisory file lock so two
        publishers cannot interleave between the read and the replace
        (best-effort on platforms without ``fcntl``).
        """
        lock_path = self._model_dir(name) / ".latest.lock"
        with open(lock_path, "w") as lock:
            try:
                import fcntl

                fcntl.flock(lock, fcntl.LOCK_EX)
            except (ImportError, OSError):  # pragma: no cover - non-POSIX
                pass
            pointer = self._model_dir(name) / LATEST_NAME
            if pointer.is_file():
                current = pointer.read_text().strip()
                if (_VERSION_RE.match(current)
                        and current in self.versions(name)
                        and int(current[1:]) > int(version[1:])):
                    return
            self.set_latest(name, version)

    def _next_version(self, name: str) -> str:
        existing = self.versions(name)
        next_number = 1
        if existing:
            next_number = int(existing[-1][1:]) + 1
        return f"v{next_number:04d}"

    # -- resolution ----------------------------------------------------------

    def models(self) -> list[str]:
        """All model names in the registry, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and _NAME_RE.match(p.name)
        )

    def versions(self, name: str) -> list[str]:
        """Published versions of ``name``, oldest first.

        Ordered numerically, not lexicographically — past ``v9999`` the
        zero-padding stops sorting on its own ('v10000' < 'v9999' as
        strings), and a wrong tail here would make ``publish`` reallocate
        an existing version.
        """
        model_dir = self._model_dir(name)
        if not model_dir.is_dir():
            return []
        return sorted(
            (p.name for p in model_dir.iterdir()
             if p.is_dir() and _VERSION_RE.match(p.name)),
            key=lambda version: int(version[1:]),
        )

    def latest(self, name: str) -> str:
        """The version ``LATEST`` points at (validated to exist)."""
        pointer = self._model_dir(name) / LATEST_NAME
        versions = self.versions(name)
        if not versions:
            raise RegistryError(f"model {name!r} has no published versions "
                                f"under {self.root}")
        if pointer.is_file():
            version = pointer.read_text().strip()
            if version in versions:
                return version
        # A missing/stale pointer degrades to the newest *loadable*
        # version on disk — a ghost directory (e.g. an interrupted manual
        # copy with no manifest) must not shadow a healthy older version.
        for version in reversed(versions):
            if (self._model_dir(name) / version / MANIFEST_NAME).is_file():
                return version
        return versions[-1]

    def set_latest(self, name: str, version: str) -> None:
        if version not in self.versions(name):
            raise RegistryError(f"{name}@{version} does not exist")
        pointer = self._model_dir(name) / LATEST_NAME
        # Per-attempt unique temp name: concurrent publishers must not
        # consume each other's pending pointer write.
        tmp = pointer.with_name(
            f".{LATEST_NAME}-{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp"
        )
        tmp.write_text(version + "\n")
        tmp.replace(pointer)

    def resolve(self, name: str, version: str | None = None) -> Path:
        """Path of ``name@version`` (``None``/``latest`` → the pointer)."""
        if version is not None and not _VERSION_RE.match(version):
            # Mirrors check_name: a ref must not escape the registry tree
            # or reach internal (e.g. staging) directories.
            raise RegistryError(
                f"invalid version {version!r}: expected the form v0001"
            )
        version = version or self.latest(name)
        path = self._model_dir(name) / version
        if not (path / MANIFEST_NAME).is_file():
            raise RegistryError(f"{name}@{version} not found under {self.root}")
        return path

    def entry(self, name: str, version: str | None = None) -> RegistryEntry:
        path = self.resolve(name, version)
        return RegistryEntry(name=name, version=path.name, path=path,
                             manifest=read_manifest(path))

    def entries(self) -> Iterable[RegistryEntry]:
        """Every (name, version) bundle, newest version last per model."""
        for name in self.models():
            for version in self.versions(name):
                yield RegistryEntry(
                    name=name, version=version,
                    path=self._model_dir(name) / version,
                    manifest=read_manifest(self._model_dir(name) / version),
                )

    def load(self, name: str, version: str | None = None) -> PredictorArtifact:
        """Load (and integrity-check) one registered artifact."""
        return PredictorArtifact.load(self.resolve(name, version))

    # -- validation ----------------------------------------------------------

    def validate(self, name: str | None = None,
                 version: str | None = None) -> list[str]:
        """Integrity-check bundles; returns human-readable problems.

        With no arguments every version of every model is checked; an
        empty list means the registry is sound.
        """
        problems: list[str] = []
        if name is not None:
            if version is not None and not _VERSION_RE.match(version):
                # Same guard as resolve(): a crafted ref must not probe
                # paths outside the registry tree or staging directories.
                return [f"{name}@{version}: invalid version "
                        "(expected the form v0001)"]
            targets = [(name, v) for v in
                       ([version] if version else self.versions(name))]
            if not targets:
                return [f"model {name!r} has no published versions"]
        else:
            targets = [(n, v) for n in self.models() for v in self.versions(n)]
        for model_name, model_version in targets:
            path = self._model_dir(model_name) / model_version
            try:
                manifest = read_manifest(path)
                verify_files(path, manifest)
            except ArtifactError as exc:
                problems.append(f"{model_name}@{model_version}: {exc}")
        # Pointer health is per model, independent of bundle health — a
        # dangling LATEST must surface even when every version is broken
        # or gone entirely (zero versions left on disk).
        pointer_models = [name] if name is not None else self.models()
        for model_name in pointer_models:
            pointer = self._model_dir(model_name) / LATEST_NAME
            if pointer.is_file():
                target = pointer.read_text().strip()
                if target not in self.versions(model_name):
                    problems.append(
                        f"{model_name}: LATEST points at missing "
                        f"version {target!r}"
                    )
        return sorted(problems)
