"""Causal dilated temporal convolutions and the TCN competitor.

TCN follows Bai et al. (2018): stacks of residual temporal blocks with
exponentially growing dilation, each block two causal convolutions with ReLU
and dropout.  The receptive field of a stack with kernel size ``k`` and
``L`` levels is ``1 + 2 (k - 1) (2^L - 1)``; Table 5 uses depth 3 / kernel 4
to cover a 20-step sequence, Table 8 depth 5 / kernel 8 for 200 steps.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.layers import Dropout
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, pad_time_left


class CausalConv1d(Module):
    """Dilated causal convolution over ``(batch, time, channels)``.

    Implemented as a sum of time-shifted affine maps, which keeps the whole
    operation inside the autograd engine without a dedicated conv kernel:
    ``y[t] = bias + sum_k x[t - dilation * (K-1-k)] @ W[k]``.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, dilation: int = 1):
        super().__init__()
        if kernel_size < 1 or dilation < 1:
            raise ValueError("kernel_size and dilation must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        fan_in = in_channels * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform(rng, fan_in, (kernel_size, in_channels, out_channels))
        )
        self.bias = Parameter(init.zeros((out_channels,)))

    @property
    def left_context(self) -> int:
        """How many past steps one output step sees beyond itself."""
        return (self.kernel_size - 1) * self.dilation

    def forward(self, x: Tensor) -> Tensor:
        _, time, _ = x.shape
        padded = pad_time_left(x, self.left_context)
        out = None
        for k in range(self.kernel_size):
            offset = k * self.dilation
            tap = padded[:, offset: offset + time, :] @ self.weight[k]
            out = tap if out is None else out + tap
        return out + self.bias


class TemporalBlock(Module):
    """Residual block: (conv → ReLU → dropout) × 2 with a skip connection."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 dilation: int, rng: np.random.Generator, dropout: float = 0.1):
        super().__init__()
        self.conv1 = CausalConv1d(in_channels, out_channels, kernel_size, rng, dilation)
        self.conv2 = CausalConv1d(out_channels, out_channels, kernel_size, rng, dilation)
        self.drop1 = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**32)))
        self.drop2 = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**32)))
        self.downsample = (
            CausalConv1d(in_channels, out_channels, 1, rng)
            if in_channels != out_channels
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = self.drop1(self.conv1(x).relu())
        out = self.drop2(self.conv2(out).relu())
        residual = x if self.downsample is None else self.downsample(x)
        return (out + residual).relu()


class TCN(Module):
    """Temporal convolutional network; summary is the last time step."""

    def __init__(self, input_dim: int, channels: int, depth: int, kernel_size: int,
                 rng: np.random.Generator, dropout: float = 0.1):
        super().__init__()
        blocks = []
        in_ch = input_dim
        for level in range(depth):
            blocks.append(
                TemporalBlock(in_ch, channels, kernel_size, 2**level, rng, dropout)
            )
            in_ch = channels
        self.blocks = blocks
        self.output_dim = channels

    @property
    def receptive_field(self) -> int:
        """Number of input steps visible from the final output step."""
        field = 1
        for block in self.blocks:
            field += 2 * block.conv1.left_context
        return field

    def forward(self, x: Tensor, return_sequence: bool = False):
        out = x
        for block in self.blocks:
            out = block(out)
        if return_sequence:
            return out
        return out[:, -1, :]
