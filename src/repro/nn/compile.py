"""Compiled no-grad inference: lower a trained ranker into raw-numpy plans.

The eager path runs every forward through the autograd ``Tensor`` — one
Python object, one graph-bookkeeping decision and one fresh ndarray per op.
For inference that overhead dwarfs the actual numpy FLOPs on the paper's
small models.  :func:`compile_inference` traces a ranker :class:`Module`
once into a *plan*: a flat list of named steps over raw ``numpy`` arrays
with

* no ``Tensor`` allocation per op — steps read parameter ``.data`` arrays
  live (so a plan stays valid across optimizer updates) and write into
  preallocated per-step output buffers;
* fused elementwise chains — affine + bias + ReLU run in place on one
  buffer, sigmoid/softmax are single vectorized expressions;
* the head-input concatenation replaced by slice writes into one buffer.

Every step replicates the eager op's exact floating-point expression (same
operation order, same formulas), so compiled logits are bit-for-bit the
eager logits; the first execution of a plan additionally *verifies* this
with an ``allclose`` check against an eager ``no_grad`` forward and raises
:class:`CompileError` on any mismatch.

Supported architectures: :class:`~repro.core.snn.SNN` and every deep
Table 5 competitor (DNN, LSTM/BiLSTM/GRU/BiGRU, TCN rankers).  Unsupported
modules raise :class:`CompileError`; call sites fall back to the eager
path via :func:`run_compiled`, which returns ``None`` instead of raising.

Plans are inference-only: they implement eval-mode semantics (dropout is
identity) and never record gradients.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.nn.layers import MLP, Linear
from repro.nn.module import Module
from repro.nn.tensor import no_grad, stable_sigmoid
from repro.telemetry import default_registry


class CompileError(RuntimeError):
    """The module cannot be lowered, or a plan disagreed with eager."""


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Raw-numpy replica of ``Tensor.sigmoid`` (tanh form, bit-identical)."""
    return 0.5 * (1.0 + np.tanh(0.5 * x))


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Raw-numpy replica of ``Tensor.softmax`` (shifted exp, bit-identical)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


class _BufferPool:
    """Named preallocated output buffers, reused across executions.

    Buffers are keyed by step name; a shape change (e.g. the tail batch of
    an evaluation pass, or a different candidate count per announcement)
    reallocates that one buffer and keeps the rest.
    """

    def __init__(self):
        self._store: dict[str, np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        buf = self._store.get(name)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=np.float64)
            self._store[name] = buf
        return buf


@dataclass(frozen=True)
class Step:
    """One traced plan step: a named raw-numpy operation over the context."""

    name: str
    run: Callable[[dict], None]


class CompiledInference:
    """A flat, reusable plan of raw-numpy ops for one ranker module.

    ``logits(batch)`` executes the plan; the returned array is a plan-owned
    buffer valid until the next execution (copy it to keep it).
    ``probabilities(batch)`` applies the stable sigmoid and returns a fresh
    array.  The first execution self-verifies against an eager ``no_grad``
    forward of the source module.
    """

    def __init__(self, model: Module, steps: list[Step], output: str,
                 watched: list[tuple[str, object]] | None = None):
        # Weak: plans are cached in a WeakKeyDictionary keyed by the model,
        # so a strong reference here would keep dead models alive forever.
        self._model_ref = weakref.ref(model)
        self._steps = steps
        self._output = output
        self._buffers = _BufferPool()
        self._verified = False
        # Submodules captured at trace time: if any is reassigned on the
        # model afterwards (e.g. an ablation swapping the attention layer),
        # the plan is stale and must be retraced.
        self._watched = list(watched or ())

    @property
    def steps(self) -> list[Step]:
        """The traced plan (read-only view for tests/introspection)."""
        return list(self._steps)

    def _execute(self, batch) -> np.ndarray:
        ctx: dict = {"batch": batch, "buffers": self._buffers}
        for step in self._steps:
            step.run(ctx)
        return ctx[self._output]

    def stale(self) -> bool:
        """True when a traced submodule was reassigned on the source model."""
        model = self._model_ref()
        if model is None:
            return False
        return any(
            getattr(model, name, None) is not obj for name, obj in self._watched
        )

    def logits(self, batch) -> np.ndarray:
        """Pre-sigmoid scores ``(B,)`` for a :class:`~repro.core.snn.Batch`."""
        if self.stale():
            raise CompileError(
                "a traced submodule was replaced after compilation; retrace "
                "the model with compile_inference()"
            )
        out = self._execute(batch)
        if not self._verified:
            self.verify(batch, _compiled=out)
        return out

    __call__ = logits

    def probabilities(self, batch) -> np.ndarray:
        """Pump probabilities via the numerically stable sigmoid."""
        return stable_sigmoid(self.logits(batch))

    def verify(self, batch, _compiled: np.ndarray | None = None) -> None:
        """Check the plan against the eager eval-mode forward (allclose).

        Raises :class:`CompileError` on mismatch; marks the plan verified on
        success so later executions skip the eager pass.
        """
        model = self._model_ref()
        if model is None:
            raise CompileError("source module was garbage-collected")
        import time as _time

        started = _time.perf_counter()
        compiled = self._execute(batch) if _compiled is None else _compiled
        model.eval()
        with no_grad():
            eager = model(batch).numpy()
        default_registry().histogram(
            "compile_verify_seconds",
            "Wall time to verify a compiled plan against the eager forward.",
        ).observe(_time.perf_counter() - started)
        if compiled.shape != eager.shape or not np.allclose(
            compiled, eager, rtol=1e-6, atol=1e-9
        ):
            raise CompileError(
                f"compiled plan diverged from eager forward for "
                f"{type(model).__name__} (max abs diff "
                f"{np.max(np.abs(compiled - eager)):.3e})"
            )
        self._verified = True


# -- lowering -----------------------------------------------------------------


def _lower_mlp(head: MLP, input_key: str, output_key: str,
               prefix: str) -> list[Step]:
    """Affine + ReLU chain fused in place on preallocated buffers."""
    linears: list[Linear] = list(head.linears)
    last = len(linears) - 1

    def make_step(i: int, linear: Linear) -> Step:
        name = f"{prefix}.linear{i}"
        src = input_key if i == 0 else f"{prefix}.h{i - 1}"
        dst = output_key if i == last else f"{prefix}.h{i}"

        def run(ctx: dict) -> None:
            h = ctx[src]
            out = ctx["buffers"].get(name, (h.shape[0], linear.out_features))
            if linear.out_features == 1:
                # Mirror the eager Linear's single-output path (multiply
                # + pairwise row sum, batch-size-stable) op for op so the
                # plan stays bit-identical to the eager forward.
                prod = ctx["buffers"].get(f"{name}.prod", h.shape)
                np.multiply(h, linear.weight.data[:, 0], out=prod)
                np.sum(prod, axis=1, out=out[:, 0])
            else:
                np.matmul(h, linear.weight.data, out=out)
            if linear.bias is not None:
                out += linear.bias.data
            if i != last:
                np.maximum(out, 0.0, out=out)
            ctx[dst] = out

        return Step(name, run)

    return [make_step(i, linear) for i, linear in enumerate(linears)]


def _lower_sequence_input(model, masked_key: str) -> Step:
    """Build the masked ``(B, N, K)`` sequence tensor from raw batch arrays."""
    coin_embedding = model.coin_embedding
    emb_dim = coin_embedding.dim

    def run(ctx: dict) -> None:
        batch = ctx["batch"]
        b, n = batch.seq_coin_idx.shape
        k = emb_dim + batch.seq_numeric.shape[-1]
        seq = ctx["buffers"].get("seq_input", (b, n, k))
        seq[:, :, :emb_dim] = coin_embedding.weight.data[batch.seq_coin_idx]
        seq[:, :, emb_dim:] = batch.seq_numeric
        seq *= batch.seq_mask[:, :, None]
        ctx[masked_key] = seq

    return Step("seq_input", run)


def _attention_forward(attention, seq: np.ndarray) -> np.ndarray:
    """Raw-numpy replica of ``PositionalAttention.forward``."""
    logits = attention.logits.data
    if attention.map_in is not None:
        hidden = logits @ attention.map_in.weight.data
        if attention.map_in.bias is not None:
            hidden = hidden + attention.map_in.bias.data
        hidden = np.tanh(hidden)
        logits = hidden @ attention.map_out.weight.data
        if attention.map_out.bias is not None:
            logits = logits + attention.map_out.bias.data
    alpha = _softmax(logits, axis=-1)                  # (H, N)
    columns = seq[:, :, attention._feature_of_head]    # (B, N, H)
    columns *= alpha.transpose(1, 0)
    return columns.sum(axis=1)


def _lower_rnn_encoder(encoder) -> Callable[[np.ndarray], np.ndarray]:
    """Raw-numpy unrolled forward of LSTM/GRU/Bidirectional encoders."""
    from repro.nn.rnn import GRU, LSTM, Bidirectional

    if isinstance(encoder, LSTM):
        cell = encoder.cell
        hd = cell.hidden_dim

        def run_lstm(x: np.ndarray) -> np.ndarray:
            b, time, _ = x.shape
            h = np.zeros((b, hd))
            c = np.zeros((b, hd))
            w_ih, w_hh, bias = cell.w_ih.data, cell.w_hh.data, cell.bias.data
            for t in range(time):
                gates = x[:, t, :] @ w_ih + h @ w_hh + bias
                i = _sigmoid(gates[:, 0 * hd: 1 * hd])
                f = _sigmoid(gates[:, 1 * hd: 2 * hd])
                g = np.tanh(gates[:, 2 * hd: 3 * hd])
                o = _sigmoid(gates[:, 3 * hd: 4 * hd])
                c = f * c + i * g
                h = o * np.tanh(c)
            return h

        return run_lstm
    if isinstance(encoder, GRU):
        cell = encoder.cell
        hd = cell.hidden_dim

        def run_gru(x: np.ndarray) -> np.ndarray:
            b, time, _ = x.shape
            h = np.zeros((b, hd))
            w_ih, w_hh, bias = cell.w_ih.data, cell.w_hh.data, cell.bias.data
            for t in range(time):
                gi = x[:, t, :] @ w_ih + bias
                gh = h @ w_hh
                r = _sigmoid(gi[:, 0 * hd: 1 * hd] + gh[:, 0 * hd: 1 * hd])
                z = _sigmoid(gi[:, 1 * hd: 2 * hd] + gh[:, 1 * hd: 2 * hd])
                n = np.tanh(gi[:, 2 * hd: 3 * hd] + r * gh[:, 2 * hd: 3 * hd])
                h = (1.0 - z) * n + z * h
            return h

        return run_gru
    if isinstance(encoder, Bidirectional):
        fwd = _lower_rnn_encoder(encoder.forward_enc)
        bwd = _lower_rnn_encoder(encoder.backward_enc)

        def run_bidir(x: np.ndarray) -> np.ndarray:
            return np.concatenate([fwd(x), bwd(x[:, ::-1, :])], axis=-1)

        return run_bidir
    raise CompileError(f"unsupported sequence encoder {type(encoder).__name__}")


def _lower_tcn_encoder(encoder) -> Callable[[np.ndarray], np.ndarray]:
    """Raw-numpy forward of a TCN stack (eval mode: dropout is identity)."""

    def run_conv(conv, x: np.ndarray) -> np.ndarray:
        _, time, _ = x.shape
        pad = conv.left_context
        if pad:
            padded = np.concatenate(
                [np.zeros((x.shape[0], pad, x.shape[2])), x], axis=1
            )
        else:
            padded = x
        weight = conv.weight.data
        out = None
        for k in range(conv.kernel_size):
            offset = k * conv.dilation
            tap = padded[:, offset: offset + time, :] @ weight[k]
            out = tap if out is None else out + tap
        return out + conv.bias.data

    def run_tcn(x: np.ndarray) -> np.ndarray:
        out = x
        for block in encoder.blocks:
            inner = np.maximum(run_conv(block.conv1, out), 0.0)
            inner = np.maximum(run_conv(block.conv2, inner), 0.0)
            residual = out if block.downsample is None else run_conv(
                block.downsample, out
            )
            out = np.maximum(inner + residual, 0.0)
        return out[:, -1, :]

    return run_tcn


def _lower_encoder(encoder) -> Callable[[np.ndarray], np.ndarray]:
    from repro.nn.conv import TCN

    if isinstance(encoder, TCN):
        return _lower_tcn_encoder(encoder)
    return _lower_rnn_encoder(encoder)


def _lower_ranker(model) -> tuple[list[Step], str, list[tuple[str, object]]]:
    """Lower SNN / _DeepRanker architectures into a step plan."""
    from repro.core.baselines import _DeepRanker
    from repro.core.snn import SNN

    if not isinstance(model, (SNN, _DeepRanker)):
        raise CompileError(
            f"no lowering rule for {type(model).__name__}; "
            "supported: SNN and the deep Table 5 rankers"
        )
    config = model.config
    channel_embedding = model.channel_embedding
    coin_embedding = model.coin_embedding
    watched = [
        ("channel_embedding", channel_embedding),
        ("coin_embedding", coin_embedding),
        ("head", model.head),
    ]
    if isinstance(model, SNN):
        watched.append(("attention", model.attention))
    elif model.sequence_encoder is not None:
        watched.append(("sequence_encoder", model.sequence_encoder))
    ce, co, nn = config.channel_emb_dim, config.coin_emb_dim, config.n_numeric

    if isinstance(model, SNN):
        seq_dim = model.attention.output_dim
    elif model.sequence_encoder is None:
        seq_dim = 0
    else:
        seq_dim = model.sequence_encoder.output_dim
    head_in = ce + co + nn + seq_dim
    steps: list[Step] = []

    def run_embed(ctx: dict) -> None:
        batch = ctx["batch"]
        b = len(batch.channel_idx)
        x = ctx["buffers"].get("head_input", (b, head_in))
        x[:, :ce] = channel_embedding.weight.data[batch.channel_idx]
        x[:, ce: ce + co] = coin_embedding.weight.data[batch.coin_idx]
        x[:, ce + co: ce + co + nn] = batch.numeric
        ctx["head_input"] = x

    steps.append(Step("embed+numeric", run_embed))

    if seq_dim:
        steps.append(_lower_sequence_input(model, "seq_masked"))
        if isinstance(model, SNN):
            attention = model.attention

            def run_seq(ctx: dict) -> None:
                h_s = _attention_forward(attention, ctx["seq_masked"])
                ctx["head_input"][:, ce + co + nn:] = h_s

            steps.append(Step("positional_attention", run_seq))
        else:
            encoder_fn = _lower_encoder(model.sequence_encoder)

            def run_seq(ctx: dict) -> None:
                # Histories are newest-first; encoders read oldest-first.
                h_s = encoder_fn(ctx["seq_masked"][:, ::-1, :])
                ctx["head_input"][:, ce + co + nn:] = h_s

            steps.append(Step("sequence_encoder", run_seq))

    steps.extend(_lower_mlp(model.head, "head_input", "head_out", "head"))

    def run_ravel(ctx: dict) -> None:
        ctx["logits"] = ctx["head_out"].reshape(-1)

    steps.append(Step("ravel", run_ravel))
    return steps, "logits", watched


def compile_inference(model: Module, sample_batch=None) -> CompiledInference:
    """Trace ``model`` into a :class:`CompiledInference` plan.

    ``sample_batch`` optionally verifies the plan immediately; otherwise the
    first execution verifies lazily.  Raises :class:`CompileError` for
    unsupported modules or on verification mismatch.
    """
    steps, output, watched = _lower_ranker(model)
    plan = CompiledInference(model, steps, output, watched)
    default_registry().counter(
        "compile_plan_builds_total", "Inference plans traced, per model class.",
        ("model",),
    ).labels(model=type(model).__name__).inc()
    if sample_batch is not None:
        plan.verify(sample_batch)
    return plan


def synthetic_batch(config, batch_size: int = 4, seed: int = 0):
    """A small seeded batch matching a ranker config.

    Used to warm up and verify a plan before real traffic arrives; rows mix
    full and left-padded histories so masking is exercised.
    """
    from repro.core.snn import Batch

    rng = np.random.default_rng(seed)
    pad_id = config.n_coin_ids - 1
    seq_ids = rng.integers(0, max(pad_id, 1), size=(batch_size, config.seq_len))
    mask = np.ones((batch_size, config.seq_len))
    for i in range(batch_size):
        real = rng.integers(0, config.seq_len + 1)
        mask[i, real:] = 0.0
        seq_ids[i, real:] = pad_id
    return Batch(
        channel_idx=rng.integers(0, config.n_channels, size=batch_size),
        coin_idx=rng.integers(0, max(pad_id, 1), size=batch_size),
        numeric=rng.normal(size=(batch_size, config.n_numeric)),
        seq_coin_idx=seq_ids,
        seq_numeric=rng.normal(
            size=(batch_size, config.seq_len, config.n_seq_numeric)
        ) * mask[:, :, None],
        seq_mask=mask,
        label=np.zeros(batch_size),
    )


# One shared plan per module instance: batch evaluation, the offline
# predictor and the streaming PredictionService all reuse the same trace.
_PLAN_CACHE: "weakref.WeakKeyDictionary[Module, CompiledInference | None]" = (
    weakref.WeakKeyDictionary()
)


def get_compiled(model: Module) -> CompiledInference | None:
    """Memoized :func:`compile_inference`; ``None`` if unsupported."""
    try:
        return _PLAN_CACHE[model]
    except KeyError:
        pass
    try:
        plan = compile_inference(model)
    except CompileError:
        plan = None
    _PLAN_CACHE[model] = plan
    return plan


def run_compiled(model: Module, batch) -> np.ndarray | None:
    """Compiled logits for ``batch``, or ``None`` to signal eager fallback.

    A stale plan (a submodule was reassigned since tracing) is retraced
    once; if the fresh plan also fails — i.e. genuine verification
    divergence — the model is pinned to the slow-but-known-good eager path
    instead of ever returning wrong scores.
    """
    plan = get_compiled(model)
    if plan is None:
        return None
    try:
        return plan.logits(batch)
    except CompileError:
        try:
            plan = compile_inference(model)
            out = plan.logits(batch)
        except CompileError:
            _PLAN_CACHE[model] = None
            return None
        _PLAN_CACHE[model] = plan
        return out


def prewarm(model: Module) -> CompiledInference | None:
    """Compile *and verify* a model's plan ahead of real traffic.

    Verification runs on a :func:`synthetic_batch` built from the model's
    config, so the first production batch pays neither tracing nor the
    verify-time eager forward.  Returns the verified plan, or ``None`` when
    the model is unsupported or failed verification (callers then use the
    eager path via :func:`run_compiled`'s fallback).  A plan that already
    passed verification is returned as-is — stacked prewarms (e.g. artifact
    load followed by service construction) pay the eager forward once.
    """
    plan = get_compiled(model)
    if plan is None:
        return None
    if getattr(plan, "_verified", False):
        # Already proven against eager — by an earlier prewarm or by the
        # plan's own first execution.
        return plan
    config = getattr(model, "config", None)
    if config is None:
        return plan
    try:
        plan.verify(synthetic_batch(config))
    except CompileError:
        _PLAN_CACHE[model] = None
        return None
    return plan
