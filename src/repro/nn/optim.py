"""Gradient-descent optimizers: SGD (with momentum) and Adam."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(params, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm; parameters without gradients are skipped.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for grad in grads:
        total += float((grad * grad).sum())
    norm = total**0.5
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for grad in grads:
            grad *= scale
    return norm


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = [p for p in params if p.requires_grad]
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction and weight decay.

    ``step`` performs fused in-place updates: every elementwise operation
    writes into per-parameter scratch buffers allocated once, so a training
    step allocates nothing.  The operation order reproduces the textbook
    update (``lr * m_hat / (sqrt(v_hat) + eps)``) bit-for-bit.
    """

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]
        self._scratch2 = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v, tmp, upd in zip(self.params, self._m, self._v,
                                         self._scratch, self._scratch2):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            # m = beta1 * m + (1 - beta1) * grad
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=tmp)
            m += tmp
            # v = beta2 * v + (1 - beta2) * grad * grad
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=tmp)
            tmp *= grad
            v += tmp
            # param -= lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=tmp)
            np.sqrt(tmp, out=tmp)
            tmp += self.eps
            np.divide(m, bias1, out=upd)
            upd *= self.lr
            upd /= tmp
            param.data -= upd
