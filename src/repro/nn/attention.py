"""Positional attention — the core module of the paper's SNN (§5.2).

For a sequence of ``N`` entities each with ``K`` features, every feature
``j`` owns ``C_j`` independent attention heads ("channels").  A head is a
vector of ``N`` zero-initialized learnable logits ``a_j``, optionally passed
through a mapping function ``f`` (an MLP), then softmax-normalized **across
positions**:

    alpha_j = softmax(f(a_j))            (paper eqs. 3-4)
    h_j^c   = sum_i alpha_{i,j}^c F_{i,j}  (paper eq. 5)

The attended sums of all heads of all features are concatenated into the
sequence representation ``h_s`` (eq. 6).  Because the logits are *per
position and per feature*, the module captures skip-correlation in a single
layer (paper advantage D1) and keeps features from interfering (D2); the
computation is one broadcasted multiply-sum, ``O(N * K * C)`` (D3).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class PositionalAttention(Module):
    """Per-feature, per-position multi-channel attention pooling.

    Parameters
    ----------
    seq_len:
        Number of positions ``N`` (position 1 = temporally closest).
    num_features:
        Number of per-entity features ``K``.
    channels:
        Either a single int (same head count for every feature) or a list of
        length ``K`` with per-feature head counts — the paper sets larger
        counts for non-skip-correlated features such as ``hour_price``.
    mapping_hidden:
        If positive, logits pass through a shared two-layer MLP ``f`` of this
        hidden width before the softmax (the adjustable mapping of eq. 3).
    """

    def __init__(self, seq_len: int, num_features: int,
                 channels: int | list[int] = 8,
                 rng: np.random.Generator | None = None,
                 mapping_hidden: int = 0):
        super().__init__()
        if seq_len < 1 or num_features < 1:
            raise ValueError("seq_len and num_features must be positive")
        if isinstance(channels, int):
            channels = [channels] * num_features
        if len(channels) != num_features:
            raise ValueError("one channel count per feature is required")
        if any(c < 1 for c in channels):
            raise ValueError("channel counts must be positive")
        self.seq_len = seq_len
        self.num_features = num_features
        self.channels = list(channels)
        self.output_dim = int(sum(channels))
        # All heads share one logits matrix of shape (total_heads, N); the
        # row blocks are assigned to features in order.
        self.logits = Parameter(init.zeros((self.output_dim, seq_len)))
        rng = rng or np.random.default_rng(0)
        if mapping_hidden > 0:
            self.map_in = Linear(seq_len, mapping_hidden, rng)
            self.map_out = Linear(mapping_hidden, seq_len, rng)
        else:
            self.map_in = None
            self.map_out = None
        # Row index -> feature index, used to gather feature columns.
        feature_of_head = np.repeat(np.arange(num_features), self.channels)
        self._feature_of_head = feature_of_head

    def attention_weights(self) -> np.ndarray:
        """Return the softmax attention matrix ``(total_heads, N)``.

        This is what Figure 10 visualizes.
        """
        logits = self.logits
        if self.map_in is not None:
            logits = self.map_out(self.map_in(logits).tanh())
        return logits.softmax(axis=-1).data.copy()

    def attention_by_feature(self) -> list[np.ndarray]:
        """Attention matrices grouped per feature, each ``(C_j, N)``."""
        weights = self.attention_weights()
        out = []
        offset = 0
        for count in self.channels:
            out.append(weights[offset: offset + count])
            offset += count
        return out

    def forward(self, sequence: Tensor) -> Tensor:
        """Encode ``(batch, N, K)`` sequences into ``(batch, sum(C_j))``."""
        if sequence.ndim != 3:
            raise ValueError("expected (batch, seq_len, num_features)")
        _, n, k = sequence.shape
        if n != self.seq_len or k != self.num_features:
            raise ValueError(
                f"expected (*, {self.seq_len}, {self.num_features}), got {sequence.shape}"
            )
        logits = self.logits
        if self.map_in is not None:
            logits = self.map_out(self.map_in(logits).tanh())
        alpha = logits.softmax(axis=-1)  # (H, N)
        # Gather each head's feature column: (B, N, K) -> (B, N, H)
        columns = sequence[:, :, self._feature_of_head]
        # Attended sum over positions: (B, N, H) * (H, N)^T -> (B, H)
        weighted = columns * alpha.transpose(1, 0)
        return weighted.sum(axis=1)
