"""repro.nn — a numpy autograd framework sized for the paper's models.

Public surface:

* :class:`~repro.nn.tensor.Tensor` with reverse-mode autodiff and
  :func:`~repro.nn.tensor.no_grad`.
* Modules: :class:`Linear`, :class:`Embedding`, :class:`Dropout`,
  :class:`MLP`, :class:`Sequential`, :class:`LSTM`, :class:`GRU`,
  :class:`Bidirectional`, :class:`TCN`, :class:`PositionalAttention`.
* Losses: :func:`bce_with_logits`, :func:`mae_loss`, :func:`mse_loss`.
* Optimizers: :class:`SGD`, :class:`Adam`.
* Compiled inference: :func:`compile_inference` / :func:`get_compiled` /
  :func:`run_compiled` lower a trained ranker into a flat raw-numpy plan
  (see :mod:`repro.nn.compile`); :func:`stable_sigmoid` is the shared
  overflow-safe probability map.
"""

from repro.nn.tensor import (
    Tensor,
    concat,
    embedding_lookup,
    is_grad_enabled,
    no_grad,
    pad_time_left,
    stable_sigmoid,
    stack,
    where_constant,
)
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import MLP, Dropout, Embedding, Linear, ReLU, Sigmoid, Tanh
from repro.nn.rnn import GRU, LSTM, Bidirectional, GRUCell, LSTMCell, make_rnn
from repro.nn.conv import TCN, CausalConv1d, TemporalBlock
from repro.nn.attention import PositionalAttention
from repro.nn.loss import bce_with_logits, mae_loss, mse_loss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.serialize import archive_summary, load_module, save_module
from repro.nn.compile import (
    CompiledInference,
    CompileError,
    compile_inference,
    get_compiled,
    prewarm,
    run_compiled,
    synthetic_batch,
)

__all__ = [
    "Tensor", "concat", "stack", "embedding_lookup", "no_grad",
    "is_grad_enabled", "pad_time_left", "where_constant", "stable_sigmoid",
    "Module", "Parameter", "Sequential",
    "Linear", "Embedding", "Dropout", "MLP", "ReLU", "Sigmoid", "Tanh",
    "LSTM", "GRU", "LSTMCell", "GRUCell", "Bidirectional", "make_rnn",
    "TCN", "CausalConv1d", "TemporalBlock",
    "PositionalAttention",
    "bce_with_logits", "mae_loss", "mse_loss",
    "SGD", "Adam", "Optimizer",
    "save_module", "load_module", "archive_summary",
    "CompiledInference", "CompileError", "compile_inference",
    "get_compiled", "run_compiled", "prewarm", "synthetic_batch",
]
