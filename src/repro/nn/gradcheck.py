"""Numerical gradient checking for the autograd engine.

Used by the test-suite to verify every op against central finite
differences; exported publicly because it is handy when extending the
framework with new operations.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    base = [np.asarray(arr, dtype=np.float64).copy() for arr in inputs]
    target = base[index]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = target[idx]
        target[idx] = original + eps
        plus = float(fn(*[Tensor(a) for a in base]).data.sum())
        target[idx] = original - eps
        minus = float(fn(*[Tensor(a) for a in base]).data.sum())
        target[idx] = original
        grad[idx] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def gradcheck(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
              atol: float = 1e-5, rtol: float = 1e-4, eps: float = 1e-6) -> bool:
    """Compare autograd gradients of ``sum(fn(*inputs))`` to finite differences.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns ``True``
    when every input's gradient matches.
    """
    tensors = [Tensor(np.asarray(a, dtype=np.float64), requires_grad=True) for a in inputs]
    out = fn(*tensors)
    out.sum().backward()
    for i, tensor in enumerate(tensors):
        expected = numerical_gradient(fn, inputs, i, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.max(np.abs(actual - expected))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs err {worst:.3e}\n"
                f"autograd:\n{actual}\nnumeric:\n{expected}"
            )
    return True
