"""Core feed-forward layers: Linear, Embedding, Dropout, activations, MLP."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, embedding_lookup


class Linear(Module):
    """Affine map ``y = x W + b`` for inputs of shape ``(..., in_features)``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if self.out_features == 1:
            # BLAS matvec kernels pick their accumulation order by batch
            # size, so the same input row can score a ulp different alone
            # vs inside a larger batch.  A broadcast-multiply + pairwise
            # row sum reduces every row independently of the batch — the
            # bit-stability the serving micro-batcher's parity contract
            # rests on (see repro.gateway.microbatch).
            out = (x * self.weight.reshape(self.in_features)).sum(
                axis=-1, keepdims=True)
        else:
            out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    ``frozen=True`` keeps the table fixed (used when semantic word embeddings
    replace end-to-end trained coin-id embeddings in the cold-start fix).
    """

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 frozen: bool = False):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal(rng, (num_embeddings, dim), std=0.05))
        if frozen:
            self.weight.requires_grad = False

    @classmethod
    def from_pretrained(cls, vectors: np.ndarray, frozen: bool = True) -> "Embedding":
        """Build an embedding initialized from a pre-trained matrix."""
        rng = np.random.default_rng(0)
        module = cls(vectors.shape[0], vectors.shape[1], rng, frozen=frozen)
        module.weight.data = np.asarray(vectors, dtype=np.float64).copy()
        return module

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return embedding_lookup(self.weight, indices)


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    The mask generator is owned by the layer so runs are reproducible.
    """

    def __init__(self, p: float, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class MLP(Module):
    """Stack of Linear+ReLU layers with a linear head.

    ``dims`` gives layer widths including input and output, e.g.
    ``MLP([128, 64, 32, 1], rng)`` builds two hidden layers and a scalar head.
    """

    def __init__(self, dims: list[int], rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self.linears = [Linear(a, b, rng) for a, b in zip(dims[:-1], dims[1:])]
        self.dropout = Dropout(dropout, rng=np.random.default_rng(rng.integers(2**32))) \
            if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.linears) - 1
        for i, linear in enumerate(self.linears):
            x = linear(x)
            if i != last:
                x = x.relu()
                if self.dropout is not None:
                    x = self.dropout(x)
        return x
