"""Module/parameter containers in the spirit of ``torch.nn.Module``.

A :class:`Module` discovers its :class:`Parameter` attributes (and those of
child modules) recursively, which gives optimizers a flat parameter list and
lets training code toggle train/eval mode for dropout.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network building blocks."""

    def __init__(self):
        self._training = True

    # -- parameter discovery -------------------------------------------------

    def parameters(self) -> list[Parameter]:
        """Return all unique parameters of this module and its children."""
        found: list[Parameter] = []
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                found.append(param)
        return found

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, value in vars(self).items():
            if name.startswith("_") and name != "_training":
                continue
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- mode & gradients ----------------------------------------------------

    @property
    def training(self) -> bool:
        return self._training

    def train(self) -> "Module":
        """Put this module and children into training mode."""
        for module in self.modules():
            module._training = True
        return self

    def eval(self) -> "Module":
        """Put this module and children into evaluation mode."""
        for module in self.modules():
            module._training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # -- state dict (for saving/cloning in tests) -----------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy all parameters into a flat dict keyed by dotted names."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters from :meth:`state_dict` output (strict)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, values in state.items():
            if own[name].data.shape != values.shape:
                raise ValueError(f"shape mismatch for {name}")
            own[name].data = values.copy()

    # -- call protocol ---------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
