"""Weight initialization helpers.

All initializers take an explicit :class:`numpy.random.Generator`, keeping
model construction deterministic under a fixed seed.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    shape = shape or (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(rng: np.random.Generator, fan_in: int,
                    shape: tuple[int, ...]) -> np.ndarray:
    """He/Kaiming uniform initialization for ReLU networks."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.01) -> np.ndarray:
    """Small-variance normal initialization (used for embeddings)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases, positional attention logits)."""
    return np.zeros(shape)
