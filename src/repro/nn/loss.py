"""Loss functions: binary cross-entropy with logits (eq. 8), MAE (eq. 9), MSE."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def bce_with_logits(logits: Tensor, targets: np.ndarray,
                    pos_weight: float = 1.0) -> Tensor:
    """Numerically stable negative log-likelihood of eq. 8.

    ``targets`` is a constant 0/1 array broadcastable to ``logits``;
    ``pos_weight`` rescales the positive class (useful at the paper's 0.5%
    positive rate).  Gradient is ``(sigmoid(x) - z) / N`` (times weights).
    """
    z = np.broadcast_to(np.asarray(targets, dtype=np.float64), logits.shape)
    x = logits.data
    # loss_i = max(x,0) - x*z + log(1 + exp(-|x|))
    per_example = np.maximum(x, 0.0) - x * z + np.log1p(np.exp(-np.abs(x)))
    weights = np.where(z > 0.5, pos_weight, 1.0)
    per_example = per_example * weights
    value = per_example.mean()

    def backward(g: np.ndarray) -> None:
        if logits.requires_grad:
            sig = 0.5 * (1.0 + np.tanh(0.5 * x))
            grad = weights * (sig - z) / x.size
            logits._deposit(g * grad)

    return logits._bind((logits,), np.asarray(value), "bce_with_logits", backward)


def mae_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean absolute error (paper eq. 9, used for price forecasting)."""
    t = Tensor(np.asarray(targets, dtype=np.float64))
    return (pred - t).abs().mean()


def mse_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error (auxiliary; not used in the paper's tables)."""
    t = Tensor(np.asarray(targets, dtype=np.float64))
    diff = pred - t
    return (diff * diff).mean()
