"""A small reverse-mode automatic differentiation engine on numpy.

The paper's models (SNN, DNN, LSTM/GRU/Bi-RNNs, TCN) are normally written in
PyTorch; this sandbox has no deep-learning framework, so we build one.  A
:class:`Tensor` wraps a ``numpy.ndarray`` and records the operations applied
to it; :meth:`Tensor.backward` walks the recorded graph in reverse
topological order accumulating gradients.

Only the operations the models require are implemented, but each op supports
full numpy broadcasting and is verified against numerical gradients in
``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _grad_enabled


def stable_sigmoid(x) -> np.ndarray:
    """Numerically stable two-branch sigmoid on raw numpy values.

    ``1 / (1 + exp(-x))`` overflows (with a RuntimeWarning) for large
    negative ``x``; evaluating ``exp(-|x|)`` keeps the argument bounded and
    selects the algebraically equivalent branch per sign.  For ``x >= 0``
    the result is bit-for-bit the naive formula.
    """
    x = np.asarray(x, dtype=np.float64)
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z))


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove extra leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records gradients.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray`` of floats.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    # In-flight gradient table; non-None only while a backward pass runs.
    _pending: dict | None = None
    # Keys of _pending whose arrays are owned by the pass (safe to mutate).
    _pending_owned: set | None = None

    def __init__(self, data, requires_grad: bool = False, *, _parents: tuple = (), op: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = _parents if self.requires_grad else ()
        self.op = op

    # -- basic protocol ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag}, op={self.op!r})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # -- graph machinery -------------------------------------------------------

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"], op: str,
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=tuple(parents) if requires else (), op=op)
        if requires:
            out._backward = backward
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (appropriate for scalar losses).
        Gradients accumulate into ``.grad`` of every reachable tensor with
        ``requires_grad=True``.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        pending: dict[int, np.ndarray] = {
            id(self): np.ones_like(self.data)
            if grad is None
            else np.broadcast_to(np.asarray(grad, dtype=np.float64), self.shape).copy()
        }
        Tensor._pending = pending
        Tensor._pending_owned = {id(self)}
        try:
            for node in reversed(topo):
                node_grad = pending.pop(id(node), None)
                if node_grad is None:
                    continue
                node._accumulate(node_grad)
                if node._backward is not None:
                    node._backward(node_grad)
        finally:
            Tensor._pending = None
            Tensor._pending_owned = None

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate a gradient contribution in place.

        The first contribution is copied (the incoming array may be a view
        of another tensor's buffer); later ones add into the owned array
        without allocating.
        """
        if self.grad is None:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape == self.data.shape:
                self.grad = grad.copy()
            else:
                self.grad = np.zeros_like(self.data)
                self.grad += grad
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._deposit(_unbroadcast(g, other.shape))

        return self._bind((self, other), out_data, "add", backward)

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(-g)

        return self._bind((self,), out_data, "neg", backward)

    def __sub__(self, other) -> "Tensor":
        return self.__add__(-Tensor._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return (-self).__add__(other)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._deposit(_unbroadcast(g * self.data, other.shape))

        return self._bind((self, other), out_data, "mul", backward)

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._deposit(_unbroadcast(-g * self.data / (other.data**2), other.shape))

        return self._bind((self, other), out_data, "div", backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._lift(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(g * exponent * self.data ** (exponent - 1))

        return self._bind((self,), out_data, "pow", backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    # (..., m) @ (m,) -> (...,): outer-product gradient.
                    grad_self = np.multiply.outer(g, other.data)
                    self._deposit(_unbroadcast(np.asarray(grad_self), self.shape))
                else:
                    g_mat = g[..., None, :] if self.data.ndim == 1 else g
                    grad_self = g_mat @ np.swapaxes(other.data, -1, -2)
                    if self.data.ndim == 1:
                        grad_self = grad_self[..., 0, :]
                    self._deposit(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.multiply.outer(self.data, g)
                    other._deposit(_unbroadcast(grad_other, other.shape))
                elif other.data.ndim == 1:
                    grad_other = np.swapaxes(self.data, -1, -2) @ g[..., None]
                    other._deposit(_unbroadcast(grad_other[..., 0], other.shape))
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ g
                    other._deposit(_unbroadcast(grad_other, other.shape))

        return self._bind((self, other), out_data, "matmul", backward)

    # -- elementwise non-linearities -------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(g * out_data)

        return self._bind((self,), out_data, "exp", backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(g / self.data)

        return self._bind((self,), out_data, "log", backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(g * (1.0 - out_data**2))

        return self._bind((self,), out_data, "tanh", backward)

    def sigmoid(self) -> "Tensor":
        out_data = 0.5 * (1.0 + np.tanh(0.5 * self.data))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(g * out_data * (1.0 - out_data))

        return self._bind((self,), out_data, "sigmoid", backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(g * mask)

        return self._bind((self,), out_data, "relu", backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(g * sign)

        return self._bind((self,), out_data, "abs", backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        out_data = exps / exps.sum(axis=axis, keepdims=True)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                inner = (g * out_data).sum(axis=axis, keepdims=True)
                self._deposit(out_data * (g - inner))

        return self._bind((self,), out_data, "softmax", backward)

    # -- reductions --------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            if axis is None:
                grad = np.broadcast_to(grad, self.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                grad = np.broadcast_to(grad, self.shape)
            self._deposit(grad.astype(np.float64))

        return self._bind((self,), out_data, "sum", backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- shape manipulation -------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(g.reshape(original))

        return self._bind((self,), out_data, "reshape", backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(g.transpose(inverse))

        return self._bind((self,), out_data, "transpose", backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def flip(self, axis: int) -> "Tensor":
        out_data = np.flip(self.data, axis=axis)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._deposit(np.flip(g, axis=axis))

        return self._bind((self,), out_data, "flip", backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, key, g)
                self._deposit(grad)

        return self._bind((self,), out_data, "getitem", backward)

    # -- helpers used by op constructors -----------------------------------------

    def _bind(self, parents: Sequence["Tensor"], data: np.ndarray, op: str,
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        return self._make(np.asarray(data, dtype=np.float64), parents, op, backward)

    def _deposit(self, grad: np.ndarray) -> None:
        """Route a gradient contribution to this tensor.

        While a backward pass is running, contributions are staged in the
        pending table so a node's closure fires exactly once with the full
        upstream gradient (reverse-topological order guarantees all children
        have contributed by then).  Outside a pass — e.g. when user code calls
        a closure manually — contributions land on ``.grad`` directly.
        """
        grad = np.asarray(grad, dtype=np.float64)
        pending = Tensor._pending
        if pending is None:
            self._accumulate(grad)
            return
        key = id(self)
        staged = pending.get(key)
        if staged is None:
            pending[key] = grad
        elif key in Tensor._pending_owned:
            # The staged array was allocated by this pass: add in place.
            staged += grad
        else:
            pending[key] = staged + grad
            Tensor._pending_owned.add(key)


# -- free functions ---------------------------------------------------------------


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                tensor._deposit(g[tuple(index)])

    proto = tensors[0]
    return proto._make(out_data, tensors, "concat", backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        pieces = np.split(g, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._deposit(np.squeeze(piece, axis=axis))

    proto = tensors[0]
    return proto._make(out_data, tensors, "stack", backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by integer ``indices`` (any shape).

    The result has shape ``indices.shape + (embedding_dim,)``.  The backward
    pass scatter-adds into the weight gradient, so repeated indices
    accumulate correctly.
    """
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def backward(g: np.ndarray) -> None:
        if weight.requires_grad:
            grad = np.zeros_like(weight.data)
            np.add.at(grad, indices.reshape(-1), g.reshape(-1, weight.shape[1]))
            weight._deposit(grad)

    return weight._make(out_data, (weight,), "embedding", backward)


def where_constant(mask: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select elementwise between two tensors with a constant boolean mask."""
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, a.data, b.data)

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._deposit(_unbroadcast(np.where(mask, g, 0.0), a.shape))
        if b.requires_grad:
            b._deposit(_unbroadcast(np.where(mask, 0.0, g), b.shape))

    return a._make(out_data, (a, b), "where", backward)


def pad_time_left(x: Tensor, amount: int) -> Tensor:
    """Zero-pad a ``(batch, time, features)`` tensor on the left of axis 1.

    Used by causal convolutions; gradient simply drops the padded region.
    """
    if amount < 0:
        raise ValueError("pad amount must be non-negative")
    if amount == 0:
        return x
    batch, _, features = x.shape
    out_data = np.concatenate(
        [np.zeros((batch, amount, features)), x.data], axis=1
    )

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._deposit(g[:, amount:, :])

    return x._make(out_data, (x,), "pad", backward)
