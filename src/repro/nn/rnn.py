"""Recurrent sequence encoders: LSTM, GRU and their bidirectional variants.

These are the RNN competitors of Table 5 / Table 8.  Inputs are
``(batch, time, features)`` tensors; encoders expose both per-step outputs
and a fixed-size summary (the final hidden state, or the concatenation of
both directions' final states for bidirectional encoders).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concat, stack


class LSTMCell(Module):
    """Single LSTM step; gate order is (input, forget, cell, output)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_ih = Parameter(init.xavier_uniform(rng, input_dim, 4 * hidden_dim))
        self.w_hh = Parameter(init.xavier_uniform(rng, hidden_dim, 4 * hidden_dim))
        bias = np.zeros(4 * hidden_dim)
        # Standard trick: positive forget-gate bias stabilizes early training.
        bias[hidden_dim: 2 * hidden_dim] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        gates = x @ self.w_ih + h @ self.w_hh + self.bias
        hd = self.hidden_dim
        i = gates[:, 0 * hd: 1 * hd].sigmoid()
        f = gates[:, 1 * hd: 2 * hd].sigmoid()
        g = gates[:, 2 * hd: 3 * hd].tanh()
        o = gates[:, 3 * hd: 4 * hd].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class GRUCell(Module):
    """Single GRU step; gate order is (reset, update, candidate)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_ih = Parameter(init.xavier_uniform(rng, input_dim, 3 * hidden_dim))
        self.w_hh = Parameter(init.xavier_uniform(rng, hidden_dim, 3 * hidden_dim))
        self.bias = Parameter(init.zeros((3 * hidden_dim,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        hd = self.hidden_dim
        gi = x @ self.w_ih + self.bias
        gh = h @ self.w_hh
        r = (gi[:, 0 * hd: 1 * hd] + gh[:, 0 * hd: 1 * hd]).sigmoid()
        z = (gi[:, 1 * hd: 2 * hd] + gh[:, 1 * hd: 2 * hd]).sigmoid()
        n = (gi[:, 2 * hd: 3 * hd] + r * gh[:, 2 * hd: 3 * hd]).tanh()
        one = Tensor(np.ones_like(z.data))
        return (one - z) * n + z * h


class _Recurrent(Module):
    """Shared driver that unrolls a cell over time."""

    def __init__(self, cell: Module, hidden_dim: int):
        super().__init__()
        self.cell = cell
        self.hidden_dim = hidden_dim

    def _initial(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim)))

    def forward(self, x: Tensor, return_sequence: bool = False):
        raise NotImplementedError


class LSTM(_Recurrent):
    """Unidirectional LSTM encoder over ``(batch, time, features)``."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__(LSTMCell(input_dim, hidden_dim, rng), hidden_dim)
        self.output_dim = hidden_dim

    def forward(self, x: Tensor, return_sequence: bool = False):
        batch, time, _ = x.shape
        h = self._initial(batch)
        c = self._initial(batch)
        outputs = []
        for t in range(time):
            h, c = self.cell(x[:, t, :], h, c)
            if return_sequence:
                outputs.append(h)
        if return_sequence:
            return stack(outputs, axis=1)
        return h


class GRU(_Recurrent):
    """Unidirectional GRU encoder over ``(batch, time, features)``."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__(GRUCell(input_dim, hidden_dim, rng), hidden_dim)
        self.output_dim = hidden_dim

    def forward(self, x: Tensor, return_sequence: bool = False):
        batch, time, _ = x.shape
        h = self._initial(batch)
        outputs = []
        for t in range(time):
            h = self.cell(x[:, t, :], h)
            if return_sequence:
                outputs.append(h)
        if return_sequence:
            return stack(outputs, axis=1)
        return h


class Bidirectional(Module):
    """Wrap two directional encoders; summary is the concat of both ends."""

    def __init__(self, forward_enc: Module, backward_enc: Module):
        super().__init__()
        self.forward_enc = forward_enc
        self.backward_enc = backward_enc
        self.output_dim = forward_enc.output_dim + backward_enc.output_dim

    def forward(self, x: Tensor, return_sequence: bool = False):
        fwd = self.forward_enc(x, return_sequence=return_sequence)
        bwd = self.backward_enc(x.flip(axis=1), return_sequence=return_sequence)
        if return_sequence:
            return concat([fwd, bwd.flip(axis=1)], axis=-1)
        return concat([fwd, bwd], axis=-1)


def make_rnn(kind: str, input_dim: int, hidden_dim: int,
             rng: np.random.Generator) -> Module:
    """Factory for the paper's RNN competitors.

    ``kind`` is one of ``lstm``, ``bilstm``, ``gru``, ``bigru``.
    """
    kind = kind.lower()
    if kind == "lstm":
        return LSTM(input_dim, hidden_dim, rng)
    if kind == "gru":
        return GRU(input_dim, hidden_dim, rng)
    if kind == "bilstm":
        return Bidirectional(LSTM(input_dim, hidden_dim, rng),
                             LSTM(input_dim, hidden_dim, rng))
    if kind == "bigru":
        return Bidirectional(GRU(input_dim, hidden_dim, rng),
                             GRU(input_dim, hidden_dim, rng))
    raise ValueError(f"unknown rnn kind: {kind!r}")
