"""Model persistence: save/load module parameters as ``.npz`` archives.

The archive holds one array per dotted parameter name plus a manifest; the
loading side validates names and shapes, so version drift fails loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.module import Module

_MANIFEST_KEY = "__manifest__"


def save_module(module: Module, path: str | Path) -> None:
    """Write all parameters of ``module`` to ``path`` (npz)."""
    path = Path(path)
    state = module.state_dict()
    manifest = {
        "names": sorted(state),
        "shapes": {name: list(arr.shape) for name, arr in state.items()},
        "n_parameters": int(module.num_parameters()),
    }
    arrays = dict(state)
    arrays[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``.

    The module must already be constructed with matching architecture; name
    or shape mismatches raise with a diagnostic.
    """
    path = Path(path)
    with np.load(path) as archive:
        if _MANIFEST_KEY not in archive:
            raise ValueError(f"{path} is not a repro model archive")
        manifest = json.loads(bytes(archive[_MANIFEST_KEY]).decode("utf-8"))
        state = {name: archive[name] for name in manifest["names"]}
    module.load_state_dict(state)
    return module


def archive_summary(path: str | Path) -> dict:
    """Read the manifest of a saved model without loading parameters."""
    with np.load(Path(path)) as archive:
        if _MANIFEST_KEY not in archive:
            raise ValueError(f"{path} is not a repro model archive")
        return json.loads(bytes(archive[_MANIFEST_KEY]).decode("utf-8"))
