"""Model persistence: save/load module parameters as ``.npz`` archives.

The archive holds one array per dotted parameter name plus a manifest; the
loading side validates names and shapes, so version drift fails loudly.

.. deprecated::
    A bare-weights archive is **not servable**: it carries no fitted
    scalers, no channel vocabulary and no architecture config, so nothing
    built from it alone can score an announcement.  Standalone use of
    :func:`save_module` / :func:`load_module` is deprecated in favour of
    the full predictor bundles in :mod:`repro.registry` (``repro train
    --save`` writes one).  These functions remain as the weight-transport
    layer *inside* artifact bundles, and :func:`load_module` still reads
    legacy bare archives — with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from repro.nn.module import Module

_MANIFEST_KEY = "__manifest__"


def save_state_dict(state: dict[str, np.ndarray], path: str | Path, *,
                    container: str | None = None) -> None:
    """Write a parameter ``state_dict`` to ``path`` (npz) with a manifest.

    ``container`` marks the archive as embedded in a larger bundle (e.g. a
    :mod:`repro.registry` artifact); unmarked archives are treated as
    legacy bare weights by :func:`load_module`.
    """
    path = Path(path)
    manifest = {
        "names": sorted(state),
        "shapes": {name: list(arr.shape) for name, arr in state.items()},
        "n_parameters": int(sum(arr.size for arr in state.values())),
    }
    if container is not None:
        manifest["container"] = container
    arrays = dict(state)
    arrays[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)


def _read_archive(path: Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Shared npz reader: ``(manifest, state)`` of a saved archive."""
    with np.load(path) as archive:
        if _MANIFEST_KEY not in archive:
            raise ValueError(f"{path} is not a repro model archive")
        manifest = json.loads(bytes(archive[_MANIFEST_KEY]).decode("utf-8"))
        state = {name: archive[name] for name in manifest["names"]}
    return manifest, state


def read_state_dict(path: str | Path) -> dict[str, np.ndarray]:
    """Read back the raw parameter arrays of a saved archive.

    Low-level counterpart of :func:`load_module` that returns the state
    without needing a constructed module (the artifact layer validates it
    against a rebuilt architecture via ``Module.load_state_dict``).
    """
    return _read_archive(Path(path))[1]


def save_module(module: Module, path: str | Path, *,
                container: str | None = None) -> None:
    """Write all parameters of ``module`` to ``path`` (npz)."""
    save_state_dict(module.state_dict(), path, container=container)


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``.

    The module must already be constructed with matching architecture; name
    or shape mismatches raise with a diagnostic.  Loading a legacy bare
    archive (one written outside an artifact bundle) emits a
    :class:`DeprecationWarning` — such files cannot boot a serving stack.
    """
    path = Path(path)
    manifest, state = _read_archive(path)
    if "container" not in manifest:
        warnings.warn(
            f"{path} is a bare-weights archive: it restores parameters only "
            "and cannot be served (no scalers, vocabulary or architecture "
            "config). Save a full artifact instead — `repro train --save "
            "<dir>` or repro.registry.save_artifact().",
            DeprecationWarning,
            stacklevel=2,
        )
    module.load_state_dict(state)
    return module


def archive_summary(path: str | Path) -> dict:
    """Read the manifest of a saved model without loading parameters."""
    with np.load(Path(path)) as archive:
        if _MANIFEST_KEY not in archive:
            raise ValueError(f"{path} is not a repro model archive")
        return json.loads(bytes(archive[_MANIFEST_KEY]).decode("utf-8"))
