"""Dump ingestion — raw data → the canonical ``repro.sources`` layout.

Two entry points, both behind ``repro ingest``:

* :func:`export_synthetic_dump` replays a :class:`SyntheticWorld` into a
  canonical dump — the cheapest way to produce a real, file-backed
  dataset (and the backbone of the ``file-source-roundtrip`` CI job).
  By default only the candle hours the extracted P&D samples actually
  query are exported (``hours="needed"``), keeping dumps small; pass
  ``hours="all"`` for a full grid.
* :func:`ingest_raw` normalizes loosely-formatted recorded files
  (unsorted candles, symbol-keyed rows, missing optional tables) into the
  canonical layout, validating as it goes.

Both finish by loading the freshly written dump through
:class:`~repro.sources.filedata.FileDatasetSource`, so an ingest that
succeeds is a dump that serves.
"""

from __future__ import annotations

import csv
import gzip
import json
import math
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.markets import EXCHANGE_NAMES
from repro.sources.base import SourceDataError, as_source
from repro.sources.filedata import (
    CANDLES_NAME,
    CHANNELS_NAME,
    COINS_NAME,
    DUMP_KIND,
    DUMP_SCHEMA_VERSION,
    LISTINGS_NAME,
    MESSAGES_NAME,
    META_NAME,
    FileDatasetSource,
    parse_message_record,
    read_csv_table,
)

# Candle hours exported around every sample time: features read back to
# t-73 (the 72h window ends one hour before the pump), stable stats to
# t-72, and serving's time bucketing can shift evaluation up to one hour
# earlier — 80 hours of margin covers all of it with headroom.
NEEDED_HOURS_MARGIN = 80


def _unlink_other_variant(plain: Path, compress: bool) -> None:
    """Remove the stale plain/.gz sibling before writing the other one.

    Re-ingesting into a previous dump with a different ``compress``
    setting must not leave the old variant behind —
    :func:`~repro.sources.filedata.resolve_file` prefers the plain file,
    so a stale one would silently shadow the fresh data.
    """
    stale = plain if compress else plain.with_name(plain.name + ".gz")
    stale.unlink(missing_ok=True)


def _write_csv(path: Path, header: Sequence[str],
               rows: Iterable[Sequence], compress: bool = False) -> Path:
    _unlink_other_variant(path, compress)
    if compress:
        path = path.with_name(path.name + ".gz")
        handle = gzip.open(path, "wt", encoding="utf-8", newline="")
    else:
        handle = open(path, "w", encoding="utf-8", newline="")
    with handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def _write_jsonl(path: Path, records: Iterable[dict],
                 compress: bool = False) -> Path:
    _unlink_other_variant(path, compress)
    if compress:
        path = path.with_name(path.name + ".gz")
        handle = gzip.open(path, "wt", encoding="utf-8")
    else:
        handle = open(path, "w", encoding="utf-8")
    with handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def _write_meta(out_dir: Path, *, seed: int, sequence_length: int,
                max_negatives_per_event: int, n_exchanges: int,
                exchange_names: Sequence[str], origin: dict) -> None:
    meta = {
        "kind": DUMP_KIND,
        "schema_version": DUMP_SCHEMA_VERSION,
        "seed": int(seed),
        "sequence_length": int(sequence_length),
        "max_negatives_per_event": int(max_negatives_per_event),
        "n_exchanges": int(n_exchanges),
        "exchange_names": list(exchange_names),
        "origin": origin,
    }
    (out_dir / META_NAME).write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n"
    )


def _prepare_out_dir(out_dir: str | Path) -> Path:
    out_dir = Path(out_dir)
    if out_dir.is_file():
        raise SourceDataError(f"{out_dir} is an existing file, not a directory")
    if out_dir.is_dir() and any(out_dir.iterdir()) \
            and not (out_dir / META_NAME).is_file():
        raise SourceDataError(
            f"refusing to write into non-empty {out_dir}: it is not a "
            "previous dump — pick a fresh directory"
        )
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir


# -- synthetic export ---------------------------------------------------------


def _needed_hours(source, collection, margin: int) -> np.ndarray:
    """The candle hours the extracted samples (and serving) will query."""
    from repro.data.sessions import parse_release_symbol

    symbol_map = source.coins.symbol_to_id()
    times = {s.time for s in collection.samples}
    times |= {
        m.time for m in collection.detection.detected
        if parse_release_symbol(m.text, symbol_map) is not None
    }
    hours: set[int] = set()
    for t in times:
        base = math.floor(t)
        hours.update(range(base - margin, base + 2))
    return np.array(sorted(hours), dtype=np.int64)


def export_synthetic_dump(world, out_dir: str | Path, *, collection=None,
                          hours: str = "needed",
                          margin: int = NEEDED_HOURS_MARGIN,
                          compress: bool = False) -> FileDatasetSource:
    """Replay a synthetic world into a canonical file dump.

    ``collection`` (a :class:`~repro.data.pipeline.CollectionResult`) is
    re-run when omitted; with ``hours="needed"`` it determines which candle
    hours must be exported.  The dump replays the *entire* message stream
    and channel roster, so a model trained from the dump sees the same
    channel universe as one trained on the world directly — which is what
    lets one artifact serve on either backend.
    """
    if hours not in ("needed", "all"):
        raise ValueError("hours must be 'needed' or 'all'")
    source = as_source(world)
    out_dir = _prepare_out_dir(out_dir)
    if collection is None:
        from repro.data.pipeline import collect

        collection = collect(source)

    coins = source.coins
    market = source.market
    config = source.repro_config()

    # Coins that can ever appear in a feature row: listed anywhere, or
    # pumped in an extracted sample (histories encode them at pump time).
    listed_any = np.flatnonzero((coins.listing_hour >= 0).any(axis=0))
    coin_set = sorted(set(listed_any.tolist())
                      | {s.coin_id for s in collection.samples})
    coin_ids = np.array(coin_set, dtype=np.int64)

    if hours == "needed":
        hour_grid = _needed_hours(source, collection, margin)
    else:
        horizon = getattr(config, "horizon_hours", 0)
        hour_grid = np.arange(-margin, int(horizon) + 1, dtype=np.int64)

    # coins.csv — every coin, so the catalog is complete even where no
    # candles were exported (stable stats are independent of the grid).
    trade_size = market.typical_trade_size(np.arange(coins.n_coins))
    _write_csv(
        out_dir / COINS_NAME,
        ("coin_id", "symbol", "market_cap", "alexa_rank",
         "reddit_subscribers", "twitter_followers", "typical_trade_size"),
        (
            (c, coins.symbols[c], repr(float(coins.market_cap[c])),
             repr(float(coins.alexa_rank[c])),
             repr(float(coins.reddit_subscribers[c])),
             repr(float(coins.twitter_followers[c])),
             repr(float(trade_size[c])))
            for c in range(coins.n_coins)
        ),
    )

    # candles.csv — one batched market query per quantity.
    log_close = market.log_close(coin_ids[:, None],
                                 hour_grid[None, :].astype(float))
    volume = market.hourly_volume(coin_ids[:, None],
                                  hour_grid[None, :].astype(float))
    closes = np.exp(log_close)

    def candle_rows():
        for i, c in enumerate(coin_ids):
            symbol = coins.symbols[int(c)]
            for j, h in enumerate(hour_grid):
                yield (symbol, int(h), repr(float(closes[i, j])),
                       repr(float(volume[i, j])))

    _write_csv(out_dir / CANDLES_NAME, ("symbol", "hour", "close", "volume"),
               candle_rows(), compress=compress)

    # listings.csv — the full matrix, restricted to exported exchanges.
    def listing_rows():
        for e in range(source.n_exchanges):
            for c in np.flatnonzero(coins.listing_hour[e] >= 0):
                yield (e, coins.symbols[int(c)],
                       repr(float(coins.listing_hour[e, int(c)])))

    _write_csv(out_dir / LISTINGS_NAME, LISTING_HEADER, listing_rows())

    # channels.csv — the whole roster with liveness + seed flags.
    directory = source.channels
    seeds = set(directory.seed_channel_ids())
    dead = directory.dead_channel_ids()
    subscribers = directory.subscriber_counts()
    _write_csv(
        out_dir / CHANNELS_NAME,
        ("channel_id", "subscribers", "kind", "is_seed", "is_dead"),
        (
            (cid, subscribers.get(cid, 0),
             "pump" if cid in subscribers else "noise",
             int(cid in seeds), int(cid in dead))
            for cid in directory.all_channel_ids()
        ),
    )

    # messages.jsonl — canonical (time, channel_id, message_id) order.
    ordered = sorted(source.messages(),
                     key=lambda m: (m.time, m.channel_id, m.message_id))
    _write_jsonl(
        out_dir / MESSAGES_NAME,
        (
            {"message_id": m.message_id, "channel_id": m.channel_id,
             "time": m.time, "text": m.text, "kind": m.kind}
            for m in ordered
        ),
        compress=compress,
    )

    _write_meta(
        out_dir,
        seed=source.seed,
        sequence_length=source.sequence_length,
        max_negatives_per_event=source.max_negatives_per_event,
        n_exchanges=source.n_exchanges,
        exchange_names=source.exchange_names,
        origin=source.descriptor(),
    )
    # Self-check: an ingest that succeeds is a dump that loads.
    return FileDatasetSource(out_dir)


LISTING_HEADER = ("exchange_id", "symbol", "listed_from_hour")


# -- raw-file ingestion -------------------------------------------------------


def ingest_raw(out_dir: str | Path, *, messages: str | Path,
               candles: str | Path, coins: str | Path,
               channels: str | Path | None = None,
               listings: str | Path | None = None,
               seed: int = 0, sequence_length: int = 20,
               max_negatives_per_event: int = 80,
               exchange_names: Sequence[str] | None = None,
               compress: bool = False) -> FileDatasetSource:
    """Normalize raw recorded files into a canonical dump.

    Raw inputs may be unsorted and symbol-keyed; this pass sorts candles by
    ``(symbol, hour)``, messages by ``(time, channel_id, message_id)``,
    assigns contiguous coin ids in the coins file's row order, and fills
    the optional tables with documented defaults (every message channel
    becomes a live seed pump channel; every coin is listed on exchange 0
    from the first recorded candle hour).
    """
    out_dir = _prepare_out_dir(out_dir)

    # Coins: contiguous ids in input order.
    coin_rows = read_csv_table(
        Path(coins),
        ("symbol", "market_cap", "alexa_rank", "reddit_subscribers",
         "twitter_followers"),
    )
    if not coin_rows:
        raise SourceDataError(f"{coins} holds no coins")
    symbols: list[str] = []
    seen: set[str] = set()
    for row in coin_rows:
        symbol = (row["symbol"] or "").strip()
        if not symbol or symbol in seen:
            raise SourceDataError(
                f"{coins}: empty or duplicate symbol {symbol!r}"
            )
        seen.add(symbol)
        symbols.append(symbol)
    has_trade_size = "typical_trade_size" in coin_rows[0]
    header = list(COIN_HEADER) + (
        ["typical_trade_size"] if has_trade_size else []
    )
    _write_csv(
        out_dir / COINS_NAME, header,
        (
            [i, symbols[i], row["market_cap"], row["alexa_rank"],
             row["reddit_subscribers"], row["twitter_followers"]]
            + ([row["typical_trade_size"]] if has_trade_size else [])
            for i, row in enumerate(coin_rows)
        ),
    )

    # Candles: validate symbols, sort, reject duplicates.
    candle_rows = read_csv_table(Path(candles), ("symbol", "hour", "close",
                                                "volume"))
    known = set(symbols)
    parsed = []
    for row in candle_rows:
        symbol = (row["symbol"] or "").strip()
        if symbol not in known:
            raise SourceDataError(
                f"{candles}: unknown coin symbol {symbol!r} (not in {coins})"
            )
        try:
            hour = int(float(row["hour"]))
        except (TypeError, ValueError) as exc:
            raise SourceDataError(
                f"{candles}: non-integer hour {row['hour']!r}"
            ) from exc
        parsed.append((symbol, hour, row["close"], row["volume"]))
    parsed.sort(key=lambda r: (r[0], r[1]))
    for previous, current in zip(parsed, parsed[1:]):
        if previous[:2] == current[:2]:
            raise SourceDataError(
                f"{candles}: duplicate candle for {current[0]!r} at hour "
                f"{current[1]}"
            )
    min_hour = min((r[1] for r in parsed), default=0)
    _write_csv(out_dir / CANDLES_NAME, ("symbol", "hour", "close", "volume"),
               parsed, compress=compress)

    # Messages: sort canonically, default kinds.
    records = []
    messages_path = Path(messages)
    if not messages_path.is_file():
        raise SourceDataError(f"raw input {messages_path} does not exist")
    with open(messages_path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = parse_message_record(messages_path, line_no, line)
            kind = record.get("kind")
            if kind is None:
                kind = "announcement" if record.get("is_pump") else "generic"
            records.append({
                "message_id": int(record.get("message_id", line_no)),
                "channel_id": int(record["channel_id"]),
                "time": float(record["time"]),
                "text": str(record["text"]),
                "kind": kind,
            })
    records.sort(key=lambda r: (r["time"], r["channel_id"], r["message_id"]))
    _write_jsonl(out_dir / MESSAGES_NAME, records, compress=compress)

    # Channels: given file, or derived from the message stream.
    if channels is not None:
        channel_rows = read_csv_table(Path(channels), ("channel_id",))
        rows = []
        for row in channel_rows:
            try:
                rows.append((
                    int(float(row["channel_id"])),
                    int(float(row.get("subscribers") or 1000)),
                    (row.get("kind") or "pump").strip() or "pump",
                    int(float(row.get("is_seed") or 1)),
                    int(float(row.get("is_dead") or 0)),
                ))
            except (TypeError, ValueError) as exc:
                raise SourceDataError(
                    f"{channels}: malformed channel row {row!r} ({exc})"
                ) from exc
    else:
        rows = [(cid, 1000, "pump", 1, 0)
                for cid in sorted({r["channel_id"] for r in records})]
    _write_csv(out_dir / CHANNELS_NAME,
               ("channel_id", "subscribers", "kind", "is_seed", "is_dead"),
               rows)

    # Listings: given file (exchange by id or name), or everything on
    # exchange 0 from the first recorded hour.
    names = list(exchange_names or EXCHANGE_NAMES)
    if listings is not None:
        listing_rows = read_csv_table(
            Path(listings), ("exchange", "symbol", "listed_from_hour")
        )
        resolved = []
        name_to_id = {n.lower(): i for i, n in enumerate(names)}
        max_exchange = 0
        for row in listing_rows:
            raw_exchange = (row["exchange"] or "").strip()
            try:
                exchange_id = int(raw_exchange)
            except ValueError:
                exchange_id = name_to_id.get(raw_exchange.lower(), -1)
                if exchange_id < 0:
                    raise SourceDataError(
                        f"{listings}: unknown exchange {raw_exchange!r}"
                    ) from None
            symbol = (row["symbol"] or "").strip()
            if symbol not in known:
                raise SourceDataError(
                    f"{listings}: unknown coin symbol {symbol!r}"
                )
            max_exchange = max(max_exchange, exchange_id)
            resolved.append((exchange_id, symbol, row["listed_from_hour"]))
        n_exchanges = max_exchange + 1
        _write_csv(out_dir / LISTINGS_NAME, LISTING_HEADER, resolved)
    else:
        n_exchanges = 1
        _write_csv(out_dir / LISTINGS_NAME, LISTING_HEADER,
                   ((0, s, min_hour) for s in symbols))

    # One name per listing-matrix row, no more: a name beyond the matrix
    # would let the serving sessionizer emit an exchange id that crashes
    # candidate lookup instead of cleanly skipping.
    if n_exchanges > len(names):
        names += [f"exchange-{i}" for i in range(len(names), n_exchanges)]
    _write_meta(
        out_dir,
        seed=seed,
        sequence_length=sequence_length,
        max_negatives_per_event=max_negatives_per_event,
        n_exchanges=n_exchanges,
        exchange_names=names[:n_exchanges],
        origin={"backend": "raw-ingest", "messages": str(messages),
                "candles": str(candles)},
    )
    return FileDatasetSource(out_dir)


COIN_HEADER = ("coin_id", "symbol", "market_cap", "alexa_rank",
               "reddit_subscribers", "twitter_followers")
