"""FileDatasetSource — recorded CSV/JSONL dumps as a data backend.

Loads the canonical dump layout (produced by ``repro ingest``, see
:mod:`repro.sources.ingest`)::

    <dump>/
        meta.json          # schema marker + dataset-construction knobs
        coins.csv          # coin_id,symbol,market_cap,alexa_rank,
                           #   reddit_subscribers,twitter_followers
                           #   [,typical_trade_size]
        candles.csv[.gz]   # symbol,hour,close,volume  (hourly, sorted)
        listings.csv       # exchange_id,symbol,listed_from_hour
        channels.csv       # channel_id,subscribers,kind,is_seed,is_dead
        messages.jsonl[.gz]# {"message_id","channel_id","time","text","kind"}

Every structural problem — a missing column, unsorted timestamps, an
unknown coin symbol, a candle query outside the recorded grid — raises
:class:`~repro.sources.base.SourceDataError` with a pointed diagnostic.
The loader never guesses: wrong features are strictly worse than no
features.

Market semantics: prices and volumes are hourly candles, so a query at a
fractional hour ``t`` answers with the candle of ``floor(t)`` (the hour
bar containing ``t``).  The synthetic backend interpolates inside the
hour; recorded data cannot, and the difference is part of the backend
contract, not a bug.
"""

from __future__ import annotations

import csv
import gzip
import hashlib
import io
import json
import warnings
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.sources.base import DataSource, SourceDataError
from repro.types import ALL_KINDS, Message

META_NAME = "meta.json"
COINS_NAME = "coins.csv"
CANDLES_NAME = "candles.csv"
LISTINGS_NAME = "listings.csv"
CHANNELS_NAME = "channels.csv"
MESSAGES_NAME = "messages.jsonl"

DUMP_KIND = "repro/source-dump"
DUMP_SCHEMA_VERSION = 1

COIN_COLUMNS = ("coin_id", "symbol", "market_cap", "alexa_rank",
                "reddit_subscribers", "twitter_followers")
CANDLE_COLUMNS = ("symbol", "hour", "close", "volume")
LISTING_COLUMNS = ("exchange_id", "symbol", "listed_from_hour")
CHANNEL_COLUMNS = ("channel_id", "subscribers", "kind", "is_seed", "is_dead")

# Per-coin typical trade size fallback divisor (mirrors the simulator's
# trade-count proxy: typical trade ≈ mean hourly volume / 180).
_TRADE_SIZE_DIVISOR = 180.0


def resolve_file(root: Path, name: str) -> Path:
    """Resolve a dump file, allowing a transparent ``.gz`` variant."""
    plain = root / name
    if plain.is_file():
        return plain
    gz = root / (name + ".gz")
    if gz.is_file():
        return gz
    raise SourceDataError(
        f"dump {root} is missing {name} (or {name}.gz)"
    )


def _open_text(path: Path):
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _count_rows(path: Path, n: int) -> None:
    """Record ``n`` ingested rows under the file's table name.

    The label is the canonical table stem (``coins``, ``candles``, ...)
    so plain and ``.gz`` variants land in the same series.
    """
    from repro.telemetry import default_registry

    table = path.name[:-3] if path.name.endswith(".gz") else path.name
    table = table.rsplit(".", 1)[0]
    default_registry().counter(
        "source_rows_total", "Rows read from source dump tables.", ("table",),
    ).labels(table=table).inc(n)


def read_csv_table(path: Path, required: Sequence[str]) -> list[dict]:
    """Read a CSV into dict rows, checking the required header columns.

    Shared by the canonical loaders and raw ingestion so the column
    diagnostics stay in one place.
    """
    path = Path(path)
    if not path.is_file():
        raise SourceDataError(f"input {path} does not exist")
    with _open_text(path) as handle:
        reader = csv.DictReader(handle)
        header = reader.fieldnames or []
        missing = [c for c in required if c not in header]
        if missing:
            raise SourceDataError(
                f"{path} is missing required column(s) {missing}; "
                f"found {list(header)}"
            )
        rows = list(reader)
    _count_rows(path, len(rows))
    return rows


_read_csv = read_csv_table


def parse_message_record(path: Path, line_no: int, line: str) -> dict:
    """Decode one ``messages.jsonl`` line and check its required fields.

    Shared by the canonical loader and raw ingestion; kind handling
    (defaulting, ``is_pump`` mapping) stays with each caller.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SourceDataError(
            f"{path} line {line_no}: invalid JSON ({exc})"
        ) from exc
    missing = [k for k in ("channel_id", "time", "text") if k not in record]
    if missing:
        raise SourceDataError(
            f"{path} line {line_no}: missing field(s) {missing}"
        )
    # Coerce the numeric fields here so both loaders surface bad values as
    # SourceDataError diagnostics, never bare ValueError tracebacks.
    try:
        record["channel_id"] = int(record["channel_id"])
        record["time"] = float(record["time"])
        if "message_id" in record:
            record["message_id"] = int(record["message_id"])
    except (TypeError, ValueError) as exc:
        raise SourceDataError(
            f"{path} line {line_no}: channel_id/time/message_id must be "
            f"numeric ({exc})"
        ) from exc
    return record


def _parse_float(path: Path, row_no: int, column: str, raw: str) -> float:
    try:
        return float(raw)
    except (TypeError, ValueError) as exc:
        raise SourceDataError(
            f"{path} row {row_no}: column {column!r} is not a number "
            f"({raw!r})"
        ) from exc


def _parse_int(path: Path, row_no: int, column: str, raw: str) -> int:
    try:
        return int(float(raw))
    except (TypeError, ValueError) as exc:
        raise SourceDataError(
            f"{path} row {row_no}: column {column!r} is not an integer "
            f"({raw!r})"
        ) from exc


class FileCoinCatalog:
    """Coin identity + stable statistics backed by ``coins.csv``."""

    def __init__(self, path: Path, n_exchanges: int):
        rows = _read_csv(path, COIN_COLUMNS)
        if not rows:
            raise SourceDataError(f"{path} holds no coins")
        n = len(rows)
        self.symbols: list[str] = [""] * n
        self.market_cap = np.zeros(n)
        self.alexa_rank = np.zeros(n)
        self.reddit_subscribers = np.zeros(n)
        self.twitter_followers = np.zeros(n)
        self.typical_trade_size: np.ndarray | None = None
        has_trade_size = "typical_trade_size" in rows[0]
        trade_size = np.zeros(n) if has_trade_size else None
        seen_ids: set[int] = set()
        seen_symbols: set[str] = set()
        for row_no, row in enumerate(rows, start=2):
            coin_id = _parse_int(path, row_no, "coin_id", row["coin_id"])
            if coin_id in seen_ids:
                raise SourceDataError(
                    f"{path} row {row_no}: duplicate coin_id {coin_id}"
                )
            if not 0 <= coin_id < n:
                raise SourceDataError(
                    f"{path} row {row_no}: coin_id {coin_id} out of range; "
                    f"ids must be contiguous 0..{n - 1} "
                    "(run `repro ingest` to canonicalize a raw dump)"
                )
            symbol = (row["symbol"] or "").strip()
            if not symbol:
                raise SourceDataError(f"{path} row {row_no}: empty symbol")
            if symbol in seen_symbols:
                raise SourceDataError(
                    f"{path} row {row_no}: duplicate symbol {symbol!r}"
                )
            seen_ids.add(coin_id)
            seen_symbols.add(symbol)
            self.symbols[coin_id] = symbol
            cap = _parse_float(path, row_no, "market_cap", row["market_cap"])
            alexa = _parse_float(path, row_no, "alexa_rank", row["alexa_rank"])
            if cap <= 0 or alexa <= 0:
                raise SourceDataError(
                    f"{path} row {row_no}: market_cap and alexa_rank must be "
                    f"positive (features take their logs); got {cap}, {alexa}"
                )
            self.market_cap[coin_id] = cap
            self.alexa_rank[coin_id] = alexa
            self.reddit_subscribers[coin_id] = _parse_float(
                path, row_no, "reddit_subscribers", row["reddit_subscribers"]
            )
            self.twitter_followers[coin_id] = _parse_float(
                path, row_no, "twitter_followers", row["twitter_followers"]
            )
            if trade_size is not None:
                trade_size[coin_id] = _parse_float(
                    path, row_no, "typical_trade_size",
                    row["typical_trade_size"]
                )
        if trade_size is not None:
            self.typical_trade_size = trade_size
        # Listing matrix filled by the source after listings.csv is read.
        self.listing_hour = np.full((n_exchanges, n), -1.0)

    @property
    def n_coins(self) -> int:
        return len(self.symbols)

    def listed_coins(self, exchange_id: int, hour: float) -> np.ndarray:
        hours = self.listing_hour[exchange_id]
        return np.flatnonzero((hours >= 0) & (hours <= hour))

    def is_listed(self, coin_id: int, exchange_id: int, hour: float) -> bool:
        listed_at = self.listing_hour[exchange_id, coin_id]
        return bool(listed_at >= 0 and listed_at <= hour)

    def symbol_to_id(self) -> dict[str, int]:
        return {s: i for i, s in enumerate(self.symbols)}


class FileMarketData:
    """Hourly candle grid satisfying the :class:`MarketDataSource` protocol.

    Internally a ``(n_coins, n_recorded_hours)`` dense grid over the sorted
    union of recorded hours, with NaN marking (coin, hour) cells the dump
    does not cover — a query touching such a cell raises
    :class:`SourceDataError` instead of fabricating a price.
    """

    def __init__(self, universe: FileCoinCatalog, path: Path):
        self.universe = universe
        self._path = path
        rows = _read_csv(path, CANDLE_COLUMNS)
        if not rows:
            raise SourceDataError(f"{path} holds no candles")
        symbol_map = universe.symbol_to_id()
        n_rows = len(rows)
        coin_ids = np.empty(n_rows, dtype=np.int64)
        hours = np.empty(n_rows, dtype=np.int64)
        closes = np.empty(n_rows)
        volumes = np.empty(n_rows)
        last_seen: dict[int, int] = {}
        for i, row in enumerate(rows):
            row_no = i + 2
            symbol = (row["symbol"] or "").strip()
            coin_id = symbol_map.get(symbol)
            if coin_id is None:
                raise SourceDataError(
                    f"{path} row {row_no}: unknown coin symbol {symbol!r} "
                    f"(not in {COINS_NAME})"
                )
            hour = _parse_int(path, row_no, "hour", row["hour"])
            prev = last_seen.get(coin_id)
            if prev is not None and hour <= prev:
                raise SourceDataError(
                    f"{path} row {row_no}: candles for {symbol!r} are not "
                    f"sorted by hour (hour {hour} after {prev}); run "
                    "`repro ingest` to canonicalize a raw dump"
                )
            last_seen[coin_id] = hour
            close = _parse_float(path, row_no, "close", row["close"])
            if close <= 0:
                raise SourceDataError(
                    f"{path} row {row_no}: close must be positive, got {close}"
                )
            volume = _parse_float(path, row_no, "volume", row["volume"])
            if volume < 0:
                raise SourceDataError(
                    f"{path} row {row_no}: volume must be non-negative, "
                    f"got {volume}"
                )
            coin_ids[i] = coin_id
            hours[i] = hour
            closes[i] = close
            volumes[i] = volume
        self._hours = np.unique(hours)
        n_coins = universe.n_coins
        columns = np.searchsorted(self._hours, hours)
        self._log_close = np.full((n_coins, len(self._hours)), np.nan)
        self._volume = np.full((n_coins, len(self._hours)), np.nan)
        self._log_close[coin_ids, columns] = np.log(closes)
        self._volume[coin_ids, columns] = volumes
        if universe.typical_trade_size is not None:
            self._trade_size = universe.typical_trade_size.astype(float)
        else:
            # Derive per-coin typical trade sizes from the recorded volumes
            # (coins without candles fall back to the global mean).
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                mean_volume = np.nanmean(self._volume, axis=1)
                overall = np.nanmean(mean_volume)
            if np.isnan(overall):
                overall = 1.0
            mean_volume = np.where(np.isnan(mean_volume), overall, mean_volume)
            self._trade_size = mean_volume / _TRADE_SIZE_DIVISOR

    # -- grid lookup ----------------------------------------------------------

    @property
    def hour_range(self) -> tuple[int, int]:
        """(first, last) recorded hour."""
        return int(self._hours[0]), int(self._hours[-1])

    def _lookup(self, grid: np.ndarray, coin_ids, hours,
                what: str) -> np.ndarray:
        coin_ids = np.asarray(coin_ids, dtype=np.int64)
        hours = np.asarray(hours, dtype=float)
        coin_ids, hours = np.broadcast_arrays(coin_ids, hours)
        flat_coins = coin_ids.reshape(-1)
        if flat_coins.size and (
            flat_coins.min() < 0 or flat_coins.max() >= self.universe.n_coins
        ):
            raise SourceDataError(
                f"candle query references coin ids outside the catalog "
                f"(0..{self.universe.n_coins - 1})"
            )
        hour_idx = np.floor(hours).astype(np.int64).reshape(-1)
        columns = np.searchsorted(self._hours, hour_idx)
        in_range = columns < len(self._hours)
        matched = np.zeros(len(hour_idx), dtype=bool)
        matched[in_range] = self._hours[columns[in_range]] == hour_idx[in_range]
        values = np.full(len(hour_idx), np.nan)
        values[matched] = grid[flat_coins[matched], columns[matched]]
        bad = np.flatnonzero(~matched | np.isnan(values))
        if len(bad):
            examples = ", ".join(
                f"({self.universe.symbols[flat_coins[i]]}, hour {hour_idx[i]})"
                for i in bad[:4]
            )
            lo, hi = self.hour_range
            raise SourceDataError(
                f"{self._path}: no {what} candle recorded for {len(bad)} "
                f"queried (coin, hour) cell(s), e.g. {examples}; the dump "
                f"covers hours [{lo}, {hi}] with gaps — re-ingest with wider "
                "coverage instead of serving wrong features"
            )
        return values.reshape(coin_ids.shape)

    def require_window(self, coin_ids: np.ndarray, window_hours: np.ndarray,
                       context: str) -> None:
        """Assert every (coin, hour) cell of a window is recorded.

        Raises :class:`SourceDataError` naming the uncovered window —
        the up-front form of the per-query diagnostic in :meth:`_lookup`,
        used to reject dumps that cannot support signal lookbacks before
        any score is computed.
        """
        coin_ids = np.asarray(coin_ids, dtype=np.int64)
        window_hours = np.asarray(window_hours, dtype=np.int64)
        lo, hi = int(window_hours[0]), int(window_hours[-1])
        columns = np.searchsorted(self._hours, window_hours)
        in_range = columns < len(self._hours)
        matched = np.zeros(len(window_hours), dtype=bool)
        matched[in_range] = \
            self._hours[columns[in_range]] == window_hours[in_range]
        if not matched.all():
            missing = window_hours[~matched]
            rec_lo, rec_hi = self.hour_range
            raise SourceDataError(
                f"{self._path}: {context} window [{lo}, {hi}] is not "
                f"covered: {len(missing)} hour(s) unrecorded (first: hour "
                f"{int(missing[0])}); the dump covers hours "
                f"[{rec_lo}, {rec_hi}] — re-ingest with wider coverage"
            )
        cells = self._log_close[np.ix_(coin_ids, columns)]
        gaps = np.isnan(cells) | np.isnan(self._volume[np.ix_(coin_ids,
                                                              columns)])
        if gaps.any():
            row, col = np.nonzero(gaps)
            examples = ", ".join(
                f"({self.universe.symbols[coin_ids[r]]}, hour "
                f"{int(window_hours[c])})"
                for r, c in list(zip(row, col))[:4]
            )
            raise SourceDataError(
                f"{self._path}: {context} window [{lo}, {hi}] has "
                f"{int(gaps.sum())} uncovered (coin, hour) cell(s), e.g. "
                f"{examples} — re-ingest with wider coverage"
            )

    # -- MarketDataSource protocol -------------------------------------------

    def log_close(self, coin_ids, hours) -> np.ndarray:
        return self._lookup(self._log_close, coin_ids, hours, "close")

    def close_price(self, coin_ids, hours) -> np.ndarray:
        return np.exp(self.log_close(coin_ids, hours))

    def hourly_volume(self, coin_ids, hours) -> np.ndarray:
        return self._lookup(self._volume, coin_ids, hours, "volume")

    def window_volume_profile(self, coin_ids, pump_hour: float,
                              max_hours: int) -> np.ndarray:
        coin_ids = np.asarray(coin_ids, dtype=np.int64)
        offsets = np.arange(1, max_hours + 1, dtype=float)
        grid_hours = pump_hour - offsets
        return self.hourly_volume(
            coin_ids[:, None],
            np.broadcast_to(grid_hours, (len(coin_ids), max_hours)),
        )

    def typical_trade_size(self, coin_ids) -> np.ndarray:
        return self._trade_size[np.asarray(coin_ids, dtype=np.int64)]

    def trade_count_from_volume(self, volume: np.ndarray,
                                coin_ids) -> np.ndarray:
        return volume / np.maximum(self.typical_trade_size(coin_ids), 1e-12)


class FileChannelDirectory:
    """Channel roster backed by ``channels.csv``."""

    def __init__(self, path: Path):
        rows = _read_csv(path, CHANNEL_COLUMNS)
        self._all: list[int] = []
        self._seeds: list[int] = []
        self._dead: set[int] = set()
        self._subscribers: dict[int, int] = {}
        seen: set[int] = set()
        for row_no, row in enumerate(rows, start=2):
            channel_id = _parse_int(path, row_no, "channel_id",
                                    row["channel_id"])
            if channel_id in seen:
                raise SourceDataError(
                    f"{path} row {row_no}: duplicate channel_id {channel_id}"
                )
            seen.add(channel_id)
            self._all.append(channel_id)
            if _parse_int(path, row_no, "is_seed", row["is_seed"]):
                self._seeds.append(channel_id)
            if _parse_int(path, row_no, "is_dead", row["is_dead"]):
                self._dead.add(channel_id)
            kind = (row["kind"] or "").strip() or "pump"
            if kind == "pump":
                self._subscribers[channel_id] = _parse_int(
                    path, row_no, "subscribers", row["subscribers"]
                )

    def all_channel_ids(self) -> list[int]:
        return list(self._all)

    def seed_channel_ids(self) -> list[int]:
        return list(self._seeds)

    def dead_channel_ids(self) -> set[int]:
        return set(self._dead)

    def subscriber_counts(self) -> dict[int, int]:
        return dict(self._subscribers)


def _load_messages(path: Path) -> list[Message]:
    messages: list[Message] = []
    last_time: float | None = None
    with _open_text(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = parse_message_record(path, line_no, line)
            time = record["time"]
            if last_time is not None and time < last_time:
                raise SourceDataError(
                    f"{path} line {line_no}: messages are not sorted by "
                    f"time ({time} after {last_time}); run `repro ingest` "
                    "to canonicalize a raw dump"
                )
            last_time = time
            kind = record.get("kind", "generic")
            if kind not in ALL_KINDS:
                raise SourceDataError(
                    f"{path} line {line_no}: unknown message kind {kind!r} "
                    f"(expected one of {sorted(ALL_KINDS)})"
                )
            messages.append(Message(
                message_id=int(record.get("message_id", line_no)),
                channel_id=int(record["channel_id"]),
                time=time,
                text=str(record["text"]),
                kind=kind,
            ))
    _count_rows(path, len(messages))
    return messages


class FileDatasetSource(DataSource):
    """A complete data backend over a recorded dump directory."""

    kind = "file"

    def __init__(self, path: str | Path):
        self.path = Path(path)
        if not self.path.is_dir():
            raise SourceDataError(
                f"{self.path} is not a dump directory; produce one with "
                "`repro ingest`"
            )
        meta = self._read_meta()
        try:
            self.seed = int(meta["seed"])
            self.sequence_length = int(meta["sequence_length"])
            self.max_negatives_per_event = int(meta["max_negatives_per_event"])
            self.n_exchanges = int(meta["n_exchanges"])
        except (TypeError, ValueError) as exc:
            raise SourceDataError(
                f"{self.path / META_NAME}: numeric field is malformed ({exc})"
            ) from exc
        self.exchange_names = list(meta["exchange_names"])
        if len(self.exchange_names) < self.n_exchanges:
            raise SourceDataError(
                f"{self.path / META_NAME}: exchange_names lists "
                f"{len(self.exchange_names)} names but n_exchanges="
                f"{self.n_exchanges}"
            )
        # Never advertise names beyond the listing matrix: the serving
        # sessionizer maps names to exchange ids, and an id with no
        # listings row would crash candidate lookup instead of skipping.
        self.exchange_names = self.exchange_names[: self.n_exchanges]
        self.meta = meta
        self.coins = FileCoinCatalog(
            resolve_file(self.path, COINS_NAME), self.n_exchanges
        )
        self._load_listings()
        self.market = FileMarketData(
            self.coins, resolve_file(self.path, CANDLES_NAME)
        )
        self.channels = FileChannelDirectory(
            resolve_file(self.path, CHANNELS_NAME)
        )
        self._messages = _load_messages(
            resolve_file(self.path, MESSAGES_NAME)
        )
        self._fingerprint: str | None = None

    def _read_meta(self) -> dict:
        meta_path = self.path / META_NAME
        if not meta_path.is_file():
            raise SourceDataError(
                f"{self.path} is missing {META_NAME}; not a repro dump"
            )
        try:
            meta = json.loads(meta_path.read_text())
        except json.JSONDecodeError as exc:
            raise SourceDataError(
                f"{meta_path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(meta, dict) or meta.get("kind") != DUMP_KIND:
            raise SourceDataError(
                f"{meta_path} is not a {DUMP_KIND} manifest"
            )
        if meta.get("schema_version") != DUMP_SCHEMA_VERSION:
            raise SourceDataError(
                f"{meta_path}: dump schema v{meta.get('schema_version')} is "
                f"not loadable (supports v{DUMP_SCHEMA_VERSION}); re-run "
                "`repro ingest`"
            )
        missing = [k for k in ("seed", "sequence_length",
                               "max_negatives_per_event", "n_exchanges",
                               "exchange_names") if k not in meta]
        if missing:
            raise SourceDataError(
                f"{meta_path} is missing field(s) {missing}"
            )
        return meta

    def _load_listings(self) -> None:
        path = resolve_file(self.path, LISTINGS_NAME)
        rows = _read_csv(path, LISTING_COLUMNS)
        symbol_map = self.coins.symbol_to_id()
        for row_no, row in enumerate(rows, start=2):
            exchange_id = _parse_int(path, row_no, "exchange_id",
                                     row["exchange_id"])
            if not 0 <= exchange_id < self.n_exchanges:
                raise SourceDataError(
                    f"{path} row {row_no}: exchange_id {exchange_id} out of "
                    f"range 0..{self.n_exchanges - 1}"
                )
            symbol = (row["symbol"] or "").strip()
            coin_id = symbol_map.get(symbol)
            if coin_id is None:
                raise SourceDataError(
                    f"{path} row {row_no}: unknown coin symbol {symbol!r} "
                    f"(not in {COINS_NAME})"
                )
            self.coins.listing_hour[exchange_id, coin_id] = _parse_float(
                path, row_no, "listed_from_hour", row["listed_from_hour"]
            )

    # -- DataSource interface -------------------------------------------------

    def messages(self) -> Sequence[Message]:
        return self._messages

    def validate_signal_coverage(self, times: Sequence[float] | None = None,
                                 lookback_hours: int | None = None) -> int:
        """Check candle coverage for every signal lookback window up front.

        Signals are only ever evaluated at announcement times — the
        detected release messages with a parseable symbol (the same set
        ``repro ingest`` budgets candle coverage for).  For each such
        time the ``lookback_hours`` integer hours ending at
        ``floor(t) - 1`` must be recorded for every listed tradable
        coin.  Raises :class:`SourceDataError` naming the first
        uncovered window, so a dump with holes fails at
        :class:`~repro.signals.SignalEngine` construction instead of
        producing NaN scores mid-serve.

        Returns the number of distinct anchor windows checked.
        """
        from repro.markets import PAIR_SYMBOLS

        if lookback_hours is None:
            from repro.signals.base import SIGNAL_LOOKBACK_HOURS

            lookback_hours = SIGNAL_LOOKBACK_HOURS
        if times is None:
            # Mirror ingest's coverage budget (`_needed_hours`): re-run the
            # §3 pipeline and take sample times plus detected release
            # messages with a resolvable symbol.
            from repro.data.pipeline import collect
            from repro.data.sessions import parse_release_symbol

            collection = collect(self)
            symbol_map = self.coins.symbol_to_id()
            needed = {s.time for s in collection.samples}
            needed |= {
                m.time for m in collection.detection.detected
                if parse_release_symbol(m.text, symbol_map) is not None
            }
            times = sorted(needed)
        listing = self.coins.listing_hour
        checked: set[int] = set()
        for time in sorted({float(t) for t in times}):
            anchor = int(np.floor(time)) - 1
            if anchor in checked:
                continue
            checked.add(anchor)
            window = np.arange(anchor - lookback_hours + 1, anchor + 1,
                               dtype=np.int64)
            listed = np.flatnonzero(
                ((listing >= 0) & (listing <= time)).any(axis=0)
            )
            listed = listed[listed >= len(PAIR_SYMBOLS)]
            if len(listed) == 0:
                continue
            self.market.require_window(
                listed, window,
                f"signal lookback (announcement at t={time:.2f})",
            )
        return len(checked)

    def fingerprint(self) -> str:
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for name in (META_NAME, COINS_NAME, CANDLES_NAME, LISTINGS_NAME,
                         CHANNELS_NAME, MESSAGES_NAME):
                file_path = resolve_file(self.path, name)
                digest.update(name.encode())
                digest.update(file_path.read_bytes())
            self._fingerprint = f"file:{digest.hexdigest()[:16]}"
        return self._fingerprint

    def descriptor(self) -> dict:
        return {
            "backend": self.kind,
            "fingerprint": self.fingerprint(),
            "path": str(self.path),
            "n_coins": self.coins.n_coins,
            "n_channels": len(self.channels.all_channel_ids()),
            "n_messages": len(self._messages),
        }
