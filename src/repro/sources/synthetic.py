"""SyntheticWorldSource — the simulator adapted to the data-plane protocols.

A thin, zero-copy adapter: ``market``, ``coins`` and ``channels`` are the
world's own objects (which already satisfy the protocols), so features,
rankings and HR@k computed through the adapter are bit-for-bit identical
to the pre-refactor direct-world path — the parity suite in
``tests/integration/test_source_parity.py`` pins this.
"""

from __future__ import annotations

from typing import Sequence

from repro.markets import EXCHANGE_NAMES
from repro.sources.base import DataSource
from repro.types import Message


def is_world(obj) -> bool:
    """True when ``obj`` is a SyntheticWorld (without importing eagerly)."""
    from repro.simulation.world import SyntheticWorld

    return isinstance(obj, SyntheticWorld)


class SyntheticWorldSource(DataSource):
    """Adapt a generated :class:`~repro.simulation.world.SyntheticWorld`."""

    kind = "synthetic"

    def __init__(self, world):
        if not is_world(world):
            raise TypeError(
                f"SyntheticWorldSource wraps a SyntheticWorld, got "
                f"{type(world).__name__!r}"
            )
        self.world = world
        self.market = world.market
        self.coins = world.coins
        self.channels = world.channels
        config = world.config
        self.seed = config.seed
        self.sequence_length = config.sequence_length
        self.max_negatives_per_event = config.max_negatives_per_event
        self.n_exchanges = config.n_exchanges
        self.exchange_names: Sequence[str] = EXCHANGE_NAMES[: config.n_exchanges]

    def messages(self) -> Sequence[Message]:
        return self.world.messages

    def fingerprint(self) -> str:
        """Worlds are pure functions of their config — hash the knobs.

        Phase-aware worlds (accumulation/ignition overlays attached, see
        :mod:`repro.simulation.phases`) produce different candles from
        the same config, so they fingerprint distinctly.
        """
        config = self.world.config
        phases = ",phases=1" if self.market.has_phases else ""
        return (
            f"synthetic:seed={config.seed},coins={config.n_coins},"
            f"events={config.n_events},horizon={config.horizon_hours}"
            f"{phases}"
        )

    def descriptor(self) -> dict:
        config = self.world.config
        return {
            "backend": self.kind,
            "fingerprint": self.fingerprint(),
            "seed": config.seed,
            "n_coins": config.n_coins,
            "n_events": config.n_events,
            "horizon_hours": config.horizon_hours,
            "phases": bool(self.market.has_phases),
        }

    def repro_config(self):
        return self.world.config
