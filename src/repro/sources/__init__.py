"""repro.sources — the data-plane abstraction between raw data and the
pipeline.

The rest of the system (features, core, serving, registry) consumes the
protocols in :mod:`repro.sources.base`; the backends here implement them:

* :class:`SyntheticWorldSource` — the simulator, adapted bit-for-bit;
* :class:`FileDatasetSource` — recorded CSV/JSONL dumps (see ``repro
  ingest``).

``as_source`` coerces either a backend or a bare ``SyntheticWorld``, so
legacy call sites keep working; ``parse_source_spec`` resolves the CLI's
``--source`` flag (``synthetic`` or ``file:<dump-dir>``).
"""

from __future__ import annotations

from repro.sources.base import (
    ChannelDirectory,
    CoinCatalog,
    DataSource,
    MarketDataSource,
    MessageFeed,
    SourceDataError,
    as_source,
)
from repro.sources.filedata import FileDatasetSource
from repro.sources.ingest import export_synthetic_dump, ingest_raw
from repro.sources.synthetic import SyntheticWorldSource


def parse_source_spec(spec: str, *, config=None) -> DataSource:
    """Resolve a ``--source`` specifier into a backend.

    ``synthetic`` generates a world from ``config`` (defaulting to the
    small scale); ``synthetic+phases`` additionally attaches the
    accumulation/ignition phase overlays (see
    :mod:`repro.simulation.phases`); ``file:<dir>`` loads a recorded
    dump.
    """
    spec = (spec or "synthetic").strip()
    if spec == "synthetic":
        from repro.simulation.world import SyntheticWorld

        return SyntheticWorldSource(SyntheticWorld.generate(config))
    if spec == "synthetic+phases":
        from repro.simulation.phases import generate_phase_world

        return SyntheticWorldSource(generate_phase_world(config))
    if spec.startswith("file:"):
        path = spec[len("file:"):]
        if not path:
            raise SourceDataError("--source file: needs a dump directory path")
        return FileDatasetSource(path)
    raise SourceDataError(
        f"unknown source spec {spec!r}; expected 'synthetic', "
        f"'synthetic+phases' or 'file:<dir>'"
    )


__all__ = [
    "ChannelDirectory",
    "CoinCatalog",
    "DataSource",
    "FileDatasetSource",
    "MarketDataSource",
    "MessageFeed",
    "SourceDataError",
    "SyntheticWorldSource",
    "as_source",
    "export_synthetic_dump",
    "ingest_raw",
    "parse_source_spec",
]
