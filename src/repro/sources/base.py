"""The data-plane protocols the pipeline consumes.

Everything downstream of raw data — feature assembly, training, the
predictor, the streaming service — needs exactly four capabilities:

* :class:`MarketDataSource` — OHLCV oracle answering the batched window /
  grid queries of :mod:`repro.features.market_windows`;
* :class:`CoinCatalog` — the coin universe: symbols, stable statistics and
  per-exchange listing lookups;
* :class:`ChannelDirectory` — channel ids, liveness and subscriber counts
  (what a Telegram API exposes about a channel);
* :class:`MessageFeed` — the timestamped announcement stream.

:class:`DataSource` bundles them with the handful of dataset-construction
knobs (seed, sequence length, negative cap).  Two backends ship:
:class:`repro.sources.synthetic.SyntheticWorldSource` adapts the simulator
bit-for-bit, and :class:`repro.sources.filedata.FileDatasetSource` loads
recorded CSV/JSONL dumps.  Consumers accept either a backend or a bare
:class:`~repro.simulation.world.SyntheticWorld` (coerced via
:func:`as_source`), so pre-refactor call sites keep working unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.types import Message
    from repro.utils.config import ReproConfig


class SourceDataError(RuntimeError):
    """The backing data is missing, malformed, or cannot answer a query.

    Raised instead of returning wrong features: an incomplete candle grid
    or an unknown symbol must stop the pipeline with a diagnostic, never
    silently fill zeros into a feature matrix.

    Every construction bumps ``source_errors_total`` in the process-wide
    telemetry registry — the raise sites are scattered across backends,
    and this is the one chokepoint they all share.
    """

    def __init__(self, *args):
        super().__init__(*args)
        from repro.telemetry import default_registry

        default_registry().counter(
            "source_errors_total",
            "Data-source failures (missing/malformed/unanswerable).",
        ).labels().inc()


@runtime_checkable
class CoinCatalog(Protocol):
    """The coin universe: identity, stable statistics, listings.

    Stable statistics are arrays indexed by ``coin_id`` (the CoinGecko-style
    §5.1 features): ``market_cap``, ``alexa_rank``, ``reddit_subscribers``,
    ``twitter_followers``.
    """

    symbols: Sequence[str]
    market_cap: np.ndarray
    alexa_rank: np.ndarray
    reddit_subscribers: np.ndarray
    twitter_followers: np.ndarray

    @property
    def n_coins(self) -> int: ...

    def listed_coins(self, exchange_id: int, hour: float) -> np.ndarray:
        """Coin ids tradable on an exchange at a given hour."""
        ...

    def is_listed(self, coin_id: int, exchange_id: int, hour: float) -> bool: ...

    def symbol_to_id(self) -> dict[str, int]: ...


@runtime_checkable
class MarketDataSource(Protocol):
    """OHLCV oracle answering the feature layer's batched queries.

    ``universe`` exposes the :class:`CoinCatalog` the prices refer to (the
    stable coin statistics ride along with the market data, as they do on
    CoinGecko).  All array arguments broadcast together, matching the
    batched grid queries of :func:`repro.features.market_windows`.
    """

    @property
    def universe(self) -> CoinCatalog: ...

    def log_close(self, coin_ids, hours) -> np.ndarray:
        """Log close price; ``coin_ids`` and ``hours`` broadcast together."""
        ...

    def hourly_volume(self, coin_ids, hours) -> np.ndarray:
        """Traded volume during the hour ending at ``hours``."""
        ...

    def window_volume_profile(self, coin_ids, pump_hour: float,
                              max_hours: int) -> np.ndarray:
        """Hourly volumes at offsets ``1..max_hours`` before ``pump_hour``."""
        ...

    def trade_count_from_volume(self, volume: np.ndarray, coin_ids) -> np.ndarray:
        """Proxy trade count for already-known volumes."""
        ...


@runtime_checkable
class ChannelDirectory(Protocol):
    """What a Telegram-style API exposes about the monitored channels."""

    def all_channel_ids(self) -> list[int]: ...

    def seed_channel_ids(self) -> list[int]:
        """The verified seed list snowball exploration starts from."""
        ...

    def dead_channel_ids(self) -> set[int]:
        """Channels a liveness probe reports deleted/inaccessible."""
        ...

    def subscriber_counts(self) -> dict[int, int]:
        """channel_id -> subscribers, where known."""
        ...


@runtime_checkable
class MessageFeed(Protocol):
    """A replayable source of timestamped announcements."""

    def messages(self) -> "Sequence[Message]":
        """All messages, chronological."""
        ...


class DataSource:
    """Base class for a complete data backend.

    Concrete backends set :attr:`kind` and provide ``market`` / ``coins`` /
    ``channels`` plus :meth:`messages`.  The dataset-construction knobs
    (``seed``, ``sequence_length``, ``max_negatives_per_event``,
    ``n_exchanges``, ``exchange_names``) are attributes so the offline
    pipeline never reaches for a simulator config.
    """

    kind: str = "abstract"

    market: MarketDataSource
    coins: CoinCatalog
    channels: ChannelDirectory

    seed: int
    sequence_length: int
    max_negatives_per_event: int
    n_exchanges: int
    exchange_names: Sequence[str]

    def messages(self) -> "Sequence[Message]":  # pragma: no cover - interface
        raise NotImplementedError

    def descriptor(self) -> dict:
        """Provenance descriptor: backend kind + dataset fingerprint.

        Recorded into trained artifacts (:mod:`repro.registry`) so a model
        always knows what data plane produced it; shown by
        ``repro models inspect``.
        """
        return {"backend": self.kind, "fingerprint": self.fingerprint()}

    def fingerprint(self) -> str:  # pragma: no cover - interface
        """A short stable identifier of the underlying dataset."""
        raise NotImplementedError

    def repro_config(self) -> "ReproConfig":
        """A :class:`ReproConfig` describing this source's data-plane knobs.

        Kept so :class:`~repro.data.dataset.TargetCoinDataset` can keep
        storing one config type regardless of backend.
        """
        from repro.utils.config import ReproConfig

        return ReproConfig(
            seed=self.seed,
            n_coins=self.coins.n_coins,
            n_exchanges=self.n_exchanges,
            sequence_length=self.sequence_length,
            max_negatives_per_event=self.max_negatives_per_event,
        )


def as_source(obj) -> DataSource:
    """Coerce ``obj`` into a :class:`DataSource`.

    Accepts a ready backend unchanged, or a bare
    :class:`~repro.simulation.world.SyntheticWorld`, which is wrapped in a
    :class:`~repro.sources.synthetic.SyntheticWorldSource` — the seam that
    keeps every pre-refactor ``f(world, ...)`` call site working.
    """
    if isinstance(obj, DataSource):
        return obj
    # Lazy import: only the adapter module knows about the simulator.
    from repro.sources.synthetic import SyntheticWorldSource, is_world

    if is_world(obj):
        return SyntheticWorldSource(obj)
    raise TypeError(
        f"cannot build a data source from {type(obj).__name__!r}; expected "
        "a DataSource backend or a SyntheticWorld"
    )
