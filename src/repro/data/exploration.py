"""Snowball channel exploration (§3.1).

Starting from a verified seed list (the PumpOlymp substitute), the explorer
checks channel liveness, reads every message of live channels, extracts
Telegram invitation links and follows them for a bounded number of hops
(the paper uses 2 "to ensure high relatedness").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.types import Message

INVITE_LINK = re.compile(r"t\.me/joinchat/(\d+)")


def _networkx():
    """Load networkx on first use — the exploration graph needs it, the
    rest of the data pipeline (and anything importing this module for
    :func:`extract_invite_links`) does not."""
    try:
        import networkx as nx
    except ImportError as exc:
        raise ImportError(
            "repro.data.exploration requires networkx for the invitation "
            "graph; install networkx to run the snowball exploration"
        ) from exc
    return nx


def _empty_digraph():
    return _networkx().DiGraph()


def extract_invite_links(text: str) -> list[int]:
    """Channel ids referenced by invitation links inside a message.

    >>> extract_invite_links("join t.me/joinchat/123 and t.me/joinchat/456")
    [123, 456]
    """
    return [int(m) for m in INVITE_LINK.findall(text)]


@dataclass
class ExplorationResult:
    """Outcome of a snowball run."""

    seed_ids: list[int]
    dead_seed_ids: list[int]
    discovered_ids: list[int]          # new channels found via links
    explored_ids: list[int]            # all live channels whose messages we read
    hops: dict[int, int] = field(default_factory=dict)  # channel -> hop found at
    exploration_graph: "nx.DiGraph" = field(default_factory=_empty_digraph)

    @property
    def n_dead_seeds(self) -> int:
        return len(self.dead_seed_ids)

    def summary(self) -> dict[str, int]:
        return {
            "seeds": len(self.seed_ids),
            "dead_seeds": self.n_dead_seeds,
            "discovered": len(self.discovered_ids),
            "explored": len(self.explored_ids),
        }


class ChannelExplorer:
    """Walk the invitation graph through observed messages.

    The explorer never touches the simulator's hidden graph: it only sees
    message *text*, exactly like the Telethon-based crawler in the paper.
    """

    def __init__(self, channels, messages: Sequence[Message],
                 max_hops: int = 2):
        """``channels`` is any :class:`repro.sources.ChannelDirectory`
        (e.g. a ``ChannelPopulation`` or a dump's channel roster)."""
        if max_hops < 0:
            raise ValueError("max_hops must be non-negative")
        self.channels = channels
        self.max_hops = max_hops
        self._by_channel: dict[int, list[Message]] = {}
        for message in messages:
            self._by_channel.setdefault(message.channel_id, []).append(message)
        self._dead = set(channels.dead_channel_ids())
        self._known = set(channels.all_channel_ids())

    def is_alive(self, channel_id: int) -> bool:
        """Liveness check (the Telethon status call substitute)."""
        return channel_id in self._known and channel_id not in self._dead

    def explore(self, seed_ids: Iterable[int]) -> ExplorationResult:
        """Run the bounded snowball from a seed list."""
        seed_ids = list(seed_ids)
        dead = [cid for cid in seed_ids if not self.is_alive(cid)]
        frontier = [cid for cid in seed_ids if self.is_alive(cid)]
        hops: dict[int, int] = {cid: 0 for cid in frontier}
        explored: list[int] = []
        discovered: list[int] = []
        graph = _empty_digraph()
        visited = set(frontier)
        for hop in range(self.max_hops + 1):
            next_frontier: list[int] = []
            for channel_id in frontier:
                explored.append(channel_id)
                if hop >= self.max_hops:
                    continue  # read messages but do not snowball further
                for message in self._by_channel.get(channel_id, ()):
                    for target in extract_invite_links(message.text):
                        graph.add_edge(channel_id, target)
                        if target in visited or not self.is_alive(target):
                            continue
                        visited.add(target)
                        hops[target] = hop + 1
                        next_frontier.append(target)
                        discovered.append(target)
            frontier = next_frontier
        return ExplorationResult(
            seed_ids=seed_ids,
            dead_seed_ids=dead,
            discovered_ids=discovered,
            explored_ids=explored,
            hops=hops,
            exploration_graph=graph,
        )

    def collect_messages(self, result: ExplorationResult) -> list[Message]:
        """All messages of every explored channel, chronological.

        The sort key is the canonical ``(time, channel_id, message_id)``
        triple so the collected order — and everything seeded from it
        (detector label sampling, session ordering) — is identical no
        matter which backend supplied the messages or how it ordered
        equal-time ties.
        """
        collected: list[Message] = []
        for channel_id in result.explored_ids:
            collected.extend(self._by_channel.get(channel_id, ()))
        collected.sort(key=lambda m: (m.time, m.channel_id, m.message_id))
        return collected
