"""End-to-end data-collection pipeline (Figure 2, left half).

``collect(source)`` chains exploration → message collection → keyword
filtering + detection → sessionization → sample extraction → dataset
construction, returning every intermediate artefact so analyses and
benchmarks can inspect each stage.  ``source`` is any
:class:`repro.sources.DataSource` backend — the synthetic world adapter
or a recorded file dump — or a bare ``SyntheticWorld`` (coerced).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import TargetCoinDataset
from repro.data.detection import DetectionOutcome, run_detection_pipeline
from repro.data.exploration import ChannelExplorer, ExplorationResult
from repro.data.sessions import (
    PnDSample,
    Session,
    dataset_statistics,
    extract_samples,
    sessionize,
)
from repro.sources.base import as_source


@dataclass
class CollectionResult:
    """All artefacts of the data-collection stage."""

    exploration: ExplorationResult
    detection: DetectionOutcome
    sessions: list[Session]
    samples: list[PnDSample]
    dataset: TargetCoinDataset

    def table2(self) -> dict[str, int]:
        """Extracted dataset statistics (paper Table 2)."""
        return dataset_statistics(self.samples)


def collect(source, max_hops: int = 2,
            n_label: int = 1600) -> CollectionResult:
    """Run the full §3 pipeline against a data source."""
    source = as_source(source)
    explorer = ChannelExplorer(source.channels, source.messages(),
                               max_hops=max_hops)
    exploration = explorer.explore(source.channels.seed_channel_ids())
    collected = explorer.collect_messages(exploration)

    exchange_names = list(source.exchange_names)
    detection = run_detection_pipeline(
        collected,
        coin_symbols=source.coins.symbols,
        exchange_names=exchange_names,
        n_label=n_label,
        seed=source.seed,
    )
    sessions = sessionize(detection.detected)
    samples = extract_samples(sessions, source.coins.symbols, exchange_names)
    dataset = TargetCoinDataset.build(source, samples)
    return CollectionResult(
        exploration=exploration,
        detection=detection,
        sessions=sessions,
        samples=samples,
        dataset=dataset,
    )
