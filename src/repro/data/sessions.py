"""Sessionization and P&D sample extraction (§3.2, Tables 2-3).

Detected pump messages of one channel are grouped into **sessions** — runs
of messages whose inter-arrival gap never exceeds 24 hours.  A session is
the minimum unit in which a channel can hold one P&D; from each session we
try to extract the quintuple

    (channel_id, target coin, exchange, pairing coin, timestamp)

by parsing the coin release, the announcement's exchange and pair.  Sessions
whose coin cannot be resolved (e.g. OCR-proof image releases) yield no
sample — this is why the paper finds 1,335 samples in 2,006 sessions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.types import Message

SESSION_GAP_HOURS = 24.0

_RELEASE_RE = re.compile(r"^(?:Coin:\s*)?([A-Z]{2,6})$")
_EXCHANGE_RE = re.compile(r"pump on ([A-Za-z]+)")
_PAIR_RE = re.compile(r"Pair:\s*([A-Z]{2,6})")


@dataclass(frozen=True)
class PnDSample:
    """The extracted quintuple of one channel's participation in one P&D."""

    channel_id: int
    coin_id: int
    exchange_id: int
    pair: str
    time: float  # fractional hours; release-message timestamp

    def quintuple(self, symbols: Sequence[str],
                  exchange_names: Sequence[str]) -> tuple:
        """Human-readable row as in Table 3."""
        return (
            self.channel_id,
            symbols[self.coin_id],
            exchange_names[self.exchange_id % len(exchange_names)],
            self.pair,
            self.time,
        )


@dataclass
class Session:
    """A maximal 24h-gap run of one channel's detected pump messages."""

    channel_id: int
    messages: list[Message]

    @property
    def start(self) -> float:
        return self.messages[0].time

    @property
    def end(self) -> float:
        return self.messages[-1].time


def sessionize(messages: Sequence[Message],
               gap_hours: float = SESSION_GAP_HOURS) -> list[Session]:
    """Group detected messages into per-channel sessions.

    Messages may arrive unsorted and mixed across channels.
    """
    if gap_hours <= 0:
        raise ValueError("gap_hours must be positive")
    by_channel: dict[int, list[Message]] = {}
    for message in messages:
        by_channel.setdefault(message.channel_id, []).append(message)
    sessions: list[Session] = []
    for channel_id, channel_messages in by_channel.items():
        channel_messages.sort(key=lambda m: m.time)
        current: list[Message] = []
        for message in channel_messages:
            if current and message.time - current[-1].time > gap_hours:
                sessions.append(Session(channel_id, current))
                current = []
            current.append(message)
        if current:
            sessions.append(Session(channel_id, current))
    sessions.sort(key=lambda s: s.start)
    return sessions


def parse_release_symbol(text: str, known_symbols: Mapping[str, int]) -> int | None:
    """Coin id of a release-style message, or None if unresolvable."""
    match = _RELEASE_RE.match(text.strip())
    if not match:
        return None
    return known_symbols.get(match.group(1))


def parse_exchange_id(text: str, exchange_ids: Mapping[str, int]) -> int | None:
    """Exchange id announced in a message, or None if unparseable."""
    match = _EXCHANGE_RE.search(text)
    if not match:
        return None
    return exchange_ids.get(match.group(1))


def parse_pair(text: str) -> str | None:
    """Pairing-coin symbol announced in a message, or None if unparseable."""
    match = _PAIR_RE.search(text)
    if not match:
        return None
    return match.group(1)


def extract_sample(session: Session, known_symbols: Mapping[str, int],
                   exchange_ids: Mapping[str, int]) -> PnDSample | None:
    """Resolve one session into a P&D sample, if possible.

    The *last* resolvable release message in the session fixes the coin and
    timestamp (channels sometimes repost the symbol); exchange and pair come
    from the announcement/countdown texts, defaulting to Binance/BTC —
    the paper's dominant combination — when unparseable.
    """
    coin_id = None
    release_time = None
    for message in session.messages:
        parsed = parse_release_symbol(message.text, known_symbols)
        if parsed is not None:
            coin_id = parsed
            release_time = message.time
    if coin_id is None:
        return None
    exchange_id = 0
    pair = "BTC"
    for message in session.messages:
        parsed_exchange = parse_exchange_id(message.text, exchange_ids)
        if parsed_exchange is not None:
            exchange_id = parsed_exchange
        parsed_pair = parse_pair(message.text)
        if parsed_pair is not None:
            pair = parsed_pair
    return PnDSample(
        channel_id=session.channel_id,
        coin_id=int(coin_id),
        exchange_id=int(exchange_id),
        pair=pair,
        time=float(release_time),
    )


def extract_samples(sessions: Sequence[Session], symbols: Sequence[str],
                    exchange_names: Sequence[str]) -> list[PnDSample]:
    """Extract every resolvable P&D sample, chronologically sorted."""
    known_symbols = {s: i for i, s in enumerate(symbols)}
    exchange_ids = {name: i for i, name in enumerate(exchange_names)}
    samples = []
    for session in sessions:
        sample = extract_sample(session, known_symbols, exchange_ids)
        if sample is not None:
            samples.append(sample)
    samples.sort(key=lambda s: s.time)
    return samples


def dataset_statistics(samples: Sequence[PnDSample]) -> dict[str, int]:
    """Table-2 style counts over extracted samples."""
    events: set[tuple[int, int]] = set()
    for sample in samples:
        # Samples of one coordinated event share coin and (rounded) hour.
        events.add((sample.coin_id, int(round(sample.time))))
    return {
        "samples": len(samples),
        "events": len(events),
        "channels": len({s.channel_id for s in samples}),
        "coins": len({s.coin_id for s in samples}),
        "exchanges": len({s.exchange_id for s in samples}),
    }
