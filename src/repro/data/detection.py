"""Pump message detection (§3.2): keyword filter → TF-IDF → RF / LR.

The paper labels ~5k sampled messages, trains Random Forest and Logistic
Regression on TF-IDF vectors, and applies the RF at a low 0.2 threshold to
maximize recall (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.ml import (
    BinaryClassificationReport,
    LogisticRegression,
    RandomForestClassifier,
    TfidfVectorizer,
    classification_report,
)
from repro.types import Message
from repro.text import KeywordFilter, tokenize

DETECTION_THRESHOLD = 0.2  # the paper's deliberately low cut-off


@dataclass
class DetectionOutcome:
    """Everything Table 1 and the downstream pipeline need."""

    reports: dict[str, BinaryClassificationReport]
    detected: list[Message]            # messages the RF flags as pump
    n_filtered: int                    # messages surviving the keyword filter
    n_total: int
    n_labelled: int
    # Fitted artefacts, retained so a serving layer can classify new
    # messages without re-running the pipeline.
    detectors: dict[str, PumpMessageDetector] = field(default_factory=dict)
    keyword_filter: "KeywordFilter | None" = None


class PumpMessageDetector:
    """TF-IDF + classifier pump-message model."""

    def __init__(self, model: str = "rf", max_features: int = 400, seed: int = 0):
        if model not in ("rf", "lr"):
            raise ValueError("model must be 'rf' or 'lr'")
        self.model_name = model
        self.vectorizer = TfidfVectorizer(
            max_features=max_features, min_df=2, tokenizer=tokenize
        )
        if model == "rf":
            self.model = RandomForestClassifier(
                n_estimators=40, max_depth=25, max_samples=4000, seed=seed
            )
        else:
            self.model = LogisticRegression(epochs=250, class_weight="balanced")

    def fit(self, texts: Sequence[str], labels) -> "PumpMessageDetector":
        matrix = self.vectorizer.fit_transform(texts)
        self.model.fit(matrix, np.asarray(labels, dtype=float))
        return self

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        return self.model.predict_proba(self.vectorizer.transform(texts))

    def evaluate(self, texts: Sequence[str], labels,
                 threshold: float = DETECTION_THRESHOLD) -> BinaryClassificationReport:
        return classification_report(
            np.asarray(labels), self.predict_proba(texts), threshold=threshold
        )


def run_detection_pipeline(messages: Sequence[Message], coin_symbols: Sequence[str],
                           exchange_names: Sequence[str], n_label: int = 1600,
                           train_fraction: float = 0.7, seed: int = 0,
                           ) -> DetectionOutcome:
    """The full §3.2 workflow over a collected message stream.

    1. keyword filtering;
    2. random labelling of ``n_label`` filtered messages (ground truth plays
       the role of the human annotators);
    3. 70/30 train/test of RF and LR (Table 1);
    4. RF detection at threshold 0.2 over everything that passed the filter.
    """
    rng = np.random.default_rng(seed)
    keyword_filter = KeywordFilter(coin_symbols, exchange_names)
    kept_idx = keyword_filter.filter([m.text for m in messages])
    filtered = [messages[i] for i in kept_idx]
    if len(filtered) < 10:
        raise ValueError("keyword filter left too few messages to train on")

    n_label = min(n_label, len(filtered))
    chosen = rng.choice(len(filtered), size=n_label, replace=False)
    labelled = [filtered[i] for i in chosen]
    texts = [m.text for m in labelled]
    labels = np.array([float(m.is_pump_message) for m in labelled])

    order = rng.permutation(n_label)
    n_train = int(train_fraction * n_label)
    train_idx, test_idx = order[:n_train], order[n_train:]
    train_texts = [texts[i] for i in train_idx]
    test_texts = [texts[i] for i in test_idx]

    reports: dict[str, BinaryClassificationReport] = {}
    detectors: dict[str, PumpMessageDetector] = {}
    for name in ("lr", "rf"):
        detector = PumpMessageDetector(model=name, seed=seed).fit(
            train_texts, labels[train_idx]
        )
        reports[name] = detector.evaluate(test_texts, labels[test_idx])
        detectors[name] = detector

    probs = detectors["rf"].predict_proba([m.text for m in filtered])
    detected = [m for m, p in zip(filtered, probs) if p >= DETECTION_THRESHOLD]
    return DetectionOutcome(
        reports=reports,
        detected=detected,
        n_filtered=len(filtered),
        n_total=len(messages),
        n_labelled=n_label,
        detectors=detectors,
        keyword_filter=keyword_filter,
    )
