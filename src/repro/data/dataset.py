"""Target-coin dataset construction (§6.1, Table 4).

Positives are extracted P&D samples on Binance paired with BTC.  For every
positive, all other eligible coins listed on Binance at pump time become
negatives (optionally capped for tractability).  The train/validation/test
split is **temporal** — test strictly follows validation strictly follows
train — which both matches deployment and creates the coin-side cold-start
conditions of §5.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.sessions import PnDSample
from repro.markets import PAIR_SYMBOLS
from repro.sources.base import as_source
from repro.utils.config import ReproConfig

# Positive-time quantiles of the split boundaries; chosen to match the
# paper's Table 4 proportions (648 / 100 / 200 positives).
TRAIN_QUANTILE = 0.684
VALIDATION_QUANTILE = 0.789

SPLIT_NAMES = ("train", "validation", "test")


@dataclass(frozen=True)
class TargetCoinExample:
    """One (channel, candidate coin, time) row of the ranking task."""

    list_id: int        # groups the positive with its negatives (one event-sample)
    channel_id: int
    coin_id: int
    time: float
    label: int          # 1 = the actually pumped coin
    split: str          # train / validation / test


@dataclass
class TargetCoinDataset:
    """All examples plus per-channel pump histories for sequence features."""

    examples: list[TargetCoinExample]
    history: dict[int, list[PnDSample]]   # channel -> chronological samples
    split_hours: tuple[float, float]
    config: ReproConfig

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, source, samples: Sequence[PnDSample],
              exchange_id: int = 0, pair: str = "BTC") -> "TargetCoinDataset":
        """Build the ranking dataset from extracted samples.

        ``source`` is any data backend (or a bare ``SyntheticWorld``).
        Mirrors the paper: restrict to one exchange/pair, deduplicate
        channel-level samples into per-channel positives, generate listed-coin
        negatives, split temporally.
        """
        source = as_source(source)
        config = source.repro_config()
        rng = np.random.default_rng(config.seed * 60013 + 101)
        positives = [
            s for s in samples if s.exchange_id == exchange_id and s.pair == pair
        ]
        if len(positives) < 10:
            raise ValueError(
                f"only {len(positives)} positives on exchange {exchange_id}/{pair}; "
                "world too small"
            )
        times = np.array([s.time for s in positives])
        t_train = float(np.quantile(times, TRAIN_QUANTILE))
        t_val = float(np.quantile(times, VALIDATION_QUANTILE))

        history: dict[int, list[PnDSample]] = {}
        for sample in sorted(samples, key=lambda s: s.time):
            history.setdefault(sample.channel_id, []).append(sample)

        examples: list[TargetCoinExample] = []
        for list_id, sample in enumerate(sorted(positives, key=lambda s: s.time)):
            split = (
                "train" if sample.time <= t_train
                else "validation" if sample.time <= t_val
                else "test"
            )
            listed = source.coins.listed_coins(exchange_id, sample.time)
            eligible = listed[listed >= len(PAIR_SYMBOLS)]
            negatives = eligible[eligible != sample.coin_id]
            cap = config.max_negatives_per_event
            if cap and len(negatives) > cap:
                negatives = rng.choice(negatives, size=cap, replace=False)
            examples.append(TargetCoinExample(
                list_id=list_id, channel_id=sample.channel_id,
                coin_id=sample.coin_id, time=sample.time, label=1, split=split,
            ))
            for coin in negatives:
                examples.append(TargetCoinExample(
                    list_id=list_id, channel_id=sample.channel_id,
                    coin_id=int(coin), time=sample.time, label=0, split=split,
                ))
        return cls(examples=examples, history=history,
                   split_hours=(t_train, t_val), config=config)

    # -- queries ---------------------------------------------------------------

    def split_examples(self, split: str) -> list[TargetCoinExample]:
        if split not in SPLIT_NAMES:
            raise ValueError(f"split must be one of {SPLIT_NAMES}")
        return [e for e in self.examples if e.split == split]

    def history_before(self, channel_id: int, time: float,
                       length: int) -> list[PnDSample]:
        """The channel's last ``length`` samples strictly before ``time``.

        Strict inequality prevents label leakage: the positive being
        predicted never appears in its own sequence.
        """
        past = [
            s for s in self.history.get(channel_id, ())
            if s.time < time - 1e-9
        ]
        return past[-length:]

    def table4(self) -> dict[str, dict[str, int]]:
        """Counts in the shape of the paper's Table 4."""
        table: dict[str, dict[str, int]] = {}
        for split in SPLIT_NAMES:
            rows = self.split_examples(split)
            pos = sum(e.label for e in rows)
            table[split] = {
                "positives": pos,
                "negatives": len(rows) - pos,
                "total": len(rows),
            }
        table["total"] = {
            key: sum(table[s][key] for s in SPLIT_NAMES)
            for key in ("positives", "negatives", "total")
        }
        return table

    def cold_start_stats(self) -> dict[str, int]:
        """How many test positives are cold (never pumped in train) — §5.3."""
        train_coins = {
            e.coin_id for e in self.examples if e.split == "train" and e.label == 1
        }
        test_pos = [e for e in self.examples if e.split == "test" and e.label == 1]
        cold = sum(1 for e in test_pos if e.coin_id not in train_coins)
        return {
            "test_positives": len(test_pos),
            "cold_positives": cold,
            "warm_positives": len(test_pos) - cold,
        }
