"""repro.data — the data-collection pipeline of §3 (Figure 2, left)."""

from repro.data.exploration import (
    ChannelExplorer,
    ExplorationResult,
    extract_invite_links,
)
from repro.data.detection import (
    DETECTION_THRESHOLD,
    DetectionOutcome,
    PumpMessageDetector,
    run_detection_pipeline,
)
from repro.data.sessions import (
    SESSION_GAP_HOURS,
    PnDSample,
    Session,
    dataset_statistics,
    extract_sample,
    extract_samples,
    parse_exchange_id,
    parse_pair,
    parse_release_symbol,
    sessionize,
)
from repro.data.dataset import (
    SPLIT_NAMES,
    TargetCoinDataset,
    TargetCoinExample,
)
from repro.data.pipeline import CollectionResult, collect
from repro.data.updater import DatasetUpdater, UpdateResult
from repro.data.market_resolution import (
    ImageResolution,
    find_image_release_sessions,
    recover_image_samples,
    resolve_image_release,
)

__all__ = [
    "ChannelExplorer",
    "ExplorationResult",
    "extract_invite_links",
    "PumpMessageDetector",
    "DetectionOutcome",
    "run_detection_pipeline",
    "DETECTION_THRESHOLD",
    "Session",
    "sessionize",
    "SESSION_GAP_HOURS",
    "PnDSample",
    "extract_sample",
    "extract_samples",
    "parse_exchange_id",
    "parse_pair",
    "parse_release_symbol",
    "dataset_statistics",
    "TargetCoinDataset",
    "TargetCoinExample",
    "SPLIT_NAMES",
    "CollectionResult",
    "collect",
    "DatasetUpdater",
    "UpdateResult",
    "ImageResolution",
    "find_image_release_sessions",
    "resolve_image_release",
    "recover_image_samples",
]
