"""Market-reaction fallback for unresolvable coin releases.

Organizers sometimes release the coin name as an OCR-proof image (§2), so
text parsing alone drops those sessions (the gap between 2,006 sessions and
1,335 samples in §3.2).  But the market itself reveals the answer: at the
release minute exactly one listed coin spikes.  This module resolves such
sessions by ranking candidate coins by their realized return in the minutes
right after the scheduled release — the same market-verification idea the
paper uses when manually validating events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.sessions import PnDSample, Session, extract_sample
from repro.simulation.market import MarketSimulator
from repro.types import OCR_IMAGE_TEXT

POST_RELEASE_MINUTES = 5
MIN_SPIKE_RETURN = 0.25  # a pump multiplies price; noise never reaches this


@dataclass(frozen=True)
class ImageResolution:
    """Outcome of resolving one image-release session."""

    session: Session
    coin_id: int | None
    spike_return: float


def find_image_release_sessions(sessions: Sequence[Session]) -> list[Session]:
    """Sessions whose only release evidence is an OCR-proof image."""
    out = []
    for session in sessions:
        has_image = any(m.text == OCR_IMAGE_TEXT for m in session.messages)
        if has_image:
            out.append(session)
    return out


def _release_time(session: Session) -> float | None:
    for message in session.messages:
        if message.text == OCR_IMAGE_TEXT:
            return message.time
    return None


def resolve_image_release(session: Session, market: MarketSimulator,
                          exchange_id: int = 0) -> ImageResolution:
    """Identify the pumped coin by its post-release price spike.

    Scans every coin listed on the exchange at release time and picks the
    one with the largest return over the following minutes, requiring a
    pump-sized spike so quiet sessions resolve to ``None`` instead of noise.
    """
    release = _release_time(session)
    if release is None:
        return ImageResolution(session=session, coin_id=None, spike_return=0.0)
    listed = market.universe.listed_coins(exchange_id, release)
    listed = listed[listed >= 3]  # skip pairing majors
    if len(listed) == 0:
        return ImageResolution(session=session, coin_id=None, spike_return=0.0)
    before = market.log_close(listed, np.full(len(listed), release - 0.25))
    after_hour = release + POST_RELEASE_MINUTES / 60.0
    after = market.log_close(listed, np.full(len(listed), after_hour))
    returns = np.exp(after - before) - 1.0
    best = int(np.argmax(returns))
    if returns[best] < MIN_SPIKE_RETURN:
        return ImageResolution(session=session, coin_id=None,
                               spike_return=float(returns[best]))
    return ImageResolution(session=session, coin_id=int(listed[best]),
                           spike_return=float(returns[best]))


def recover_image_samples(sessions: Sequence[Session], market: MarketSimulator,
                          symbols: Sequence[str],
                          exchange_names: Sequence[str]) -> list[PnDSample]:
    """Resolve every image-release session into additional P&D samples.

    Sessions that text extraction already resolved are skipped; exchange and
    pair still come from the announcement text when parseable.
    """
    from repro.data.sessions import _EXCHANGE_RE, _PAIR_RE

    known_symbols = {s: i for i, s in enumerate(symbols)}
    exchange_ids = {name: i for i, name in enumerate(exchange_names)}
    recovered: list[PnDSample] = []
    for session in find_image_release_sessions(sessions):
        if extract_sample(session, known_symbols, exchange_ids) is not None:
            continue  # text was sufficient after all
        # Parse the exchange/pair hints from announcement text so the spike
        # scan looks at the right venue.
        exchange_id = 0
        pair = "BTC"
        for message in session.messages:
            ex_match = _EXCHANGE_RE.search(message.text)
            if ex_match:
                exchange_id = exchange_ids.get(ex_match.group(1), exchange_id)
            pair_match = _PAIR_RE.search(message.text)
            if pair_match:
                pair = pair_match.group(1)
        resolution = resolve_image_release(session, market, exchange_id)
        if resolution.coin_id is None:
            continue
        release = _release_time(session)
        recovered.append(PnDSample(
            channel_id=session.channel_id,
            coin_id=resolution.coin_id,
            exchange_id=exchange_id,
            pair=pair,
            time=float(release),
        ))
    return recovered
