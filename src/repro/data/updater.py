"""Incremental dataset maintenance.

The paper's collection stage "works offline, maintains a P&D dataset, and
updates it regularly".  :class:`DatasetUpdater` implements that loop: feed
it newly collected messages and it re-runs detection on the delta,
sessionizes them against the trailing context, and appends newly resolvable
P&D samples without reprocessing history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.data.detection import DETECTION_THRESHOLD, PumpMessageDetector
from repro.data.sessions import (
    SESSION_GAP_HOURS,
    PnDSample,
    extract_samples,
    sessionize,
)
from repro.types import Message


@dataclass
class UpdateResult:
    """Outcome of one incremental update."""

    new_messages: int
    new_detected: int
    new_samples: list[PnDSample] = field(default_factory=list)


class DatasetUpdater:
    """Maintain a growing P&D sample list from streamed messages.

    Parameters
    ----------
    detector:
        A fitted :class:`PumpMessageDetector` (typically the RF from the
        initial pipeline run).
    symbols, exchange_names:
        Vocabulary for quintuple resolution.
    samples:
        Existing samples to extend (kept sorted by time).
    """

    def __init__(self, detector: PumpMessageDetector, symbols: Sequence[str],
                 exchange_names: Sequence[str],
                 samples: Sequence[PnDSample] = ()):
        self.detector = detector
        self.symbols = list(symbols)
        self.exchange_names = list(exchange_names)
        self.samples: list[PnDSample] = sorted(samples, key=lambda s: s.time)
        self._tail_messages: list[Message] = []
        self._seen_keys = {
            (s.channel_id, s.coin_id, round(s.time, 3)) for s in self.samples
        }
        self.last_processed_time = (
            max((s.time for s in self.samples), default=0.0)
        )

    def update(self, new_messages: Sequence[Message]) -> UpdateResult:
        """Ingest a batch of new messages and append resolvable samples.

        Detection runs only on the delta; sessionization also sees a tail of
        previously detected messages so sessions spanning the batch boundary
        stay intact.
        """
        fresh = sorted(new_messages, key=lambda m: m.time)
        if not fresh:
            return UpdateResult(new_messages=0, new_detected=0)
        probs = self.detector.predict_proba([m.text for m in fresh])
        detected = [m for m, p in zip(fresh, probs) if p >= DETECTION_THRESHOLD]
        context = self._tail_messages + detected
        sessions = sessionize(context)
        candidates = extract_samples(sessions, self.symbols, self.exchange_names)
        appended: list[PnDSample] = []
        for sample in candidates:
            key = (sample.channel_id, sample.coin_id, round(sample.time, 3))
            if key in self._seen_keys:
                continue
            self._seen_keys.add(key)
            appended.append(sample)
        self.samples.extend(appended)
        self.samples.sort(key=lambda s: s.time)
        if self.samples:
            self.last_processed_time = self.samples[-1].time
        # Keep only the trailing session-gap window as context for the next
        # batch; older messages can never join a future session.
        horizon = fresh[-1].time - SESSION_GAP_HOURS
        self._tail_messages = [m for m in context if m.time >= horizon]
        return UpdateResult(
            new_messages=len(fresh),
            new_detected=len(detected),
            new_samples=appended,
        )
