"""Vocabulary with frequency bookkeeping for word2vec training."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np


class Vocabulary:
    """Token <-> id mapping with counts and a negative-sampling table.

    Tokens occurring fewer than ``min_count`` times are dropped, matching
    standard word2vec preprocessing.
    """

    def __init__(self, sentences: Sequence[Sequence[str]], min_count: int = 2):
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        counts: Counter = Counter()
        for sentence in sentences:
            counts.update(sentence)
        kept = [(t, c) for t, c in counts.items() if c >= min_count]
        kept.sort(key=lambda tc: (-tc[1], tc[0]))
        self.index = {t: i for i, (t, _) in enumerate(kept)}
        self.tokens = [t for t, _ in kept]
        self.counts = np.array([c for _, c in kept], dtype=np.int64)

    def __len__(self) -> int:
        return len(self.tokens)

    def __contains__(self, token: str) -> bool:
        return token in self.index

    def encode(self, sentence: Iterable[str]) -> np.ndarray:
        """Map a token sequence to known ids, dropping OOV tokens."""
        return np.array([self.index[t] for t in sentence if t in self.index],
                        dtype=np.int64)

    def unigram_table(self, power: float = 0.75) -> np.ndarray:
        """Negative-sampling distribution proportional to count^power."""
        if len(self) == 0:
            raise ValueError("empty vocabulary")
        weights = self.counts.astype(np.float64) ** power
        return weights / weights.sum()

    def subsample_mask(self, ids: np.ndarray, rng: np.random.Generator,
                       threshold: float = 1e-3) -> np.ndarray:
        """Mikolov-style frequent-word subsampling keep-mask."""
        freq = self.counts[ids] / self.counts.sum()
        keep_prob = np.minimum(1.0, np.sqrt(threshold / freq) + threshold / freq)
        return rng.random(len(ids)) < keep_prob
