"""Keyword matching — the first stage of pump-message detection (§3.2).

The paper "reserves any message that mentions a coin or exchange name, or
includes keywords such as 'pump', 'target', 'hold', 'sell', etc.", cutting
4.67M messages down to 2.19M before the ML classifier runs.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.text.tokenize import clean_message

PUMP_KEYWORDS = frozenset(
    """pump pumping pumped target hold holding sell selling buy buying signal
    countdown announcement profit gain next coin name exchange pair btc
    minutes hours ready soon vip dump moon""".split()
)


class KeywordFilter:
    """Reserve messages mentioning coins, exchanges or pump vocabulary.

    Coin symbols are matched case-sensitively in the raw text when uppercase
    (the release format, e.g. ``"FIC"``) and case-insensitively as ``$sym``
    tags; exchange names and keywords match on cleaned lowercase text.
    """

    def __init__(self, coin_symbols: Sequence[str], exchange_names: Sequence[str],
                 extra_keywords: Iterable[str] = ()):
        if not coin_symbols:
            raise ValueError("at least one coin symbol is required")
        self.coin_symbols = {s.upper() for s in coin_symbols}
        self.exchange_names = {e.lower() for e in exchange_names}
        self.keywords = set(PUMP_KEYWORDS) | {k.lower() for k in extra_keywords}
        # One pass regex for uppercase symbol mentions.
        escaped = sorted((re.escape(s) for s in self.coin_symbols), key=len,
                         reverse=True)
        self._symbol_re = re.compile(r"\b(?:" + "|".join(escaped) + r")\b")
        self._tag_re = re.compile(
            r"\$(?:" + "|".join(escaped) + r")\b", re.IGNORECASE
        )

    def matches(self, message: str) -> bool:
        """True when the message must be kept for classification."""
        if self._symbol_re.search(message) or self._tag_re.search(message):
            return True
        cleaned = set(clean_message(message).split())
        if cleaned & self.keywords:
            return True
        return bool(cleaned & self.exchange_names)

    def filter(self, messages: Sequence[str]) -> list[int]:
        """Indices of messages that pass the filter."""
        return [i for i, m in enumerate(messages) if self.matches(m)]
