"""Lexicon-and-rule sentiment analysis in the VADER family (Hutto & Gilbert).

The paper extracts sentiment from Telegram trading chatter with VADER and
aggregates hourly statistics (§7).  VADER itself is unavailable offline, so
we implement the same rule family: a valence lexicon (general + crypto
slang), negation handling, booster/dampener intensification, ALL-CAPS and
exclamation emphasis, and the same compound-score normalization
``s / sqrt(s^2 + 15)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

# Valences roughly on VADER's -4..+4 scale.
LEXICON: dict[str, float] = {
    # general positive
    "good": 1.9, "great": 3.1, "excellent": 3.2, "amazing": 2.8, "love": 3.2,
    "like": 1.5, "win": 2.8, "winner": 2.8, "profit": 2.6, "gain": 2.0,
    "gains": 2.2, "up": 1.2, "high": 1.4, "higher": 1.6, "strong": 2.0,
    "bull": 2.4, "bullish": 2.9, "buy": 1.6, "green": 1.8, "safe": 1.5,
    "best": 3.2, "huge": 1.9, "happy": 2.7, "rich": 2.3, "easy": 1.4,
    "opportunity": 1.8, "success": 2.7, "successful": 2.7, "confident": 2.2,
    "hope": 1.9, "hopeful": 2.0, "nice": 1.8, "solid": 1.7, "breakout": 2.1,
    "rocket": 2.5, "soar": 2.6, "soaring": 2.6, "surge": 2.2, "rally": 2.1,
    "rallying": 2.1, "gem": 2.4, "hodl": 1.4, "support": 1.2, "recover": 1.8,
    "recovery": 1.8, "undervalued": 1.6, "adoption": 1.5, "partnership": 1.7,
    # general negative
    "bad": -2.5, "terrible": -3.1, "awful": -3.0, "hate": -2.7, "loss": -2.4,
    "losses": -2.4, "lose": -2.3, "loser": -2.5, "down": -1.2, "low": -1.3,
    "lower": -1.5, "weak": -1.9, "bear": -2.2, "bearish": -2.8, "sell": -1.3,
    "red": -1.6, "risky": -1.8, "risk": -1.2, "fear": -2.2, "panic": -2.9,
    "crash": -3.2, "crashing": -3.2, "dump": -2.6, "dumping": -2.7,
    "scam": -3.3, "fraud": -3.2, "rug": -2.8, "rekt": -2.9, "drop": -1.9,
    "dropping": -2.0, "plunge": -2.7, "plummet": -2.9, "collapse": -3.0,
    "worry": -1.9, "worried": -2.0, "sad": -2.1, "angry": -2.3, "doubt": -1.5,
    "bubble": -1.7, "manipulation": -2.4, "hack": -2.9, "hacked": -3.0,
    "liquidated": -2.6, "bankrupt": -3.1, "worst": -3.1, "trouble": -2.0,
    "dead": -2.6, "bleeding": -2.3, "overvalued": -1.6, "resistance": -0.8,
    "moon": 2.9, "mooning": 3.0, "lambo": 2.2, "ath": 2.3, "fomo": 0.8,
    "fud": -2.0, "shill": -1.4, "whale": 0.3, "volatile": -1.0,
}

BOOSTERS: dict[str, float] = {
    "very": 0.293, "extremely": 0.293, "really": 0.267, "so": 0.293,
    "super": 0.293, "absolutely": 0.293, "totally": 0.267, "incredibly": 0.293,
    "mega": 0.293, "insanely": 0.293,
    # dampeners
    "slightly": -0.293, "somewhat": -0.293, "barely": -0.293, "kinda": -0.267,
    "marginally": -0.293, "little": -0.267,
}

NEGATIONS = frozenset(
    "not no never neither nobody none cannot cant dont doesnt didnt isnt "
    "arent wasnt werent wont wouldnt shouldnt couldnt aint without".split()
)

_WORD = re.compile(r"[a-zA-Z$']+")
_NORMALIZATION_ALPHA = 15.0
_CAPS_BOOST = 0.733
_EXCLAMATION_BOOST = 0.292
_NEGATION_FLIP = -0.74
_NEGATION_WINDOW = 3


@dataclass(frozen=True)
class SentimentScores:
    """VADER-style output: proportions plus the normalized compound score."""

    neg: float
    neu: float
    pos: float
    compound: float


class SentimentAnalyzer:
    """Rule-based sentiment scorer for short social-media messages."""

    def __init__(self, lexicon: dict[str, float] | None = None):
        self.lexicon = dict(LEXICON if lexicon is None else lexicon)

    def _token_valence(self, tokens: list[str], raw_tokens: list[str], i: int) -> float:
        word = tokens[i]
        valence = self.lexicon.get(word)
        if valence is None:
            return 0.0
        # ALL-CAPS emphasis (only meaningful if the message has mixed case).
        if raw_tokens[i].isupper() and len(raw_tokens[i]) > 1:
            valence += _CAPS_BOOST if valence > 0 else -_CAPS_BOOST
        # Booster words scale, negations flip, scanning a 3-token window back.
        scalar = 0.0
        negated = False
        for back in range(1, _NEGATION_WINDOW + 1):
            j = i - back
            if j < 0:
                break
            prev = tokens[j]
            if prev in BOOSTERS:
                # Boosters further away contribute less (VADER's decay).
                scalar += BOOSTERS[prev] * (1.0 - 0.05 * (back - 1))
            if prev in NEGATIONS:
                negated = True
        if valence > 0:
            valence += scalar
        else:
            valence -= scalar
        if negated:
            valence *= _NEGATION_FLIP
        return valence

    def score(self, text: str) -> SentimentScores:
        """Score one message.

        >>> SentimentAnalyzer().score("huge pump, easy profit!!").compound > 0
        True
        """
        raw_tokens = _WORD.findall(text)
        tokens = [t.lower() for t in raw_tokens]
        valences = [
            self._token_valence(tokens, raw_tokens, i) for i in range(len(tokens))
        ]
        total = float(np.sum(valences))
        # Exclamation emphasis (up to 4 count, as in VADER).
        excl = min(text.count("!"), 4)
        if total > 0:
            total += excl * _EXCLAMATION_BOOST
        elif total < 0:
            total -= excl * _EXCLAMATION_BOOST
        compound = total / np.sqrt(total * total + _NORMALIZATION_ALPHA)
        pos_sum = float(sum(v for v in valences if v > 0))
        neg_sum = float(-sum(v for v in valences if v < 0))
        neu_count = float(sum(1 for v in valences if v == 0))
        denom = pos_sum + neg_sum + neu_count
        if denom == 0:
            return SentimentScores(neg=0.0, neu=1.0, pos=0.0, compound=0.0)
        return SentimentScores(
            neg=round(neg_sum / denom, 4),
            neu=round(neu_count / denom, 4),
            pos=round(pos_sum / denom, 4),
            compound=round(float(np.clip(compound, -1, 1)), 4),
        )

    def score_many(self, texts) -> list[SentimentScores]:
        """Score a batch of messages."""
        return [self.score(t) for t in texts]
