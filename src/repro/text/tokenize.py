"""Message cleaning and tokenization (§3.2 preprocessing).

The paper removes punctuation marks, stop words, URLs and emojis before
representing messages with TF-IDF; this module implements that cleaning.
"""

from __future__ import annotations

import re

URL_PATTERN = re.compile(r"(?:https?://|t\.me/|www\.)\S+", re.IGNORECASE)
# Telegram messages carry emoji; in our ASCII-only pipeline any non-ASCII
# codepoint is treated as emoji-like decoration and removed.
NON_ASCII_PATTERN = re.compile(r"[^\x00-\x7F]+")
PUNCT_PATTERN = re.compile(r"[^\w\s$#@]")
TOKEN_PATTERN = re.compile(r"[a-z0-9$#@_]+")

STOPWORDS = frozenset(
    """a an the and or but if then than so of in on at to for from by with
    about into over after before be is are was were been being am do does did
    have has had will would can could should may might must this that these
    those it its we you they he she i me my your our their them his her us
    as not no nor out up down off again once here there when where why how
    all any both each few more most other some such only own same too very
    just now what which who whom""".split()
)


def strip_urls(text: str) -> str:
    """Remove URLs and Telegram invite links."""
    return URL_PATTERN.sub(" ", text)


def strip_non_ascii(text: str) -> str:
    """Remove emoji and other non-ASCII decoration."""
    return NON_ASCII_PATTERN.sub(" ", text)


def clean_message(text: str) -> str:
    """Lowercase and strip URLs, emojis and punctuation (keeps $/#/@ tags)."""
    text = strip_urls(text)
    text = strip_non_ascii(text)
    text = text.lower()
    text = PUNCT_PATTERN.sub(" ", text)
    return re.sub(r"\s+", " ", text).strip()


def tokenize(text: str, remove_stopwords: bool = True) -> list[str]:
    """Clean and split a message into tokens.

    >>> tokenize("PUMP the $BTC now!!! https://t.me/chan")
    ['pump', '$btc']
    """
    tokens = TOKEN_PATTERN.findall(clean_message(text))
    if remove_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    return tokens


def sentences_to_tokens(messages, remove_stopwords: bool = True) -> list[list[str]]:
    """Tokenize a corpus of raw messages into token lists."""
    return [tokenize(m, remove_stopwords=remove_stopwords) for m in messages]
