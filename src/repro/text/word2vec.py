"""SkipGram and CBoW word embeddings with negative sampling (numpy).

These replace gensim for the paper's cold-start fix (§5.3): coin-symbol
embeddings pre-trained on the Telegram corpus substitute the end-to-end
coin_id embedding.  Training is mini-batched and fully vectorized: a batch
of (center, context) pairs plus ``negative`` sampled noise words per pair,
optimized with SGD on the standard SGNS/CBoW objectives.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.text.vocab import Vocabulary


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.tanh(0.5 * z))


def _scatter_mean_update(matrix: np.ndarray, indices: np.ndarray,
                         updates: np.ndarray, lr: float) -> None:
    """Apply ``matrix[i] -= lr * mean(updates where indices == i)``.

    Plain ``np.add.at`` *sums* duplicate-row gradients, which multiplies the
    effective learning rate by a row's frequency inside the batch and
    destabilizes training on small vocabularies (coin symbols repeat a lot).
    Averaging per row keeps batched SGD close to the sequential reference.
    """
    indices = indices.reshape(-1)
    updates = updates.reshape(len(indices), -1)
    acc = np.zeros((matrix.shape[0], updates.shape[1]))
    counts = np.zeros(matrix.shape[0])
    np.add.at(acc, indices, updates)
    np.add.at(counts, indices, 1.0)
    touched = counts > 0
    matrix[touched] -= lr * acc[touched] / counts[touched, None]


class Word2Vec:
    """Train word embeddings on tokenized sentences.

    Parameters
    ----------
    sentences:
        Corpus as token lists.
    dim:
        Embedding dimensionality.
    window:
        Max distance between center and context (sampled per pair as in the
        reference implementation).
    mode:
        ``"skipgram"`` (SG) or ``"cbow"`` (CBoW) — both appear in Table 6.
    negative:
        Noise words per positive pair.
    subsample:
        Frequent-word subsampling threshold (0 disables).
    """

    def __init__(self, sentences: Sequence[Sequence[str]], dim: int = 32,
                 window: int = 4, mode: str = "skipgram", negative: int = 5,
                 epochs: int = 3, lr: float = 0.05, min_count: int = 2,
                 subsample: float = 0.0, batch_size: int = 1024, seed: int = 0):
        if mode not in ("skipgram", "cbow"):
            raise ValueError("mode must be 'skipgram' or 'cbow'")
        if dim < 1 or window < 1 or negative < 1:
            raise ValueError("dim, window and negative must be positive")
        self.dim = dim
        self.window = window
        self.mode = mode
        self.negative = negative
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.vocab = Vocabulary(sentences, min_count=min_count)
        if len(self.vocab) == 0:
            raise ValueError("no tokens survive min_count filtering")
        rng = np.random.default_rng(seed)
        v = len(self.vocab)
        self.w_in = (rng.random((v, dim)) - 0.5) / dim
        self.w_out = np.zeros((v, dim))
        self._noise = self.vocab.unigram_table()
        self._train(sentences, rng, subsample)

    # -- training ----------------------------------------------------------

    def _pairs(self, sentences, rng: np.random.Generator, subsample: float):
        """Yield (center, context) id pairs over the whole corpus."""
        centers: list[int] = []
        contexts: list[int] = []
        for sentence in sentences:
            ids = self.vocab.encode(sentence)
            if subsample > 0 and len(ids):
                ids = ids[self.vocab.subsample_mask(ids, rng, subsample)]
            n = len(ids)
            if n < 2:
                continue
            spans = rng.integers(1, self.window + 1, size=n)
            for i in range(n):
                lo = max(0, i - int(spans[i]))
                hi = min(n, i + int(spans[i]) + 1)
                for j in range(lo, hi):
                    if j != i:
                        centers.append(int(ids[i]))
                        contexts.append(int(ids[j]))
        return np.array(centers, dtype=np.int64), np.array(contexts, dtype=np.int64)

    def _train(self, sentences, rng: np.random.Generator, subsample: float) -> None:
        centers, contexts = self._pairs(sentences, rng, subsample)
        if len(centers) == 0:
            return
        v = len(self.vocab)
        for epoch in range(self.epochs):
            lr = self.lr * (1.0 - epoch / max(1, self.epochs)) + self.lr * 0.1
            perm = rng.permutation(len(centers))
            for start in range(0, len(perm), self.batch_size):
                batch = perm[start: start + self.batch_size]
                if self.mode == "skipgram":
                    self._sgns_step(centers[batch], contexts[batch], lr, rng, v)
                else:
                    self._cbow_step(centers[batch], contexts[batch], lr, rng, v)

    def _sgns_step(self, centers, contexts, lr, rng, v) -> None:
        b = len(centers)
        negatives = rng.choice(v, size=(b, self.negative), p=self._noise)
        center_vecs = self.w_in[centers]  # (b, d)
        # Positive pairs.
        pos_out = self.w_out[contexts]
        pos_score = _sigmoid((center_vecs * pos_out).sum(axis=1))
        pos_coeff = (pos_score - 1.0)[:, None]  # d/dz of -log sigmoid(z)
        grad_center = pos_coeff * pos_out
        _scatter_mean_update(self.w_out, contexts, pos_coeff * center_vecs, lr)
        # Negative pairs.
        neg_out = self.w_out[negatives]  # (b, k, d)
        neg_score = _sigmoid(np.einsum("bd,bkd->bk", center_vecs, neg_out))
        neg_coeff = neg_score[:, :, None]
        grad_center += np.einsum("bkd->bd", neg_coeff * neg_out)
        _scatter_mean_update(
            self.w_out, negatives, neg_coeff * center_vecs[:, None, :], lr
        )
        _scatter_mean_update(self.w_in, centers, grad_center, lr)

    def _cbow_step(self, centers, contexts, lr, rng, v) -> None:
        # CBoW with window=1-pair granularity: context predicts center.
        b = len(centers)
        negatives = rng.choice(v, size=(b, self.negative), p=self._noise)
        context_vecs = self.w_in[contexts]
        pos_out = self.w_out[centers]
        pos_score = _sigmoid((context_vecs * pos_out).sum(axis=1))
        pos_coeff = (pos_score - 1.0)[:, None]
        grad_context = pos_coeff * pos_out
        _scatter_mean_update(self.w_out, centers, pos_coeff * context_vecs, lr)
        neg_out = self.w_out[negatives]
        neg_score = _sigmoid(np.einsum("bd,bkd->bk", context_vecs, neg_out))
        neg_coeff = neg_score[:, :, None]
        grad_context += np.einsum("bkd->bd", neg_coeff * neg_out)
        _scatter_mean_update(
            self.w_out, negatives, neg_coeff * context_vecs[:, None, :], lr
        )
        _scatter_mean_update(self.w_in, contexts, grad_context, lr)

    # -- lookup API -----------------------------------------------------------

    def __contains__(self, token: str) -> bool:
        return token in self.vocab

    def vector(self, token: str) -> np.ndarray:
        """Embedding vector of a token (input matrix row)."""
        if token not in self.vocab:
            raise KeyError(f"token {token!r} not in vocabulary")
        return self.w_in[self.vocab.index[token]]

    def vectors_for(self, tokens: Sequence[str],
                    default: np.ndarray | None = None) -> np.ndarray:
        """Stack vectors for tokens; unknown tokens get ``default`` (or zeros)."""
        fallback = default if default is not None else np.zeros(self.dim)
        return np.stack([
            self.w_in[self.vocab.index[t]] if t in self.vocab else fallback
            for t in tokens
        ])

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two tokens' embeddings."""
        va, vb = self.vector(a), self.vector(b)
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0:
            return 0.0
        return float(va @ vb / denom)

    def most_similar(self, token: str, k: int = 5) -> list[tuple[str, float]]:
        """Top-k nearest tokens by cosine similarity."""
        target = self.vector(token)
        norms = np.linalg.norm(self.w_in, axis=1) * (np.linalg.norm(target) + 1e-12)
        sims = self.w_in @ target / np.maximum(norms, 1e-12)
        order = np.argsort(-sims)
        out = []
        for idx in order:
            name = self.vocab.tokens[idx]
            if name == token:
                continue
            out.append((name, float(sims[idx])))
            if len(out) == k:
                break
        return out


def cosine_similarity_matrix(vectors: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities of row vectors."""
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    unit = vectors / np.maximum(norms, 1e-12)
    return unit @ unit.T
