"""repro.text — NLP substrate: cleaning, embeddings, sentiment, keywords."""

from repro.text.tokenize import (
    STOPWORDS,
    clean_message,
    sentences_to_tokens,
    strip_non_ascii,
    strip_urls,
    tokenize,
)
from repro.text.vocab import Vocabulary
from repro.text.word2vec import Word2Vec, cosine_similarity_matrix
from repro.text.sentiment import LEXICON, SentimentAnalyzer, SentimentScores
from repro.text.keywords import PUMP_KEYWORDS, KeywordFilter

__all__ = [
    "STOPWORDS",
    "clean_message",
    "tokenize",
    "sentences_to_tokens",
    "strip_urls",
    "strip_non_ascii",
    "Vocabulary",
    "Word2Vec",
    "cosine_similarity_matrix",
    "SentimentAnalyzer",
    "SentimentScores",
    "LEXICON",
    "KeywordFilter",
    "PUMP_KEYWORDS",
]
