"""Event-level analysis (§4.2, Figure 4, Q2: are P&Ds predictable?).

* Exchange distribution of events (the Binance-share drift discussion);
* channels-per-event on Binance (coordination, ≈2.25 in the paper);
* averaged minute-level price/volume trajectories around the pump
  (Figure 4 a-b);
* average returns in ``(x+1, 1]``-hour windows vs. random coins
  (Figure 4 c);
* a verified pre-pump example (Figure 4 d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.simulation.events import PumpEvent
from repro.simulation.world import SyntheticWorld

WINDOW_XS = (1, 3, 6, 12, 24, 36, 48, 60, 72)


@dataclass
class EventStudy:
    """All §4.2 artefacts."""

    exchange_share: dict[str, float]
    avg_channels_binance: float
    minute_grid: np.ndarray          # minutes relative to pump time
    avg_price_curve: np.ndarray      # normalized to 1.0 at -72h
    avg_volume_curve: np.ndarray     # normalized to the -72h level
    window_returns_pumped: dict[int, float]
    window_returns_random: dict[int, float]
    prepump_example: dict[str, np.ndarray] = field(default_factory=dict)

    def peak_window(self) -> int:
        return max(self.window_returns_pumped, key=self.window_returns_pumped.get)


def _binance_btc_events(world: SyntheticWorld) -> list[PumpEvent]:
    return [
        e for e in world.events.events if e.exchange_id == 0 and e.pair == "BTC"
    ]


def exchange_distribution(world: SyntheticWorld) -> dict[str, float]:
    """Share of events per exchange (§4.2's drift table)."""
    events = world.events.events
    if not events:
        raise ValueError("world has no events")
    shares: dict[str, float] = {}
    for event in events:
        name = world.coins.exchange_name(event.exchange_id)
        shares[name] = shares.get(name, 0.0) + 1.0
    return {k: v / len(events) for k, v in sorted(shares.items(),
                                                  key=lambda kv: -kv[1])}


def event_study(world: SyntheticWorld, max_events: int = 120,
                grid_step_minutes: int = 30) -> EventStudy:
    """Averaged trajectories and return windows (Figure 4)."""
    events = _binance_btc_events(world)[:max_events]
    if not events:
        raise ValueError("no Binance/BTC events to study")
    market = world.market

    # Minute grid: -72h .. +24h, coarse far away, fine near the pump.
    coarse = np.arange(-72 * 60, 24 * 60 + 1, grid_step_minutes)
    fine = np.arange(-30, 31, 1)
    grid = np.unique(np.concatenate([coarse, fine]))

    price_curves = []
    volume_curves = []
    for event in events:
        prices = market.minute_close(event.coin_id, event.time, grid)
        volumes = market.minute_volume(event.coin_id, event.time, grid)
        price_curves.append(prices / prices[0])
        volume_curves.append(volumes / max(volumes[0], 1e-12))
    avg_price = np.mean(price_curves, axis=0)
    avg_volume = np.mean(volume_curves, axis=0)

    # Figure 4(c): pumped vs random window returns.
    pumped_returns = {}
    for x in WINDOW_XS:
        vals = [
            float(market.window_return(np.array([e.coin_id]), e.time, x)[0])
            for e in events
        ]
        pumped_returns[x] = float(np.mean(vals))
    rng = np.random.default_rng(world.config.seed + 4242)
    n_random = max(len(events) * 3, 100)
    random_coins = rng.integers(3, world.coins.n_coins, n_random)
    random_hours = rng.uniform(500, world.config.horizon_hours - 200, n_random)
    random_returns = {}
    for x in WINDOW_XS:
        vals = np.array([
            float(market.window_return(np.array([c]), h, x)[0])
            for c, h in zip(random_coins[:150], random_hours[:150])
        ])
        random_returns[x] = float(vals.mean())

    # Figure 4(d): the strongest VIP pre-pump among studied events.
    example: dict[str, np.ndarray] = {}
    best = None
    for event in events:
        if event.profile.vip_times and max(event.profile.vip_sizes) > 0.02:
            best = event
            break
    if best is not None:
        vip_minute = int(best.profile.vip_times[0] * 60)
        window = np.arange(vip_minute - 120, vip_minute + 121, 2)
        example = {
            "minutes": window.astype(float),
            "volume": market.minute_volume(best.coin_id, best.time, window),
        }

    binance_events = [e for e in world.events.events if e.exchange_id == 0]
    avg_channels = float(np.mean([e.n_channels for e in binance_events]))
    return EventStudy(
        exchange_share=exchange_distribution(world),
        avg_channels_binance=avg_channels,
        minute_grid=grid.astype(float),
        avg_price_curve=avg_price,
        avg_volume_curve=avg_volume,
        window_returns_pumped=pumped_returns,
        window_returns_random=random_returns,
        prepump_example=example,
    )


def volume_onset_hour(study: EventStudy, threshold: float = 1.5) -> float:
    """Hours before the pump where average volume first stays elevated.

    The paper reads ~57h off Figure 4(b).
    """
    grid_hours = study.minute_grid / 60.0
    pre = grid_hours < -1.0
    hours = grid_hours[pre]
    curve = study.avg_volume_curve[pre]
    elevated = curve >= threshold
    for i in range(len(hours)):
        if elevated[i:].all():
            return float(-hours[i])
    return 0.0
