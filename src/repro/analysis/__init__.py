"""repro.analysis — the §4 observational studies and figure data."""

from repro.analysis.coin_level import (
    CoinLevelStudy,
    DistributionSummary,
    cohort_edges,
    coin_level_study,
)
from repro.analysis.event_level import (
    EventStudy,
    WINDOW_XS,
    event_study,
    exchange_distribution,
    volume_onset_hour,
)
from repro.analysis.channel_level import (
    ChannelLevelStudy,
    ChannelScatter,
    SCATTER_FEATURES,
    channel_level_study,
)
from repro.analysis.semantic import STRATEGIES, SemanticStudy, semantic_study
from repro.analysis.stats import (
    BootstrapInterval,
    bootstrap_hr,
    mae_bootstrap,
    paired_bootstrap_winrate,
)
from repro.analysis.attention_viz import (
    FeaturePattern,
    classify_patterns,
    dominant_period,
    periodicity_spectrum,
    render_heatmap,
)

__all__ = [
    "coin_level_study", "CoinLevelStudy", "DistributionSummary", "cohort_edges",
    "event_study", "EventStudy", "exchange_distribution", "volume_onset_hour",
    "WINDOW_XS",
    "channel_level_study", "ChannelLevelStudy", "ChannelScatter",
    "SCATTER_FEATURES",
    "semantic_study", "SemanticStudy", "STRATEGIES",
    "BootstrapInterval", "bootstrap_hr", "paired_bootstrap_winrate",
    "mae_bootstrap",
    "classify_patterns", "FeaturePattern", "periodicity_spectrum",
    "dominant_period", "render_heatmap",
]
