"""Attention-pattern extraction (Figure 10).

Classifies each feature's learned positional-attention pattern as
*temporal-proximity* (mass concentrated on the most recent positions) or
*skip-correlated* (mass on strictly older positions / periodic spikes), and
extracts heatmaps for rendering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FeaturePattern:
    """Summary of one feature's attention behaviour."""

    feature_index: int
    heatmap: np.ndarray          # (channels, N)
    mean_position: float         # attention-weighted mean position (0 = newest)
    peak_position: int           # argmax of the averaged head
    proximity_mass: float        # mass on the two newest positions
    is_skip_correlated: bool

    @property
    def is_proximity(self) -> bool:
        return not self.is_skip_correlated


def classify_patterns(per_feature_heatmaps: list[np.ndarray],
                      proximity_positions: int = 2,
                      proximity_threshold: float = 0.5) -> list[FeaturePattern]:
    """Label each feature given its ``(C_j, N)`` attention heads.

    A feature is *proximity* when the averaged head puts at least
    ``proximity_threshold`` of its mass on the newest ``proximity_positions``
    positions; otherwise it is skip-correlated.
    """
    patterns = []
    for j, heads in enumerate(per_feature_heatmaps):
        heads = np.asarray(heads)
        if heads.ndim != 2:
            raise ValueError("each heatmap must be (channels, positions)")
        mean_head = heads.mean(axis=0)
        mean_head = mean_head / mean_head.sum()
        positions = np.arange(len(mean_head))
        proximity_mass = float(mean_head[:proximity_positions].sum())
        patterns.append(FeaturePattern(
            feature_index=j,
            heatmap=heads,
            mean_position=float((mean_head * positions).sum()),
            peak_position=int(mean_head.argmax()),
            proximity_mass=proximity_mass,
            is_skip_correlated=proximity_mass < proximity_threshold,
        ))
    return patterns


def periodicity_spectrum(head: np.ndarray) -> np.ndarray:
    """Magnitude spectrum of one attention head (periodic spikes show up as
    strong non-DC components — how §7.2 spots the 24/48-hour channels)."""
    head = np.asarray(head, dtype=float)
    centred = head - head.mean()
    return np.abs(np.fft.rfft(centred))


def dominant_period(head: np.ndarray) -> float | None:
    """Dominant attention periodicity in positions, or None if flat."""
    spectrum = periodicity_spectrum(head)
    if len(spectrum) < 3:
        return None
    k = int(spectrum[1:].argmax()) + 1
    if spectrum[k] < 1e-9:
        return None
    return len(head) / k


def render_heatmap(heads: np.ndarray, width_chars: int = 60) -> str:
    """ASCII rendering of a (channels, N) heatmap for benchmark output."""
    heads = np.asarray(heads)
    shades = " .:-=+*#%@"
    lines = []
    for row in heads:
        scaled = row / max(row.max(), 1e-12)
        idx = np.minimum((scaled * (len(shades) - 1)).astype(int), len(shades) - 1)
        line = "".join(shades[i] for i in idx[:width_chars])
        lines.append(line)
    return "\n".join(lines)
