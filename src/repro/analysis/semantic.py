"""Semantic-similarity analysis (§4.3, Figure 6).

SkipGram embeddings are pre-trained on the Telegram corpus; the cosine
similarity of coin pairs is compared under three selection strategies:

1. pairs pumped by the *same channel*;
2. pairs from the set of *all pumped coins*;
3. *random* pairs from all available coins.

Paper result: mean similarity 0.92 > 0.80 > 0.72, i.e. channels pick
semantically coherent coins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.sessions import PnDSample
from repro.simulation.world import SyntheticWorld
from repro.text import Word2Vec, sentences_to_tokens

STRATEGIES = ("same_channel", "pumped_set", "all_coins")


@dataclass
class SemanticStudy:
    """Similarity samples and means per strategy (Figure 6)."""

    similarities: dict[str, np.ndarray]

    def mean(self, strategy: str) -> float:
        return float(self.similarities[strategy].mean())

    def ordering_holds(self) -> bool:
        """same-channel > pumped-set > random (the paper's ordering)."""
        return (
            self.mean("same_channel") > self.mean("pumped_set")
            > self.mean("all_coins")
        )


def _pair_similarities(vectors: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    a = vectors[pairs[:, 0]]
    b = vectors[pairs[:, 1]]
    norms = np.linalg.norm(a, axis=1) * np.linalg.norm(b, axis=1)
    return (a * b).sum(axis=1) / np.maximum(norms, 1e-12)


def semantic_study(world: SyntheticWorld, samples: Sequence[PnDSample],
                   embeddings: Word2Vec | None = None, n_pairs: int = 400,
                   seed: int = 0) -> SemanticStudy:
    """Compute Figure 6's three similarity distributions."""
    if not samples:
        raise ValueError("no samples to analyse")
    if embeddings is None:
        corpus = sentences_to_tokens(world.telegram_corpus())
        embeddings = Word2Vec(corpus, dim=24, mode="skipgram", epochs=2,
                              min_count=2, seed=seed)
    # Coin vectors: coins missing from the vocabulary are skipped.
    symbol_vectors = {}
    for coin_id, symbol in enumerate(world.coins.symbols):
        token = symbol.lower()
        if token in embeddings:
            symbol_vectors[coin_id] = embeddings.vector(token)
    known = sorted(symbol_vectors)
    index = {coin: i for i, coin in enumerate(known)}
    vectors = np.stack([symbol_vectors[c] for c in known])
    rng = np.random.default_rng(seed)

    def sample_pairs(pool_pairs: list[tuple[int, int]]) -> np.ndarray:
        if not pool_pairs:
            raise ValueError("no candidate pairs for a strategy")
        rows = rng.integers(0, len(pool_pairs), size=min(n_pairs, len(pool_pairs) * 3))
        return np.array([pool_pairs[r] for r in rows])

    # Strategy 1: same-channel pairs.
    by_channel: dict[int, list[int]] = {}
    for sample in samples:
        if sample.coin_id in index:
            by_channel.setdefault(sample.channel_id, []).append(sample.coin_id)
    same_pairs = []
    for coins in by_channel.values():
        unique = sorted(set(coins))
        for i in range(len(unique)):
            for j in range(i + 1, len(unique)):
                same_pairs.append((index[unique[i]], index[unique[j]]))
    # Strategy 2: all pumped coins.
    pumped = sorted({s.coin_id for s in samples if s.coin_id in index})
    pumped_idx = [index[c] for c in pumped]
    pumped_pairs = [
        (a, b)
        for i, a in enumerate(pumped_idx)
        for b in pumped_idx[i + 1:]
    ]
    # Strategy 3: random pairs from all known coins.
    n_known = len(known)
    random_pairs = [
        (int(a), int(b))
        for a, b in rng.integers(0, n_known, size=(n_pairs, 2))
        if a != b
    ]
    return SemanticStudy(similarities={
        "same_channel": _pair_similarities(vectors, sample_pairs(same_pairs)),
        "pumped_set": _pair_similarities(vectors, sample_pairs(pumped_pairs)),
        "all_coins": _pair_similarities(vectors, np.array(random_pairs)),
    })
