"""Statistical tooling: bootstrap confidence intervals for ranking metrics.

HR@k on a few dozen test events quantizes heavily, so EXPERIMENTS.md
reports bootstrap intervals alongside point estimates, and model
comparisons use paired bootstrap win-rates rather than raw differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml import hit_ratio_at_k


@dataclass(frozen=True)
class BootstrapInterval:
    """Point estimate with a percentile bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_hr(rank_lists: Sequence[np.ndarray], k: int,
                 n_resamples: int = 1000, confidence: float = 0.95,
                 seed: int = 0) -> BootstrapInterval:
    """Percentile bootstrap CI of HR@k over ranking lists."""
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if not len(rank_lists):
        raise ValueError("no rank lists given")
    rng = np.random.default_rng(seed)
    point = hit_ratio_at_k(rank_lists, ks=[k])[k]
    n = len(rank_lists)
    samples = np.empty(n_resamples)
    for b in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        samples[b] = hit_ratio_at_k([rank_lists[i] for i in idx], ks=[k])[k]
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        point=float(point),
        low=float(np.quantile(samples, alpha)),
        high=float(np.quantile(samples, 1.0 - alpha)),
        confidence=confidence,
    )


def paired_bootstrap_winrate(rank_lists_a: Sequence[np.ndarray],
                             rank_lists_b: Sequence[np.ndarray], k: int,
                             n_resamples: int = 1000,
                             seed: int = 0) -> float:
    """P(model A's HR@k >= model B's) under paired resampling of events.

    Both inputs must be aligned per event (same order, same candidates,
    different scores).  Values near 1.0 mean A dominates; near 0.5 means
    the comparison is noise.
    """
    if len(rank_lists_a) != len(rank_lists_b):
        raise ValueError("paired comparison needs aligned rank lists")
    if not len(rank_lists_a):
        raise ValueError("no rank lists given")
    rng = np.random.default_rng(seed)
    n = len(rank_lists_a)
    wins = 0
    for _ in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        hr_a = hit_ratio_at_k([rank_lists_a[i] for i in idx], ks=[k])[k]
        hr_b = hit_ratio_at_k([rank_lists_b[i] for i in idx], ks=[k])[k]
        if hr_a >= hr_b:
            wins += 1
    return wins / n_resamples


def mae_bootstrap(errors: np.ndarray, n_resamples: int = 1000,
                  confidence: float = 0.95, seed: int = 0) -> BootstrapInterval:
    """Bootstrap CI of the mean absolute error from per-sample errors."""
    errors = np.abs(np.asarray(errors, dtype=float))
    if errors.size == 0:
        raise ValueError("no errors given")
    rng = np.random.default_rng(seed)
    n = len(errors)
    samples = np.array([
        errors[rng.integers(0, n, size=n)].mean() for _ in range(n_resamples)
    ])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        point=float(errors.mean()),
        low=float(np.quantile(samples, alpha)),
        high=float(np.quantile(samples, 1.0 - alpha)),
        confidence=confidence,
    )
