"""Coin-level analysis (§4.1, Figure 3, Q1: which coins get pumped?).

Compares distributions of market cap, Alexa rank, Reddit subscribers and
Twitter followers between pumped coins and rank-bucketed cohorts of the
full universe.  The paper's findings: pumped coins' cap/Alexa look like the
top-1001..2000 cohort (mid-caps), while their social indices look like the
top-1..1000 cohort (socially loud).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.sessions import PnDSample
from repro.simulation.world import SyntheticWorld

FEATURES = ("market_cap", "alexa_rank", "reddit_subscribers", "twitter_followers")


@dataclass(frozen=True)
class DistributionSummary:
    """Quartiles of a log-scale distribution."""

    q25: float
    median: float
    q75: float
    mean: float

    @classmethod
    def of(cls, values: np.ndarray) -> "DistributionSummary":
        logs = np.log(np.maximum(values, 1e-12))
        return cls(
            q25=float(np.quantile(logs, 0.25)),
            median=float(np.quantile(logs, 0.5)),
            q75=float(np.quantile(logs, 0.75)),
            mean=float(logs.mean()),
        )


@dataclass
class CoinLevelStudy:
    """Figure 3's data: per-feature summaries for pumped vs rank cohorts."""

    summaries: dict[str, dict[str, DistributionSummary]]
    repump_rate: float
    n_cohorts: int

    def closest_cohort(self, feature: str) -> str:
        """Which rank cohort the pumped distribution resembles most."""
        pumped = self.summaries[feature]["pumped"].median
        best, best_gap = "", np.inf
        for name, summary in self.summaries[feature].items():
            if name == "pumped":
                continue
            gap = abs(summary.median - pumped)
            if gap < best_gap:
                best, best_gap = name, gap
        return best


def cohort_edges(n_coins: int, n_cohorts: int = 4) -> list[tuple[int, int]]:
    """Rank buckets: top 1..B, B+1..2B, ... (B = n_coins / n_cohorts)."""
    width = n_coins // n_cohorts
    return [(i * width, min((i + 1) * width, n_coins)) for i in range(n_cohorts)]


def coin_level_study(world: SyntheticWorld, samples: Sequence[PnDSample],
                     n_cohorts: int = 4) -> CoinLevelStudy:
    """Build Figure 3's distribution comparison from extracted samples."""
    if not samples:
        raise ValueError("no samples to analyse")
    universe = world.coins
    pumped_ids = np.array(sorted({s.coin_id for s in samples}))
    arrays = {
        "market_cap": universe.market_cap,
        "alexa_rank": universe.alexa_rank,
        "reddit_subscribers": universe.reddit_subscribers,
        "twitter_followers": universe.twitter_followers,
    }
    summaries: dict[str, dict[str, DistributionSummary]] = {}
    edges = cohort_edges(universe.n_coins, n_cohorts)
    for feature, values in arrays.items():
        groups = {"pumped": DistributionSummary.of(values[pumped_ids])}
        for lo, hi in edges:
            groups[f"top_{lo + 1}_{hi}"] = DistributionSummary.of(values[lo:hi])
        summaries[feature] = groups

    # Re-pump rate: fraction of samples whose coin was pumped before (§4.1
    # reports 60.1%).
    seen: set[int] = set()
    repumps = 0
    for sample in sorted(samples, key=lambda s: s.time):
        if sample.coin_id in seen:
            repumps += 1
        seen.add(sample.coin_id)
    return CoinLevelStudy(
        summaries=summaries,
        repump_rate=repumps / len(samples),
        n_cohorts=n_cohorts,
    )
