"""Channel-level analysis (§4.3, Figure 5, Q3: do strategies differ?).

Scatter data of pumped-coin statistics by channel, and a homogeneity index:
the ratio of mean within-channel spread to the global spread — below 1.0
means intra-channel homogeneity + inter-channel heterogeneity (finding A3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.sessions import PnDSample
from repro.simulation.world import SyntheticWorld

SCATTER_FEATURES = ("market_cap", "alexa_rank", "reddit_subscribers")


@dataclass
class ChannelScatter:
    """Figure 5's data for one feature."""

    feature: str
    channel_index: np.ndarray   # x-coordinates (dense channel index)
    values: np.ndarray          # y-coordinates (log scale)
    homogeneity_ratio: float    # mean within-channel std / global std


@dataclass
class ChannelLevelStudy:
    scatters: dict[str, ChannelScatter]
    n_channels: int

    def is_homogeneous(self, feature: str, threshold: float = 0.9) -> bool:
        return self.scatters[feature].homogeneity_ratio < threshold


def channel_level_study(world: SyntheticWorld, samples: Sequence[PnDSample],
                        min_history: int = 4) -> ChannelLevelStudy:
    """Build Figure 5 scatter data from extracted samples."""
    if not samples:
        raise ValueError("no samples to analyse")
    universe = world.coins
    arrays = {
        "market_cap": universe.market_cap,
        "alexa_rank": universe.alexa_rank,
        "reddit_subscribers": universe.reddit_subscribers,
    }
    by_channel: dict[int, list[int]] = {}
    for sample in samples:
        by_channel.setdefault(sample.channel_id, []).append(sample.coin_id)
    eligible = {
        cid: coins for cid, coins in by_channel.items() if len(coins) >= min_history
    }
    if not eligible:
        raise ValueError("no channel has enough pump history")
    channel_order = sorted(eligible)
    scatters = {}
    for feature, values in arrays.items():
        xs: list[int] = []
        ys: list[float] = []
        within: list[float] = []
        for index, cid in enumerate(channel_order):
            logs = np.log(values[np.array(eligible[cid])])
            xs.extend([index] * len(logs))
            ys.extend(logs.tolist())
            within.append(float(logs.std()))
        global_std = float(np.std(ys))
        scatters[feature] = ChannelScatter(
            feature=feature,
            channel_index=np.array(xs),
            values=np.array(ys),
            homogeneity_ratio=float(np.mean(within)) / max(global_std, 1e-12),
        )
    return ChannelLevelStudy(scatters=scatters, n_channels=len(channel_order))
