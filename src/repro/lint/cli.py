"""Command-line front end for :mod:`repro.lint`.

``repro lint`` (or ``python -m repro lint``) wraps :func:`run_lint`:

* exit 0 — clean (baselined findings alone never fail);
* exit 2 — fresh error findings, or any fresh finding under
  ``--strict``;
* exit 3 — the run itself failed (unparseable tree, bad baseline,
  unknown ``--rule``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.engine import LintReport, UnknownRuleError, run_lint
from repro.lint.findings import BaselineError, write_baseline
from repro.lint.project import ProjectError
from repro.lint.rules import ALL_RULES

DEFAULT_BASELINE = "lint-baseline.json"

EXIT_CLEAN = 0
EXIT_FINDINGS = 2
EXIT_USAGE = 3


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "path", nargs="?", default="src",
        help="directory to lint (default: src)")
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on any fresh finding, warnings included (CI mode)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON on stdout")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="only run the given rule family (DEP) or id (DEP001); "
             "repeatable")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE} next to the "
             f"lint root, when present)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather every current finding into the baseline file "
             "and exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule reference and exit")


def _default_baseline(root: str) -> str | None:
    """``lint-baseline.json`` beside the lint root (repo root for src)."""
    candidate = Path(root).resolve().parent / DEFAULT_BASELINE
    sibling = Path(root).resolve() / DEFAULT_BASELINE
    for path in (candidate, sibling):
        if path.exists():
            return str(path)
    # Nothing on disk yet: writes go next to the root's parent.
    return str(candidate)


def _print_rules(out) -> None:
    for rule in ALL_RULES:
        print(f"{rule.id:8s} {rule.summary}", file=out)
        for rid in rule.ids:
            print(f"  {rid}", file=out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    add_arguments(parser)
    args = parser.parse_args(argv)
    return run(args)


def run(args: argparse.Namespace,
        out=None, err=None) -> int:
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr

    if args.list_rules:
        _print_rules(out)
        return EXIT_CLEAN

    baseline = args.baseline or _default_baseline(args.path)
    try:
        report: LintReport = run_lint(
            args.path, rule_ids_filter=args.rule,
            baseline_path=baseline,
            all_findings=args.write_baseline,
        )
    except (ProjectError, BaselineError, UnknownRuleError) as exc:
        print(f"repro lint: {exc}", file=err)
        return EXIT_USAGE

    if args.write_baseline:
        write_baseline(baseline, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {baseline}",
              file=out)
        return EXIT_CLEAN

    if args.as_json:
        print(json.dumps(report.to_payload(args.strict), indent=2),
              file=out)
        return report.exit_code(args.strict)

    for finding in report.findings:
        print(finding.render(), file=out)
    for finding in report.baselined:
        print(f"{finding.render()} [baselined]", file=out)
    fresh = len(report.findings)
    print(
        f"checked {report.modules} module(s): {fresh} finding(s) "
        f"({len(report.errors)} error(s), {len(report.warnings)} "
        f"warning(s)), {len(report.baselined)} baselined, "
        f"{report.suppressed} suppressed",
        file=out,
    )
    return report.exit_code(args.strict)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())


__all__ = ["add_arguments", "main", "run",
           "DEFAULT_BASELINE", "EXIT_CLEAN", "EXIT_FINDINGS", "EXIT_USAGE"]
