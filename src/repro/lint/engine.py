"""The lint engine: load, check, suppress, baseline, report.

:func:`run_lint` is the single entry point both the CLI and the tests
use.  It parses the tree once, runs every selected rule, drops findings
carrying an inline ``# repro-lint: allow[RULE]`` on their line, splits
the rest against the baseline, and returns a :class:`LintReport` whose
:meth:`~LintReport.exit_code` encodes the CI contract:

* plain run — fail (2) only on *fresh* error-severity findings;
* ``--strict`` — fail on any fresh finding, warnings included.

Baselined findings are still reported (they are debt, not absolution)
but never fail the build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import (
    Finding,
    is_suppressed,
    load_baseline,
)
from repro.lint.project import Project, load_project
from repro.lint.rules import ALL_RULES, rule_ids


class UnknownRuleError(ValueError):
    """``--rule`` named an id no registered rule can emit."""


@dataclass
class LintReport:
    """Everything one lint run produced."""

    root: str
    findings: list[Finding] = field(default_factory=list)   # fresh
    baselined: list[Finding] = field(default_factory=list)  # grandfathered
    suppressed: int = 0
    modules: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self, strict: bool = False) -> int:
        if strict:
            return 2 if self.findings else 0
        return 2 if self.errors else 0

    def to_payload(self, strict: bool = False) -> dict:
        return {
            "root": self.root,
            "modules": self.modules,
            "suppressed": self.suppressed,
            "strict": strict,
            "exit_code": self.exit_code(strict),
            "findings": [f.to_payload() for f in self.findings],
            "baselined": [f.to_payload() for f in self.baselined],
        }


def _select_rules(only: list[str] | None):
    if not only:
        return list(ALL_RULES), None
    known = set(rule_ids())
    wanted = set(only)
    unknown = sorted(wanted - known - {r.id for r in ALL_RULES})
    if unknown:
        raise UnknownRuleError(
            f"unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(rule_ids())})"
        )
    selected = [rule for rule in ALL_RULES
                if rule.id in wanted or wanted & set(rule.ids)]
    # When a concrete id was named (DET001), keep only those findings.
    concrete = {rid for rid in wanted if rid in known}
    return selected, (concrete or None)


def run_lint(root: str | Path, rule_ids_filter: list[str] | None = None,
             baseline_path: str | Path | None = None,
             all_findings: bool = False) -> LintReport:
    """Lint ``root`` and return the report.

    ``rule_ids_filter`` takes rule families (``DEP``) or concrete ids
    (``DEP001``); ``baseline_path`` points at the grandfather file (a
    missing file is an empty baseline).  ``all_findings=True`` skips
    baseline splitting (used by ``--write-baseline``).
    """
    project: Project = load_project(root)
    rules, concrete = _select_rules(rule_ids_filter)
    baseline = set() if all_findings else load_baseline(baseline_path)

    report = LintReport(root=str(project.root), modules=len(project.modules))
    by_relpath = {module.relpath: module for module in project.modules}
    collected: list[Finding] = []
    for rule in rules:
        for finding in rule.check(project):
            if concrete is not None and finding.rule not in concrete:
                continue
            module = by_relpath.get(finding.path)
            if module is not None and is_suppressed(
                    finding, module.suppressions):
                report.suppressed += 1
                continue
            collected.append(finding)

    collected.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    for finding in collected:
        if finding.fingerprint() in baseline:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    return report


__all__ = ["LintReport", "UnknownRuleError", "run_lint"]
