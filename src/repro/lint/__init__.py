"""repro.lint — stdlib-only static analysis for the repro codebase.

Five AST-based checker families enforce the invariants PR 1-7 built by
hand and previously defended only by grep and code review:

========  ===========================================================
family    invariant
========  ===========================================================
LAYER     architecture DAG: serving/pipeline layers never touch the
          simulator; ``repro.nn`` never imports serving; no import
          cycles
DEP       dependency policy: serving is stdlib+numpy; scipy/networkx
          only in the offline-analysis homes, and lazily there
LOCK      lock discipline: attributes guarded by a lock are always
          mutated under it
DET       determinism: no wall clock, unseeded RNG or set-iteration
          order dependence in scoring/feature/compile paths
WIRE      wire contract: gateway error codes registered in
          ``schema.ERROR_CODES``; metric names follow the scrape
          conventions
========  ===========================================================

Run via ``repro lint [--strict] [--json] [--rule ID] src`` or
programmatically through :func:`repro.lint.run_lint`.
"""

from repro.lint.engine import LintReport, UnknownRuleError, run_lint
from repro.lint.findings import (
    BaselineError,
    Finding,
    load_baseline,
    write_baseline,
)
from repro.lint.project import Project, ProjectError, load_project
from repro.lint.rules import ALL_RULES, rule_ids

__all__ = [
    "ALL_RULES", "BaselineError", "Finding", "LintReport", "Project",
    "ProjectError", "UnknownRuleError", "load_baseline", "load_project",
    "rule_ids", "run_lint", "write_baseline",
]
