"""Project model: parsed modules plus a resolved import graph.

The engine parses every ``*.py`` under the lint root exactly once and
hands rules a :class:`Project`:

* per-file: the :class:`ModuleInfo` (dotted name, AST, source,
  suppression map) for single-file rules;
* whole-project: :attr:`Project.imports` — every import statement each
  module makes, resolved to a dotted target and tagged with whether it
  executes at import time (module/class level) or lazily (inside a
  function) or never (under ``if TYPE_CHECKING:``).

Resolution is purely static: ``from repro.serving import service`` is an
edge to ``repro.serving.service`` when that module exists in the tree,
else to the package ``repro.serving``; relative imports resolve against
the importing module's package.  External imports keep their dotted name
(``scipy.special``) — dependency rules key on the top-level package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import parse_suppressions


@dataclass(frozen=True)
class ImportRecord:
    """One import statement, resolved."""

    target: str           # dotted module, best-effort resolved
    lineno: int
    lazy: bool            # inside a function body (runs on call, not import)
    type_checking: bool   # under `if TYPE_CHECKING:` (never runs)

    @property
    def top_level(self) -> str:
        return self.target.split(".", 1)[0]

    @property
    def at_import_time(self) -> bool:
        return not self.lazy and not self.type_checking


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path            # absolute
    relpath: str          # posix, relative to the lint root
    name: str             # dotted module name ("repro.serving.service")
    tree: ast.Module
    source: str
    is_package: bool      # an __init__.py
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package this module lives in (itself, for ``__init__``)."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""


class ProjectError(ValueError):
    """The lint root is unusable (missing, or a file fails to parse)."""


@dataclass
class Project:
    """Everything the rules need, parsed once."""

    root: Path
    modules: list[ModuleInfo]
    by_name: dict[str, ModuleInfo]
    imports: dict[str, list[ImportRecord]]

    def module_exists(self, name: str) -> bool:
        return name in self.by_name

    def modules_under(self, prefix: str) -> list[ModuleInfo]:
        """Modules whose dotted name equals or lives under ``prefix``."""
        return [m for m in self.modules
                if m.name == prefix or m.name.startswith(prefix + ".")]


def _module_name(relpath: Path) -> tuple[str, bool]:
    parts = list(relpath.with_suffix("").parts)
    if parts[-1] == "__init__":
        return ".".join(parts[:-1]), True
    return ".".join(parts), False


class _ImportVisitor(ast.NodeVisitor):
    """Collect imports with laziness / TYPE_CHECKING context."""

    def __init__(self, module: ModuleInfo, project_modules: set[str]):
        self.module = module
        self.known = project_modules
        self.records: list[ImportRecord] = []
        self._function_depth = 0
        self._type_checking_depth = 0

    # -- context tracking ----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        if isinstance(test, ast.Name):
            return test.id == "TYPE_CHECKING"
        if isinstance(test, ast.Attribute):
            return test.attr == "TYPE_CHECKING"
        return False

    def visit_If(self, node: ast.If) -> None:
        if self._is_type_checking(node.test):
            self._type_checking_depth += 1
            for child in node.body:
                self.visit(child)
            self._type_checking_depth -= 1
            for child in node.orelse:
                self.visit(child)
            return
        self.generic_visit(node)

    # -- import statements ---------------------------------------------------

    def _record(self, target: str, lineno: int) -> None:
        self.records.append(ImportRecord(
            target=target, lineno=lineno,
            lazy=self._function_depth > 0,
            type_checking=self._type_checking_depth > 0,
        ))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._record(alias.name, node.lineno)

    def _base_package(self, level: int) -> str | None:
        """The package a relative import resolves against."""
        package = self.module.package
        # level 1 = the containing package; each extra level climbs one.
        for _ in range(level - 1):
            if "." not in package:
                return package or None
            package = package.rsplit(".", 1)[0]
        return package or None

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self._base_package(node.level)
            if base is None:
                return
            prefix = f"{base}.{node.module}" if node.module else base
        else:
            prefix = node.module or ""
        if not prefix:
            return
        for alias in node.names:
            # `from pkg import sub` names the module pkg.sub when it is
            # one; otherwise the dependency is on pkg itself.
            candidate = f"{prefix}.{alias.name}"
            target = candidate if candidate in self.known else prefix
            self._record(target, node.lineno)


def load_project(root: str | Path) -> Project:
    """Parse every ``*.py`` under ``root`` into a :class:`Project`.

    ``root`` is the directory *containing* the top-level package(s) —
    e.g. ``src``.  Passing a package directory (one with ``__init__.py``)
    transparently lints from its parent, so ``repro lint src/repro`` and
    ``repro lint src`` agree.
    """
    root = Path(root).resolve()
    if root.is_file():
        raise ProjectError(f"lint root {root} is a file, not a directory")
    if not root.is_dir():
        raise ProjectError(f"lint root {root} does not exist")
    if (root / "__init__.py").exists():
        root = root.parent

    modules: list[ModuleInfo] = []
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root)
        if "__pycache__" in relpath.parts:
            continue
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            raise ProjectError(f"cannot parse {relpath}: {exc}") from exc
        name, is_package = _module_name(relpath)
        if not name:
            continue  # a stray top-level __init__.py directly under root
        modules.append(ModuleInfo(
            path=path, relpath=relpath.as_posix(), name=name, tree=tree,
            source=source, is_package=is_package,
            suppressions=parse_suppressions(source),
        ))

    by_name = {module.name: module for module in modules}
    imports: dict[str, list[ImportRecord]] = {}
    known = set(by_name)
    for module in modules:
        visitor = _ImportVisitor(module, known)
        visitor.visit(module.tree)
        imports[module.name] = visitor.records
    return Project(root=root, modules=modules, by_name=by_name,
                   imports=imports)


__all__ = ["ImportRecord", "ModuleInfo", "Project", "ProjectError",
           "load_project"]
