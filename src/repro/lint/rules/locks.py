"""LOCK001 — lockset-style discipline for classes that own locks.

The serving stack mutates shared state from N gateway handler threads;
every such mutation must happen under the lock that guards it.  The
checker is a static approximation of a lockset analysis:

* a class *owns a lock* when a method assigns
  ``self.X = threading.Lock()`` / ``RLock()`` / ``Condition(...)``, or
  when any method enters ``with self.X:`` (covers locks injected by a
  collaborator, like the registry lock each metric shares);
* an instance attribute is *guarded* when at least one mutation of it
  (assignment, augmented assignment, ``self.attr[...] = ...`` item
  store, ``del``) happens lexically inside a ``with self.<lock>:``
  block;
* a guarded attribute mutated *outside* every lock block is flagged —
  the signature of a data race (one code path takes the lock, another
  forgot).

``__init__``/``__new__`` are exempt (construction happens-before
publication to other threads), and mutations inside nested function
definitions are skipped (they execute on an unknown call path).  A
mutation that is genuinely safe because *every caller* holds the lock
carries an inline ``# repro-lint: allow[LOCK001]`` with the invariant
spelled out.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.project import ModuleInfo, Project

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
_EXEMPT_METHODS = {"__init__", "__new__"}


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``"X"``, else None."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _is_lock_factory(call: ast.expr) -> bool:
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else \
        func.id if isinstance(func, ast.Name) else None
    return name in _LOCK_FACTORIES


class _Mutation:
    __slots__ = ("attr", "lineno", "locked", "method")

    def __init__(self, attr: str, lineno: int, locked: bool, method: str):
        self.attr = attr
        self.lineno = lineno
        self.locked = locked
        self.method = method


class _MethodScanner(ast.NodeVisitor):
    """Walk one method body tracking the with-lock nesting depth."""

    def __init__(self, method_name: str, lock_attrs: set[str]):
        self.method = method_name
        self.lock_attrs = lock_attrs
        self.mutations: list[_Mutation] = []
        self._lock_depth = 0

    # Nested defs run on their own schedule; analyzing their bodies as if
    # they executed here would mislabel both lockedness and reachability.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef            # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        held = sum(
            1 for item in node.items
            if _self_attr(item.context_expr) in self.lock_attrs
        )
        self._lock_depth += held
        for item in node.items:
            self.visit(item.context_expr)
        for child in node.body:
            self.visit(child)
        self._lock_depth -= held

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    # -- mutation collection -------------------------------------------------

    def _record_target(self, target: ast.expr, lineno: int) -> None:
        attr = _self_attr(target)
        if attr is None and isinstance(target, ast.Subscript):
            # self.attr[key] = ... mutates the container held in attr.
            attr = _self_attr(target.value)
        if attr is None and isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, lineno)
            return
        if attr is not None:
            self.mutations.append(_Mutation(
                attr, lineno, self._lock_depth > 0, self.method))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node.lineno)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node.lineno)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node.lineno)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target, node.lineno)


def _lock_attrs(class_node: ast.ClassDef) -> set[str]:
    """Attributes this class treats as locks (allocation or with-usage)."""
    attrs: set[str] = set()
    for node in ast.walk(class_node):
        if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    attrs.add(attr)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    attrs.add(attr)
    return attrs


class LockDisciplineRule:
    id = "LOCK"
    ids = ("LOCK001",)
    summary = "attributes guarded by a lock must always be mutated under it"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attrs = _lock_attrs(node)
            if not lock_attrs:
                continue
            mutations: list[_Mutation] = []
            for child in node.body:
                if not isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                    continue
                if child.name in _EXEMPT_METHODS:
                    continue
                scanner = _MethodScanner(child.name, lock_attrs)
                for statement in child.body:
                    scanner.visit(statement)
                mutations.extend(scanner.mutations)

            guarded = {m.attr for m in mutations
                       if m.locked and m.attr not in lock_attrs}
            for mutation in mutations:
                if mutation.attr in guarded and not mutation.locked:
                    yield Finding(
                        path=module.relpath, line=mutation.lineno,
                        rule="LOCK001",
                        message=f"{node.name}.{mutation.attr} is mutated "
                                f"under a lock elsewhere but not in "
                                f"{mutation.method}(); hold the guarding "
                                f"lock (or annotate the caller-holds-lock "
                                f"invariant with an allow comment)",
                    )


__all__ = ["LockDisciplineRule"]
