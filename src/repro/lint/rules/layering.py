"""LAYER — the architecture DAG, enforced statically.

Replaces PR 4's grep-based convention ("``grep SyntheticWorld
src/repro/{serving,features,core}`` is empty") with real checks:

* **LAYER001** — a forbidden import edge.  The serving stack
  (``serving``, ``gateway``, ``store``, ``resilience``, ``telemetry``,
  ``registry``) plus the pipeline layers PR 4 decoupled (``features``,
  ``core``) must never import ``repro.simulation`` — not even lazily: a
  function-level import is still a layering leak, it just hides at
  import time.  ``repro.nn`` is the bottom of the stack and must not
  import the serving layers above it.
* **LAYER002** — the name ``SyntheticWorld`` referenced anywhere in
  those layers (catches re-exports and annotations that dodge LAYER001).
* **LAYER003** — an import cycle among project modules, over
  import-time edges only (a lazy function-level import is the sanctioned
  way to break a cycle).  Edges from a module to its own ancestor
  package are ignored: ``from repro.serving import x`` inside that
  package resolves through a partially-initialized parent by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.project import Project

#: Layers that serve traffic — they must work without the simulator.
SERVING_STACK = (
    "repro.serving", "repro.gateway", "repro.store", "repro.resilience",
    "repro.telemetry", "repro.registry",
)

#: Additionally decoupled from SyntheticWorld by PR 4's refactor.
#: repro.signals computes against the MarketDataSource protocol, so it is
#: held to the same bar: backend-agnostic, never importing the simulator.
PIPELINE_LAYERS = SERVING_STACK + ("repro.features", "repro.core",
                                   "repro.signals")

#: (importer prefixes, forbidden target prefix) — any import, even lazy.
FORBIDDEN_EDGES: tuple[tuple[tuple[str, ...], str], ...] = (
    (PIPELINE_LAYERS, "repro.simulation"),
    (("repro.nn",), "repro.serving"),
    (("repro.nn",), "repro.gateway"),
)

#: Symbol names that must not appear in the decoupled layers.
BANNED_SYMBOLS: dict[str, tuple[str, ...]] = {
    "SyntheticWorld": PIPELINE_LAYERS,
}


def _under(name: str, prefixes: tuple[str, ...]) -> bool:
    return any(name == p or name.startswith(p + ".") for p in prefixes)


class LayeringRule:
    id = "LAYER"
    ids = ("LAYER001", "LAYER002", "LAYER003")
    summary = "architecture DAG: no simulation leaks, no import cycles"

    def check(self, project: Project) -> Iterator[Finding]:
        yield from self._forbidden_imports(project)
        yield from self._banned_symbols(project)
        yield from self._cycles(project)

    # -- LAYER001 ------------------------------------------------------------

    def _forbidden_imports(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for importers, forbidden in FORBIDDEN_EDGES:
                if not _under(module.name, importers):
                    continue
                for record in project.imports[module.name]:
                    if record.type_checking:
                        continue
                    if _under(record.target, (forbidden,)):
                        how = "lazily imports" if record.lazy else "imports"
                        yield Finding(
                            path=module.relpath, line=record.lineno,
                            rule="LAYER001",
                            message=f"{module.name} {how} {record.target}: "
                                    f"this layer must not depend on "
                                    f"{forbidden}",
                        )

    # -- LAYER002 ------------------------------------------------------------

    def _banned_symbols(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            scopes = [prefixes for symbol, prefixes in BANNED_SYMBOLS.items()
                      if _under(module.name, prefixes)]
            if not scopes:
                continue
            for node in ast.walk(module.tree):
                name = None
                if isinstance(node, ast.Name):
                    name = node.id
                elif isinstance(node, ast.Attribute):
                    name = node.attr
                elif isinstance(node, ast.alias):
                    name = node.name.split(".")[-1]
                if name in BANNED_SYMBOLS and _under(
                        module.name, BANNED_SYMBOLS[name]):
                    yield Finding(
                        path=module.relpath,
                        line=getattr(node, "lineno", 1),
                        rule="LAYER002",
                        message=f"reference to banned symbol {name!r}: "
                                f"this layer is decoupled from the "
                                f"simulator (use repro.sources)",
                    )

    # -- LAYER003 ------------------------------------------------------------

    @staticmethod
    def _ancestors(name: str) -> set[str]:
        parts = name.split(".")
        return {".".join(parts[:i]) for i in range(1, len(parts))}

    def _cycles(self, project: Project) -> Iterator[Finding]:
        edges: dict[str, set[str]] = {m.name: set() for m in project.modules}
        lines: dict[tuple[str, str], int] = {}
        for module in project.modules:
            skip = self._ancestors(module.name)
            for record in project.imports[module.name]:
                if not record.at_import_time:
                    continue
                target = record.target
                if target not in edges or target == module.name:
                    continue
                if target in skip:
                    continue  # submodule -> own package: sanctioned
                edges[module.name].add(target)
                lines.setdefault((module.name, target), record.lineno)

        for component in _strongly_connected(edges):
            if len(component) < 2:
                continue
            ordered = sorted(component)
            first = ordered[0]
            # Anchor the finding at first's import of another member.
            member_targets = [t for t in sorted(edges[first])
                              if t in component]
            line = lines.get((first, member_targets[0]), 1) \
                if member_targets else 1
            module = project.by_name[first]
            yield Finding(
                path=module.relpath, line=line, rule="LAYER003",
                message="import cycle: " + " <-> ".join(ordered),
            )


def _strongly_connected(edges: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's SCC, iterative (the tree is ~140 modules; recursion would
    be fine, but an explicit stack keeps pathological inputs safe)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[set[str]] = []
    counter = 0

    for start in edges:
        if start in index:
            continue
        work = [(start, iter(sorted(edges[start])))]
        index[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(edges[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(component)
    return result


__all__ = ["LayeringRule", "SERVING_STACK", "PIPELINE_LAYERS"]
