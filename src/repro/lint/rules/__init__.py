"""The rule registry.

Each rule is a plain object with ``id`` (family prefix), ``ids`` (the
concrete finding ids it can emit), ``summary``, and
``check(project) -> Iterator[Finding]``.  Registration order is the
report order for equal (path, line).
"""

from __future__ import annotations

from repro.lint.rules.deps import DependencyRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.layering import LayeringRule
from repro.lint.rules.locks import LockDisciplineRule
from repro.lint.rules.wire import WireContractRule

ALL_RULES = (
    LayeringRule(),
    DependencyRule(),
    LockDisciplineRule(),
    DeterminismRule(),
    WireContractRule(),
)


def rule_ids() -> list[str]:
    """Every concrete finding id, in registration order."""
    ids: list[str] = []
    for rule in ALL_RULES:
        ids.extend(rule.ids)
    return ids


__all__ = [
    "ALL_RULES", "DependencyRule", "DeterminismRule", "LayeringRule",
    "LockDisciplineRule", "WireContractRule", "rule_ids",
]
