"""WIRE — drift between code and the wire contract.

Two contracts are easy to break without failing any unit test:

* **WIRE001** — every ``GatewayFault(code, ...)`` raised in
  ``repro.gateway`` must use a code registered in
  ``repro/gateway/schema.py``'s ``ERROR_CODES``.  The schema module
  formerly enforced this with a runtime ``assert`` — stripped under
  ``python -O``, and firing only when the buggy path executes.  This
  checker proves it statically: the schema file's ``E_* = "..."``
  constants and the ``ERROR_CODES = frozenset({...})`` literal are read
  from its AST, then every construction site is resolved.  String
  literals are checked against the code values, ``E_*`` names against
  the registered constants; dynamic first arguments (e.g. re-wrapping
  ``fault.code``) are skipped — they carry an already-validated code.
* **WIRE002** — metric names registered through
  ``.counter(...)``/``.histogram(...)``/``.gauge(...)``/``.gauge_fn(...)``
  must follow the conventions the dashboards scrape by: snake_case,
  counters end ``_total``, duration histograms end ``_seconds``, gauges
  must *not* end ``_total`` (a gauge that looks like a counter breaks
  rate() queries).  f-string names are checked by their literal suffix.
  Subsystems with a reserved series prefix (``repro.signals`` →
  ``signal_*``) must register every metric under it, so their dashboards
  can scrape one namespace and other subsystems cannot squat on it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.project import ModuleInfo, Project

_SCHEMA_MODULE = "repro.gateway.schema"
_GATEWAY_PREFIX = "repro.gateway"

_SNAKE = re.compile(r"^[a-z][a-z0-9_]*$")

_METRIC_METHODS = ("counter", "gauge", "gauge_fn", "histogram")

#: Subsystems whose metric series live under a reserved name prefix.
_SERIES_PREFIXES = {"repro.signals": "signal_"}


def _schema_registry(module: ModuleInfo) -> tuple[dict[str, str], set[str]]:
    """(constant name -> code string, registered constant names)."""
    constants: dict[str, str] = {}
    registered: set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id.startswith("E_") and isinstance(node.value,
                                                     ast.Constant) \
                and isinstance(node.value.value, str):
            constants[target.id] = node.value.value
        elif target.id == "ERROR_CODES":
            for name_node in ast.walk(node.value):
                if isinstance(name_node, ast.Name) \
                        and name_node.id.startswith("E_"):
                    registered.add(name_node.id)
                elif isinstance(name_node, ast.Constant) \
                        and isinstance(name_node.value, str):
                    # literal codes registered directly
                    registered.add(name_node.value)
    return constants, registered


class WireContractRule:
    id = "WIRE"
    ids = ("WIRE001", "WIRE002")
    summary = "error codes and metric names must match the wire contract"

    def check(self, project: Project) -> Iterator[Finding]:
        yield from self._error_codes(project)
        yield from self._metric_names(project)

    # -- WIRE001 -------------------------------------------------------------

    def _error_codes(self, project: Project) -> Iterator[Finding]:
        schema = project.by_name.get(_SCHEMA_MODULE)
        if schema is None:
            return
        constants, registered = _schema_registry(schema)
        valid_codes = {constants[name] for name in registered
                       if name in constants}
        valid_codes |= {code for code in registered
                        if not code.startswith("E_")}
        for module in project.modules_under(_GATEWAY_PREFIX):
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                callee = func.id if isinstance(func, ast.Name) else \
                    func.attr if isinstance(func, ast.Attribute) else None
                if callee != "GatewayFault":
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.Constant) \
                        and isinstance(arg.value, str):
                    if arg.value not in valid_codes:
                        yield Finding(
                            path=module.relpath, line=node.lineno,
                            rule="WIRE001",
                            message=f"error code {arg.value!r} is not in "
                                    f"schema.ERROR_CODES; register it in "
                                    f"repro/gateway/schema.py before "
                                    f"raising it on the wire",
                        )
                elif isinstance(arg, ast.Name) and arg.id.startswith("E_"):
                    if arg.id not in registered:
                        yield Finding(
                            path=module.relpath, line=node.lineno,
                            rule="WIRE001",
                            message=f"error constant {arg.id} is not "
                                    f"registered in schema.ERROR_CODES",
                        )
                # anything else (fault.code re-wraps, variables) is a
                # code that already passed through GatewayFault: skip.

    # -- WIRE002 -------------------------------------------------------------

    @staticmethod
    def _literal_name(arg: ast.expr) -> tuple[str | None, str | None]:
        """(full name or None, literal suffix or None).

        A plain string gives both; an f-string gives only the trailing
        literal part (enough to check the suffix conventions).
        """
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value, arg.value
        if isinstance(arg, ast.JoinedStr) and arg.values:
            last = arg.values[-1]
            if isinstance(last, ast.Constant) \
                    and isinstance(last.value, str):
                return None, last.value
        return None, None

    def _metric_names(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute) \
                        or func.attr not in _METRIC_METHODS:
                    continue
                kind = func.attr
                full, suffix = self._literal_name(node.args[0])
                if full is None and suffix is None:
                    continue  # dynamic name: out of static reach
                if full is not None and not _SNAKE.match(full):
                    yield Finding(
                        path=module.relpath, line=node.lineno,
                        rule="WIRE002",
                        message=f"metric name {full!r} is not snake_case "
                                f"([a-z][a-z0-9_]*)",
                    )
                    continue
                if full is not None:
                    for owner, prefix in _SERIES_PREFIXES.items():
                        if (module.name == owner
                                or module.name.startswith(owner + ".")) \
                                and not full.startswith(prefix):
                            yield Finding(
                                path=module.relpath, line=node.lineno,
                                rule="WIRE002",
                                message=f"metric {full!r} registered in "
                                        f"{owner} must use the reserved "
                                        f"series prefix {prefix!r}",
                            )
                checked = full if full is not None else suffix or ""
                if kind == "counter" and not checked.endswith("_total"):
                    yield Finding(
                        path=module.relpath, line=node.lineno,
                        rule="WIRE002",
                        message=f"counter {checked!r} must end in "
                                f"'_total' (rate() convention)",
                    )
                elif kind == "histogram" \
                        and not checked.endswith("_seconds"):
                    yield Finding(
                        path=module.relpath, line=node.lineno,
                        rule="WIRE002",
                        message=f"histogram {checked!r} must end in "
                                f"'_seconds' (duration convention; name "
                                f"the unit)",
                    )
                elif kind in ("gauge", "gauge_fn") \
                        and checked.endswith("_total"):
                    yield Finding(
                        path=module.relpath, line=node.lineno,
                        rule="WIRE002",
                        message=f"gauge {checked!r} must not end in "
                                f"'_total': that suffix promises a "
                                f"monotonic counter",
                    )


__all__ = ["WireContractRule"]
