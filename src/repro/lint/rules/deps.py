"""DEP — the third-party dependency policy.

The serving stack is **stdlib + numpy only** (the gateway boots on a bare
interpreter with numpy; ``pyproject.toml`` declares exactly that).  The
heavyweight science stack is tolerated only where the paper's offline
analysis genuinely needs it, and even there it must be *import-time
lazy* so ``import repro.ml`` (or a registry artifact load that touches
it) never drags ``scipy`` into a serving process that does not have it:

* **DEP001** — ``scipy``/``networkx`` imported at module level (or class
  level — both run at import time).  Move the import inside the function
  that uses it and raise a clear ``ImportError`` when absent.
* **DEP002** — ``scipy``/``networkx`` imported (even lazily) outside the
  permitted homes: ``repro.ml``, ``repro.analysis``,
  ``repro.data.exploration``, ``repro.simulation``,
  ``repro.utils.hashrng``.
* **DEP003** — any other third-party import (not stdlib, not numpy, not
  a project module).  New dependencies are a policy decision, not a
  side effect of one patch; severity ``warning`` so a plain run reports
  it and ``--strict`` (CI) fails it.

``if TYPE_CHECKING:`` imports are ignored throughout — they never run.
"""

from __future__ import annotations

import sys
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.project import Project

#: Gated heavy dependencies: permitted homes only, and lazily even there.
HEAVY = ("scipy", "networkx")

#: Module prefixes (or exact modules) where the heavy stack may be used.
HEAVY_ALLOWED = (
    "repro.ml", "repro.analysis", "repro.data.exploration",
    "repro.simulation", "repro.utils.hashrng",
)

#: Importable everywhere, at import time.
UNIVERSAL = ("numpy",)

_STDLIB = frozenset(sys.stdlib_module_names)


def _under(name: str, prefixes: tuple[str, ...]) -> bool:
    return any(name == p or name.startswith(p + ".") for p in prefixes)


class DependencyRule:
    id = "DEP"
    ids = ("DEP001", "DEP002", "DEP003")
    summary = "serving is stdlib+numpy; scipy/networkx gated and lazy"

    def check(self, project: Project) -> Iterator[Finding]:
        project_tops = {m.name.split(".", 1)[0] for m in project.modules}
        for module in project.modules:
            for record in project.imports[module.name]:
                if record.type_checking:
                    continue
                top = record.top_level
                if top in _STDLIB or top in UNIVERSAL \
                        or top in project_tops:
                    continue
                if top in HEAVY:
                    if not _under(module.name, HEAVY_ALLOWED):
                        yield Finding(
                            path=module.relpath, line=record.lineno,
                            rule="DEP002",
                            message=f"{top} is not allowed in "
                                    f"{module.name}: the serving stack is "
                                    f"stdlib+numpy only (permitted homes: "
                                    f"{', '.join(HEAVY_ALLOWED)})",
                        )
                    elif not record.lazy:
                        yield Finding(
                            path=module.relpath, line=record.lineno,
                            rule="DEP001",
                            message=f"module-level import of {top}: gated "
                                    f"dependencies must be import-time "
                                    f"lazy (import inside the function "
                                    f"that needs it, with a clear "
                                    f"ImportError message)",
                        )
                    continue
                yield Finding(
                    path=module.relpath, line=record.lineno, rule="DEP003",
                    severity="warning",
                    message=f"third-party import {record.target!r} is not "
                            f"in the dependency policy (stdlib, numpy, or "
                            f"gated scipy/networkx); extend the policy "
                            f"deliberately if this is intended",
                )


__all__ = ["DependencyRule", "HEAVY", "HEAVY_ALLOWED"]
