"""DET — determinism hazards in scoring / feature / compile paths.

The paper's headline guarantee (PR 1-4) is bit-identical replay: the
same window of trades must produce the same feature vector, score and
ranking on every run.  Three stdlib habits silently break that:

* **DET001** — wall-clock reads (``time.time``, ``datetime.now``,
  ``datetime.utcnow``, ``date.today``).  Latency measurement belongs to
  ``time.perf_counter``/``monotonic`` (allowed); *timestamps* belong to
  the telemetry/persistence layers, which are allowlisted.
* **DET002** — unseeded randomness: the module-level ``random.*``
  functions (process-global state), ``numpy.random.default_rng()`` with
  no seed, ``numpy.random.seed``/legacy ``numpy.random.<fn>`` calls.
  Deterministic code takes an explicit seeded generator (see
  ``repro.utils.hashrng``).
* **DET003** — iterating a set literal / ``set()`` / ``frozenset()``
  call directly in a ``for`` or comprehension.  Set iteration order is
  insertion-order-dependent and (for str keys) salted per process;
  sort first.

Scope: ``repro.serving``, ``repro.gateway``, ``repro.features``,
``repro.nn``, ``repro.core``.  Allowlisted (timestamps are their job):
``repro.telemetry``, ``repro.store``, ``repro.registry``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.project import ModuleInfo, Project

#: Module prefixes the determinism contract covers.
DETERMINISTIC_SCOPE = (
    "repro.serving", "repro.gateway", "repro.features", "repro.nn",
    "repro.core",
)

#: Explicitly outside the contract — timestamping is their purpose.
TIMESTAMP_ALLOWED = ("repro.telemetry", "repro.store", "repro.registry")

#: attribute-name -> hazard description for DET001.
_WALL_CLOCK = {
    ("time", "time"): "time.time() is wall-clock",
    ("datetime", "now"): "datetime.now() is wall-clock",
    ("datetime", "utcnow"): "datetime.utcnow() is wall-clock",
    ("date", "today"): "date.today() is wall-clock",
}

#: module-level random functions with hidden global state.
_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "seed", "getrandbits",
}


def _in_scope(name: str) -> bool:
    return any(name == p or name.startswith(p + ".")
               for p in DETERMINISTIC_SCOPE)


class _Aliases:
    """Which local names refer to the hazardous modules/classes."""

    def __init__(self, module: ModuleInfo):
        self.time: set[str] = set()
        self.datetime_mod: set[str] = set()
        self.datetime_cls: set[str] = set()
        self.date_cls: set[str] = set()
        self.random_mod: set[str] = set()
        self.numpy: set[str] = set()
        self.numpy_random: set[str] = set()  # names bound to numpy.random
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self.time.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_mod.add(bound)
                    elif alias.name == "random":
                        self.random_mod.add(bound)
                    elif alias.name in ("numpy", "numpy.random"):
                        self.numpy.add(bound)
            elif isinstance(node, ast.ImportFrom) and not node.level:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "datetime":
                        if alias.name == "datetime":
                            self.datetime_cls.add(bound)
                        elif alias.name == "date":
                            self.date_cls.add(bound)
                    elif node.module == "numpy" \
                            and alias.name == "random":
                        self.numpy_random.add(bound)


class DeterminismRule:
    id = "DET"
    ids = ("DET001", "DET002", "DET003")
    summary = "no wall clock, unseeded RNG or set-order dependence in " \
              "scoring paths"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not _in_scope(module.name):
                continue
            aliases = _Aliases(module)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    yield from self._check_call(module, aliases, node)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    yield from self._check_iter(module, node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        yield from self._check_iter(module, gen.iter)

    # -- DET001 / DET002 -----------------------------------------------------

    def _check_call(self, module: ModuleInfo, aliases: _Aliases,
                    node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        owner = func.value

        # time.time() / datetime.now() / date.today()
        if isinstance(owner, ast.Name):
            base = owner.id
            hazard = None
            if base in aliases.time and attr == "time":
                hazard = _WALL_CLOCK[("time", "time")]
            elif base in aliases.datetime_cls and attr in ("now", "utcnow"):
                hazard = _WALL_CLOCK[("datetime", attr)]
            elif base in aliases.date_cls and attr == "today":
                hazard = _WALL_CLOCK[("date", "today")]
            if hazard is not None:
                yield Finding(
                    path=module.relpath, line=node.lineno, rule="DET001",
                    message=f"{hazard}; scoring paths must use "
                            f"time.perf_counter()/monotonic() for "
                            f"durations and leave timestamps to "
                            f"telemetry/store",
                )
                return
            # random.random() etc. on the global-state module
            if base in aliases.random_mod and attr in _RANDOM_FNS:
                yield Finding(
                    path=module.relpath, line=node.lineno, rule="DET002",
                    message=f"random.{attr}() uses hidden process-global "
                            f"state; take an explicit seeded generator "
                            f"(random.Random(seed) or "
                            f"repro.utils.hashrng)",
                )
                return
        # datetime.datetime.now() through the module alias
        if isinstance(owner, ast.Attribute) and \
                isinstance(owner.value, ast.Name) and \
                owner.value.id in aliases.datetime_mod:
            if owner.attr == "datetime" and attr in ("now", "utcnow"):
                yield Finding(
                    path=module.relpath, line=node.lineno, rule="DET001",
                    message=f"{_WALL_CLOCK[('datetime', attr)]}; scoring "
                            f"paths must not read the wall clock",
                )
                return
        # numpy.random.*: default_rng() with no args, seed(), legacy fns
        np_random = (
            isinstance(owner, ast.Attribute)
            and owner.attr == "random"
            and isinstance(owner.value, ast.Name)
            and owner.value.id in aliases.numpy
        ) or (
            isinstance(owner, ast.Name)
            and owner.id in aliases.numpy_random
        )
        if np_random:
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    yield Finding(
                        path=module.relpath, line=node.lineno,
                        rule="DET002",
                        message="numpy.random.default_rng() without a "
                                "seed is entropy-seeded; pass an "
                                "explicit seed",
                    )
                # default_rng(seed) is exactly what we want: fine.
            elif attr == "seed":
                yield Finding(
                    path=module.relpath, line=node.lineno, rule="DET002",
                    message="numpy.random.seed mutates the process-global "
                            "legacy RNG; use default_rng(seed) locally",
                )
            elif attr[0].islower():
                yield Finding(
                    path=module.relpath, line=node.lineno, rule="DET002",
                    message=f"numpy.random.{attr}() draws from the "
                            f"process-global legacy RNG; use an explicit "
                            f"Generator",
                )

    # -- DET003 --------------------------------------------------------------

    def _check_iter(self, module: ModuleInfo,
                    iterable: ast.expr) -> Iterator[Finding]:
        hazard = None
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            hazard = "a set literal/comprehension"
        elif isinstance(iterable, ast.Call) and \
                isinstance(iterable.func, ast.Name) and \
                iterable.func.id in ("set", "frozenset"):
            hazard = f"{iterable.func.id}(...)"
        if hazard is not None:
            yield Finding(
                path=module.relpath, line=iterable.lineno, rule="DET003",
                message=f"iterating {hazard} directly: set order is "
                        f"process-dependent; wrap in sorted(...) to pin "
                        f"the order",
            )


__all__ = ["DeterminismRule", "DETERMINISTIC_SCOPE", "TIMESTAMP_ALLOWED"]
