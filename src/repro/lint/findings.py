"""Findings, inline suppressions and the checked-in baseline.

A :class:`Finding` is one rule violation pinned to a file and line.  Two
escape hatches keep the linter strict without being hostile:

* **Inline suppressions** — a ``# repro-lint: allow[RULE]`` comment on
  the offending line acknowledges a violation that is correct by an
  invariant the AST cannot see (e.g. "caller holds the lock").  The rule
  id must be named explicitly; a bare ``allow[*]`` waives every rule on
  that line and is meant for fixture files, not production code.

* **The baseline** — a JSON file of grandfathered findings
  (``lint-baseline.json`` at the repo root).  Baselined findings are
  reported but do not fail ``--strict``; fingerprints are
  ``(rule, path, message)`` so ordinary edits moving a line do not churn
  the file.  The serving stack ships with an **empty** baseline — new
  violations there fail CI immediately.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

#: Severities understood by the engine/CLI.  ``error`` fails a plain run;
#: ``warning`` fails only under ``--strict``.
SEVERITIES = ("error", "warning")

_ALLOW = re.compile(r"#\s*repro-lint:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where, what, and how bad."""

    path: str        # posix path relative to the lint root
    line: int        # 1-indexed
    rule: str        # stable rule id, e.g. "LOCK001"
    message: str
    severity: str = "error"

    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity — line numbers excluded so edits above a
        grandfathered finding do not invalidate it."""
        return (self.rule, self.path, self.message)

    def to_payload(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} " \
               f"{self.severity}: {self.message}"


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids allowed on that line.

    The comment must sit on the same physical line as the finding; ``*``
    allows every rule.  The scan is textual (comments never reach the
    AST), which also means a suppression inside a string literal would be
    honoured — an acceptable cost for a zero-dependency scanner.
    """
    allowed: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        if rules:
            allowed.setdefault(lineno, set()).update(rules)
    return allowed


def is_suppressed(finding: Finding,
                  suppressions: dict[int, set[str]]) -> bool:
    rules = suppressions.get(finding.line)
    return bool(rules) and (finding.rule in rules or "*" in rules)


class BaselineError(ValueError):
    """The baseline file exists but cannot be understood."""


def load_baseline(path: str | Path | None) -> set[tuple[str, str, str]]:
    """Fingerprints of grandfathered findings (empty when no file)."""
    if path is None:
        return set()
    path = Path(path)
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(
            payload.get("findings"), list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'findings' list"
        )
    fingerprints = set()
    for entry in payload["findings"]:
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline {path}: entries must be objects")
        try:
            fingerprints.add((str(entry["rule"]), str(entry["path"]),
                              str(entry["message"])))
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path}: entry missing key {exc}"
            ) from None
    return fingerprints


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Grandfather the given findings (sorted, stable output)."""
    entries = sorted(
        {f.fingerprint() for f in findings}
    )
    payload = {
        "version": 1,
        "findings": [
            {"rule": rule, "path": rel, "message": message}
            for rule, rel, message in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


__all__ = [
    "BaselineError", "Finding", "SEVERITIES", "is_suppressed",
    "load_baseline", "parse_suppressions", "write_baseline",
]
