"""Shared fixtures for the registry tests.

One tiny world and its collection are built once per session; trained
predictors are built per architecture on demand (1 epoch — artifact
round-trips care about exactness, not model quality).
"""

from __future__ import annotations

import pytest

from repro.core import (
    TargetCoinPredictor,
    Trainer,
    make_model,
    snn_config_for,
)
from repro.data import collect
from repro.features import FeatureAssembler
from repro.simulation import SyntheticWorld
from repro.utils import ReproConfig


@pytest.fixture(scope="session")
def reg_world():
    return SyntheticWorld.generate(ReproConfig.tiny())


@pytest.fixture(scope="session")
def reg_collection(reg_world):
    return collect(reg_world)


@pytest.fixture(scope="session")
def reg_assembler(reg_world, reg_collection):
    return FeatureAssembler(reg_world, reg_collection.dataset)


@pytest.fixture(scope="session")
def reg_assembled(reg_assembler):
    return reg_assembler.assemble()


@pytest.fixture(scope="session")
def trained_predictors(reg_world, reg_collection, reg_assembler, reg_assembled):
    """One briefly trained predictor per ranker family (SNN/DNN/RNN/TCN)."""
    predictors = {}
    for name in ("snn", "dnn", "gru", "tcn"):
        model = make_model(name, snn_config_for(reg_assembled), seed=0)
        Trainer(epochs=1, seed=0).fit(
            model, reg_assembled.train, reg_assembled.validation
        )
        predictors[name] = TargetCoinPredictor(
            reg_world, reg_collection.dataset, model, reg_assembler
        )
    return predictors
